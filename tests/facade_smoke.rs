//! Workspace smoke test: the `flstore_suite` facade end-to-end.
//!
//! Ingests a full (quick-scale) FL job into `FlStore` under the paper's
//! tailored caching policy, serves one request per workload class, and
//! asserts the cached metadata actually satisfies them — the minimal
//! "does the whole stack hang together" check every future PR must keep
//! green.

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig};
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::WorkloadKind;

#[test]
fn facade_ingest_then_serve_hits_cache() {
    let cfg = FlJobConfig::quick_test(JobId::new(7));
    let mut store = FlStore::new(
        FlStoreConfig::for_model(&cfg.model),
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    );

    let mut now = SimTime::ZERO;
    let mut last_round = None;
    for record in FlJobSim::new(cfg.clone()) {
        store.ingest_round(now, &record);
        last_round = Some(record.round);
        now += SimDuration::from_secs(60);
    }
    let last_round = last_round.expect("quick_test produces at least one round");

    // P1: inference over the latest aggregate — must be served fully from
    // the serverless cache (that is the tailored policy's whole point).
    let inference = WorkloadRequest::new(
        RequestId::new(1),
        WorkloadKind::Inference,
        cfg.job,
        last_round,
        None,
    );
    let served = store.serve(now, &inference).expect("aggregate is cached");
    assert_eq!(
        served.measured.cache_misses, 0,
        "tailored policy must keep the latest aggregate warm"
    );
    assert!(
        served.measured.cache_hits > 0,
        "inference needs cached data"
    );
    assert!(served.measured.finished >= served.measured.arrived);

    // P2: a round-scoped workload over all updates of the final round.
    let filtering = WorkloadRequest::new(
        RequestId::new(2),
        WorkloadKind::MaliciousFiltering,
        cfg.job,
        last_round,
        None,
    );
    let served = store
        .serve(now, &filtering)
        .expect("round updates resolvable");
    assert!(
        served.measured.hit_rate() > 0.5,
        "most of the final round should be cached, hit rate was {}",
        served.measured.hit_rate()
    );

    // The ledger recorded both requests with their workload kinds.
    let ledger = store.ledger();
    assert_eq!(ledger.outcomes.len(), 2);
    assert_eq!(ledger.outcomes[0].kind, WorkloadKind::Inference);
    assert_eq!(ledger.outcomes[1].kind, WorkloadKind::MaliciousFiltering);
}
