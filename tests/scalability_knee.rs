//! Scalability under parallel requests (paper §A.1, Fig. 12): with 5 cached
//! function instances, latency stays flat up to 5 simultaneous requests and
//! rises once the burst exceeds the replica count.

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::serverless::platform::ReclaimModel;
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::trace::scenario::flstore_with_faults;
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::WorkloadKind;

/// Mean latency of `k` simultaneous Clustering requests against a store
/// with 5 replica rings.
fn burst_mean_latency(k: usize) -> f64 {
    let job = FlJobConfig {
        rounds: 6,
        total_clients: 20,
        clients_per_round: 8,
        ..FlJobConfig::quick_test(JobId::new(4))
    };
    let mut store = flstore_with_faults(&job, 5, ReclaimModel::DISABLED, 7);
    let mut now = SimTime::ZERO;
    let mut last = None;
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        last = Some(record.round);
        now += SimDuration::from_secs(60);
    }
    let round = last.expect("job ran");
    let mut total = 0.0;
    for i in 0..k {
        let request = WorkloadRequest::new(
            RequestId::new(i as u64 + 1),
            WorkloadKind::Clustering,
            job.job,
            round,
            None,
        );
        let served = store.serve(now, &request).expect("servable");
        total += served.measured.latency.total().as_secs_f64();
    }
    total / k as f64
}

#[test]
fn latency_flat_up_to_replica_count() {
    let one = burst_mean_latency(1);
    let five = burst_mean_latency(5);
    assert!(
        five < one * 1.6,
        "5 parallel requests on 5 replicas should stay near flat: {one:.2}s -> {five:.2}s"
    );
}

#[test]
fn latency_rises_past_replica_count() {
    let five = burst_mean_latency(5);
    let ten = burst_mean_latency(10);
    assert!(
        ten > five * 1.2,
        "10 parallel requests on 5 replicas must queue: {five:.2}s -> {ten:.2}s"
    );
}

#[test]
fn single_request_latency_is_compute_scale() {
    let one = burst_mean_latency(1);
    // Clustering of 8 ResNet18-scale updates ≈ a few seconds of compute.
    assert!(one < 10.0, "single-request latency {one:.2}s");
}
