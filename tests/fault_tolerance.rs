//! Fault-tolerance behaviour (paper §4.5, Figs. 13–14): replicas absorb
//! function reclamations; without them FLStore re-fetches from the
//! persistent store — correct but slow.

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::FlJobConfig;
use flstore_suite::serverless::platform::ReclaimModel;
use flstore_suite::trace::driver::{drive, DriveReport, TraceConfig};
use flstore_suite::trace::scenario::flstore_with_faults;

fn job() -> FlJobConfig {
    FlJobConfig {
        rounds: 20,
        total_clients: 20,
        clients_per_round: 8,
        ..FlJobConfig::quick_test(JobId::new(3))
    }
}

fn run_with_replicas(replicas: usize) -> DriveReport {
    let job = job();
    // Aggressive reclamation: sandboxes die within tens of minutes.
    let reclaim = ReclaimModel {
        enabled: true,
        min_lifetime_hours: 0.1,
        alpha: 1.5,
    };
    let mut store = flstore_with_faults(&job, replicas, reclaim, 31);
    let trace = TraceConfig {
        requests: 50,
        window: flstore_suite::sim::time::SimDuration::from_hours(10),
        ..TraceConfig::smoke(17)
    };
    drive(&mut store, &job, &trace)
}

#[test]
fn faults_actually_fire() {
    let job = job();
    let reclaim = ReclaimModel {
        enabled: true,
        min_lifetime_hours: 0.1,
        alpha: 1.5,
    };
    let mut store = flstore_with_faults(&job, 1, reclaim, 31);
    let trace = TraceConfig {
        requests: 50,
        window: flstore_suite::sim::time::SimDuration::from_hours(10),
        ..TraceConfig::smoke(17)
    };
    let _ = drive(&mut store, &job, &trace);
    assert!(
        store.faults_observed() > 0,
        "fault injection must reclaim sandboxes"
    );
}

#[test]
fn replicas_reduce_misses_under_faults() {
    let fi1 = run_with_replicas(1);
    let fi3 = run_with_replicas(3);
    assert!(!fi1.outcomes.is_empty() && !fi3.outcomes.is_empty());
    let misses =
        |r: &DriveReport| -> u64 { r.outcomes.iter().map(|o| o.cache_misses as u64).sum() };
    assert!(
        misses(&fi3) <= misses(&fi1),
        "3 replicas should not miss more than 1: {} vs {}",
        misses(&fi3),
        misses(&fi1)
    );
    // Latency with replicas is no worse on average (paper Fig. 13 shows a
    // plateau from FI=3).
    let lat1 = fi1.latency_summary().expect("served").mean;
    let lat3 = fi3.latency_summary().expect("served").mean;
    assert!(
        lat3 <= lat1 * 1.05,
        "FI=3 mean latency {lat3:.2}s vs FI=1 {lat1:.2}s"
    );
}

#[test]
fn replication_cost_is_negligible_vs_refetch_penalty() {
    let fi1 = run_with_replicas(1);
    let fi5 = run_with_replicas(5);
    // Replication adds keep-alive + repair spend...
    let infra1 = fi1.infra_cost.as_dollars();
    let infra5 = fi5.infra_cost.as_dollars();
    assert!(infra5 >= infra1);
    // ...but stays tiny in absolute terms (paper: $0.003 for 5 replicas over
    // 50 h) and far below the re-fetch transfer spend it avoids.
    assert!(infra5 < 0.05, "replication infra cost {infra5}");
    let refetch_transfer_1: f64 = fi1
        .outcomes
        .iter()
        .map(|o| o.cost.transfer.as_dollars())
        .sum();
    let refetch_transfer_5: f64 = fi5
        .outcomes
        .iter()
        .map(|o| o.cost.transfer.as_dollars())
        .sum();
    assert!(
        refetch_transfer_5 <= refetch_transfer_1,
        "replicas should cut re-fetch transfer: {refetch_transfer_5} vs {refetch_transfer_1}"
    );
}

#[test]
fn no_faults_without_injection() {
    let job = job();
    let mut store = flstore_with_faults(&job, 1, ReclaimModel::DISABLED, 31);
    let trace = TraceConfig {
        requests: 30,
        ..TraceConfig::smoke(19)
    };
    let report = drive(&mut store, &job, &trace);
    assert_eq!(store.faults_observed(), 0);
    assert!(report.outcomes.iter().all(|o| !o.recovered_from_fault));
}
