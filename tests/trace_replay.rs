//! External-trace replay: a JSON-lines trace file drives any serving
//! system through the front door, and the same file produces the same
//! report every time.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use flstore_suite::baselines::agg::{AggregatorBaseline, AggregatorConfig};
use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::FlJobConfig;
use flstore_suite::sim::time::SimTime;
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig};
use flstore_suite::trace::driver::{drive, TraceConfig};
use flstore_suite::workloads::taxonomy::WorkloadKind;

fn fixture() -> TraceConfig {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/smoke_trace.jsonl");
    let file = File::open(&path).unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    TraceConfig::from_jsonl(BufReader::new(file)).expect("fixture parses")
}

fn job() -> FlJobConfig {
    FlJobConfig {
        rounds: 5,
        ..FlJobConfig::quick_test(JobId::new(1))
    }
}

#[test]
fn fixture_loads_with_expected_shape() {
    let trace = fixture();
    assert_eq!(trace.requests, 20);
    let events = trace.events.as_ref().expect("explicit events");
    assert_eq!(events.len(), 20);
    // Sorted by time, all ten workloads represented.
    assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
    assert_eq!(trace.kinds.len(), WorkloadKind::ALL.len());
}

#[test]
fn jsonl_trace_drives_flstore_and_baseline() {
    let job = job();
    let trace = fixture();

    let mut store = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );
    let fl = drive(&mut store, &job, &trace);
    assert_eq!(fl.outcomes.len() + fl.errors, trace.requests);
    assert!(fl.outcomes.len() >= 18, "served {}", fl.outcomes.len());

    let mut agg = AggregatorBaseline::new(
        AggregatorConfig::objstore_agg(),
        job.job,
        job.model,
        SimTime::ZERO,
    );
    let base = drive(&mut agg, &job, &trace);
    assert_eq!(
        base.outcomes.len(),
        fl.outcomes.len(),
        "same trace, same serve set"
    );

    // The architectural gap holds on external traces too.
    let fl_mean = fl.latency_summary().expect("served").mean;
    let base_mean = base.latency_summary().expect("served").mean;
    assert!(
        fl_mean < base_mean,
        "FLStore {fl_mean}s vs baseline {base_mean}s"
    );
}

#[test]
fn jsonl_replay_is_deterministic() {
    let job = job();
    let trace_a = fixture();
    let trace_b = fixture();
    let mut a = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );
    let mut b = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );
    let ra = drive(&mut a, &job, &trace_a);
    let rb = drive(&mut b, &job, &trace_b);
    assert_eq!(ra.outcomes, rb.outcomes);
}
