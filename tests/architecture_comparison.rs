//! End-to-end comparison of the three architectures on identical traces —
//! the headline claims of the paper, at test scale:
//!
//! * FLStore cuts per-request latency versus ObjStore-Agg and Cache-Agg;
//! * FLStore cuts per-request (amortized) cost by an order of magnitude;
//! * Cache-Agg is faster than ObjStore-Agg but costs more;
//! * all three return identical workload results.

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::FlJobConfig;
use flstore_suite::sim::stats::reduction_pct;
use flstore_suite::trace::driver::{drive, DriveReport, TraceConfig};
use flstore_suite::trace::scenario::{cache_agg, flstore_for, objstore_agg, PolicyVariant};

fn job() -> FlJobConfig {
    FlJobConfig {
        rounds: 25,
        total_clients: 25,
        clients_per_round: 8,
        ..FlJobConfig::quick_test(JobId::new(1))
    }
}

fn reports() -> (DriveReport, DriveReport, DriveReport) {
    let job = job();
    let trace = TraceConfig {
        requests: 60,
        ..TraceConfig::smoke(13)
    };
    let mut fl = flstore_for(&job, PolicyVariant::Tailored, 99);
    let fl_report = drive(&mut fl, &job, &trace);
    let mut obj = objstore_agg(&job);
    let obj_report = drive(&mut obj, &job, &trace);
    let mut mem = cache_agg(&job);
    let mem_report = drive(&mut mem, &job, &trace);
    (fl_report, obj_report, mem_report)
}

#[test]
fn flstore_wins_on_latency_and_cost() {
    let (fl, obj, mem) = reports();
    assert_eq!(fl.errors, 0);
    assert_eq!(obj.errors, 0);
    assert_eq!(mem.errors, 0);

    let fl_lat = fl.latency_summary().expect("served").mean;
    let obj_lat = obj.latency_summary().expect("served").mean;
    let mem_lat = mem.latency_summary().expect("served").mean;

    // Paper §5.2: 71% avg reduction vs ObjStore-Agg, 64.66% vs Cache-Agg.
    let vs_obj = reduction_pct(obj_lat, fl_lat);
    let vs_mem = reduction_pct(mem_lat, fl_lat);
    assert!(
        vs_obj > 40.0,
        "latency reduction vs ObjStore-Agg: {vs_obj:.1}%"
    );
    assert!(
        vs_mem > 30.0,
        "latency reduction vs Cache-Agg: {vs_mem:.1}%"
    );

    // Cache-Agg sits between FLStore and ObjStore-Agg on latency.
    assert!(
        mem_lat < obj_lat,
        "cache {mem_lat:.1}s vs objstore {obj_lat:.1}s"
    );

    // Paper §5.3: ~88-92% cost reduction vs ObjStore-Agg, ~99% vs Cache-Agg
    // (per request, always-on infrastructure amortized).
    let fl_cost = fl.amortized_cost_summary().expect("served").mean;
    let obj_cost = obj.amortized_cost_summary().expect("served").mean;
    let mem_cost = mem.amortized_cost_summary().expect("served").mean;
    let cost_vs_obj = reduction_pct(obj_cost, fl_cost);
    let cost_vs_mem = reduction_pct(mem_cost, fl_cost);
    assert!(
        cost_vs_obj > 70.0,
        "cost reduction vs ObjStore-Agg: {cost_vs_obj:.1}%"
    );
    assert!(
        cost_vs_mem > 90.0,
        "cost reduction vs Cache-Agg: {cost_vs_mem:.1}%"
    );

    // Cloud caches cost more than object stores (paper §5.3.2).
    assert!(
        mem_cost > obj_cost,
        "cache ${mem_cost:.4} vs objstore ${obj_cost:.4}"
    );
}

#[test]
fn objstore_agg_is_communication_bound() {
    let (_, obj, _) = reports();
    let comm: f64 = obj
        .outcomes
        .iter()
        .map(|o| o.latency.communication.as_secs_f64())
        .sum();
    let total: f64 = obj
        .outcomes
        .iter()
        .map(|o| o.latency.total().as_secs_f64())
        .sum();
    // Paper §5.2.1: communication ≈ 98.9% of ObjStore-Agg latency; at test
    // scale (smaller model, fewer clients) it is still dominant.
    assert!(
        comm / total > 0.8,
        "communication share {:.3}",
        comm / total
    );
}

#[test]
fn flstore_is_computation_bound() {
    let (fl, _, _) = reports();
    let comm: f64 = fl
        .outcomes
        .iter()
        .map(|o| o.latency.communication.as_secs_f64())
        .sum();
    let comp: f64 = fl
        .outcomes
        .iter()
        .map(|o| o.latency.computation.as_secs_f64())
        .sum();
    assert!(
        comp > comm,
        "FLStore should be compute-bound: comp {comp:.1}s vs comm {comm:.1}s"
    );
}

#[test]
fn hit_rates_tell_the_story() {
    let (fl, obj, mem) = reports();
    assert!(fl.hit_rate() > 0.9, "FLStore hit rate {}", fl.hit_rate());
    // ObjStore-Agg always crosses to the object store.
    assert_eq!(obj.hit_rate(), 0.0);
    // Cache-Agg holds the working set, so it hits — it is just expensive.
    assert!(
        mem.hit_rate() > 0.9,
        "Cache-Agg hit rate {}",
        mem.hit_rate()
    );
}
