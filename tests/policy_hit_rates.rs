//! Table 2 at test scale: per-class lockstep traces (one request right
//! after each round lands, sparse P3 audits), tailored vs traditional
//! policies. Tailored ≈ 100% hits; reactive disciplines ≈ 0%.

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::store::FlStore;
use flstore_suite::trace::scenario::{flstore_for, PolicyVariant};
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::{PolicyClass, WorkloadKind};

fn job(rounds: u32) -> FlJobConfig {
    FlJobConfig {
        rounds,
        total_clients: 25,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(2))
    }
}

/// Lockstep drive: ingest round r, then (subject to `cadence`) issue one
/// `kind` request targeting round r. Returns (hits, misses).
fn lockstep_hit_stats(kind: WorkloadKind, variant: PolicyVariant, cadence: u32) -> (u64, u64) {
    let job = job(32);
    let mut store: FlStore = flstore_for(&job, variant, 5);
    let mut now = SimTime::ZERO;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut req_id = 0u64;
    let mut audited = None;
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        now += SimDuration::from_secs(30);
        if record.round.as_u32() % cadence == 0 && record.round.as_u32() > 0 {
            req_id += 1;
            let client = match kind.policy_class() {
                PolicyClass::P3AcrossRounds => {
                    // Audit one fixed client (the paper traces one client
                    // across rounds).
                    if audited.is_none() {
                        audited = Some(record.updates[0].client);
                    }
                    audited
                }
                _ => None,
            };
            let request =
                WorkloadRequest::new(RequestId::new(req_id), kind, job.job, record.round, client);
            if let Ok(served) = store.serve(now, &request) {
                hits += served.measured.cache_hits as u64;
                misses += served.measured.cache_misses as u64;
            }
        }
        now += SimDuration::from_secs(30);
    }
    (hits, misses)
}

fn hit_rate(kind: WorkloadKind, variant: PolicyVariant, cadence: u32) -> f64 {
    let (hits, misses) = lockstep_hit_stats(kind, variant, cadence);
    assert!(hits + misses > 0, "no data accesses recorded");
    hits as f64 / (hits + misses) as f64
}

#[test]
fn p2_tailored_hits_lru_misses() {
    let tailored = hit_rate(WorkloadKind::MaliciousFiltering, PolicyVariant::Tailored, 1);
    let lru = hit_rate(WorkloadKind::MaliciousFiltering, PolicyVariant::Lru, 1);
    assert!(tailored > 0.99, "tailored P2 hit rate {tailored}");
    assert_eq!(lru, 0.0, "LRU P2 hit rate {lru}");
}

#[test]
fn p2_fifo_lfu_random_also_miss() {
    for variant in [
        PolicyVariant::Fifo,
        PolicyVariant::Lfu,
        PolicyVariant::Random,
    ] {
        let rate = hit_rate(WorkloadKind::Clustering, variant, 1);
        assert_eq!(rate, 0.0, "{} P2 hit rate {rate}", variant.label());
    }
}

#[test]
fn p3_tailored_hits_sparse_audits() {
    // Audits every 6 rounds with a 4-round window: no read overlap, so the
    // reactive cache never helps, while the tailored policy tracks the
    // client after the first audit (paper Table 2: 63/64 = 98%).
    let tailored = hit_rate(WorkloadKind::ReputationCalc, PolicyVariant::Tailored, 6);
    let fifo = hit_rate(WorkloadKind::ReputationCalc, PolicyVariant::Fifo, 6);
    assert!(tailored > 0.8, "tailored P3 hit rate {tailored}");
    assert_eq!(fifo, 0.0, "FIFO P3 hit rate {fifo}");
}

#[test]
fn p4_tailored_hits_lru_misses() {
    let tailored = hit_rate(WorkloadKind::SchedulingPerf, PolicyVariant::Tailored, 1);
    let lru = hit_rate(WorkloadKind::SchedulingPerf, PolicyVariant::Lru, 1);
    assert!(tailored > 0.99, "tailored P4 hit rate {tailored}");
    assert_eq!(lru, 0.0, "LRU P4 hit rate {lru}");
}

#[test]
fn p1_inference_is_always_hot() {
    let tailored = hit_rate(WorkloadKind::Inference, PolicyVariant::Tailored, 1);
    assert!(tailored > 0.99, "tailored P1 hit rate {tailored}");
}
