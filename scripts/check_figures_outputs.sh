#!/usr/bin/env bash
# Asserts that every experiment id emitted its JSON output. The expected
# file list comes from `figures -- --list` — the same table that runs the
# experiments — so this check can never drift from the binary: adding an
# experiment automatically adds its output to the requirement, and a
# mismatch between the table's declared output and the runner's actual
# save_json name shows up here as a missing file.
#
# Shared by the CI figures-smoke job and scripts/verify.sh.
#
# Usage: scripts/check_figures_outputs.sh [results-dir]
# The directory defaults to $FLSTORE_RESULTS_DIR, then "results".
set -euo pipefail

cd "$(dirname "$0")/.."
dir="${1:-${FLSTORE_RESULTS_DIR:-results}}"

expected="$(cargo run -q --release --bin figures -- --list)"
if [ -z "$expected" ]; then
    echo "figures -- --list returned no experiments" >&2
    exit 1
fi

missing=0
count=0
for f in $expected; do
    count=$((count + 1))
    if [ ! -s "$dir/$f.json" ]; then
        echo "missing or empty: $dir/$f.json"
        missing=1
    fi
done
if [ "$missing" -eq 0 ]; then
    echo "all $count figure outputs present in $dir/"
fi
exit "$missing"
