#!/usr/bin/env bash
# Asserts that every experiment id emitted its JSON output. The expected
# file list comes from `figures -- --list` — the same table that runs the
# experiments — so this check can never drift from the binary: adding an
# experiment automatically adds its output to the requirement, and a
# mismatch between the table's declared output and the runner's actual
# save_json name shows up here as a missing file.
#
# Shared by the CI figures-smoke job and scripts/verify.sh.
#
# Usage: scripts/check_figures_outputs.sh [results-dir]
# The directory defaults to $FLSTORE_RESULTS_DIR, then "results".
set -euo pipefail

cd "$(dirname "$0")/.."
dir="${1:-${FLSTORE_RESULTS_DIR:-results}}"

expected="$(cargo run -q --release --bin figures -- --list)"
if [ -z "$expected" ]; then
    echo "figures -- --list returned no experiments" >&2
    exit 1
fi

# Experiments the suite must never silently lose: the quota/pressure
# sweep (tenancy) feeds the parallel-determinism gate, and the durability
# drill is the only figures-level coverage of crash recovery and the
# cold tier, so deregistering either would shrink coverage without any
# file going missing.
for required in tenancy jobs overhead durability keyshard; do
    if ! echo "$expected" | grep -qx "$required"; then
        echo "required experiment '$required' missing from figures -- --list" >&2
        exit 1
    fi
done

missing=0
count=0
for f in $expected; do
    count=$((count + 1))
    if [ ! -s "$dir/$f.json" ]; then
        echo "missing or empty: $dir/$f.json"
        missing=1
    fi
done
if [ "$missing" -eq 0 ]; then
    echo "all $count figure outputs present in $dir/"
fi

# The bench inventory printed by `figures -- --list-benches` must list
# exactly the [[bench]] targets declared in crates/bench/Cargo.toml —
# adding a bench without inventorying it (or vice versa) fails here.
listed="$(cargo run -q --release --bin figures -- --list-benches | cut -f1 | sort)"
declared="$(awk '/^\[\[bench\]\]/{getline; sub(/^name = "/,""); sub(/"$/,""); print}' \
    crates/bench/Cargo.toml | sort)"
if [ "$listed" != "$declared" ]; then
    echo "bench inventory drift:"
    echo "  figures -- --list-benches: $(echo "$listed" | tr '\n' ' ')"
    echo "  crates/bench/Cargo.toml:   $(echo "$declared" | tr '\n' ' ')"
    missing=1
else
    echo "bench inventory in sync ($(echo "$listed" | wc -l) targets)"
fi
exit "$missing"
