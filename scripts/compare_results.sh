#!/usr/bin/env bash
# Byte-diffs two figure-result directories: every JSON output must be
# identical, except sanctioned wall-clock fields, which are normalized
# away before comparing:
#
#   * overhead.json's dispatch_us/complete_us/record_us — the §5.5
#     overhead microbenchmark times real operations;
#   * any numeric field whose name ends in `_wall` — the naming
#     convention the network-plane outputs (netserve.json, loadgen
#     reports) use to mark measured latency/goodput. Everything else in
#     those files (counts, checksums over response payload bytes) is
#     pure payload fact and must reproduce byte-for-byte.
#
# These are the ONLY normalized bytes by design: real wall-clock reads
# are banned everywhere else in the workspace (`Instant::now` — see
# analyze-allowlist.txt and clippy.toml), so every other output derives
# purely from the simulated clock and seeded RNG streams and must
# reproduce byte-for-byte. Widening the normalization beyond these two
# rules would silently weaken the determinism gate; producers must opt
# in by using the `_wall` suffix, never by editing this script.
#
# This is the standing parallel-determinism gate: CI runs the figures
# sweep sequentially and with --threads 4 and feeds both directories
# here, so any divergence between the sharded executor and sequential
# serving fails the build.
#
# Usage: scripts/compare_results.sh <dir-a> <dir-b>
set -euo pipefail
# Empty result directories must hit the explicit "no result files" check
# below, not iterate over a literal '*.json'.
shopt -s nullglob

if [ $# -ne 2 ]; then
    echo "usage: scripts/compare_results.sh <dir-a> <dir-b>" >&2
    exit 2
fi
a="$1"
b="$2"

# Strip the sanctioned wall-clock fields: the overhead.json *_us trio
# (applied only to that file) and the `_wall`-suffixed convention
# (applied everywhere).
normalize_overhead() {
    sed -E 's/"(dispatch|complete|record)_us": *[0-9.eE+-]+/"\1_us": "WALL-CLOCK"/g' "$1"
}
normalize_wall() {
    sed -E 's/"([A-Za-z0-9_]+_wall)": *[0-9.eE+-]+/"\1": "WALL-CLOCK"/g' "$1"
}

fail=0
count=0
for f in "$a"/*.json; do
    name="$(basename "$f")"
    count=$((count + 1))
    if [ ! -f "$b/$name" ]; then
        echo "missing in $b: $name"
        fail=1
        continue
    fi
    if [ "$name" = "overhead.json" ]; then
        if ! diff -q <(normalize_overhead "$f") <(normalize_overhead "$b/$name") >/dev/null; then
            echo "differs (beyond wall-clock fields): $name"
            fail=1
        fi
    elif ! diff -q <(normalize_wall "$f") <(normalize_wall "$b/$name") >/dev/null; then
        echo "differs (beyond _wall fields): $name"
        fail=1
    fi
done

if [ "$count" -eq 0 ]; then
    echo "no result files in $a" >&2
    exit 1
fi
for f in "$b"/*.json; do
    name="$(basename "$f")"
    if [ ! -f "$a/$name" ]; then
        echo "missing in $a: $name"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "all $count result files identical across $a and $b (modulo sanctioned wall-clock fields)"
fi
exit "$fail"
