#!/usr/bin/env bash
# Byte-diffs two figure-result directories: every JSON output must be
# identical, except overhead.json's wall-clock timing fields
# (dispatch_us/complete_us/record_us — real elapsed time, different on
# every run), which are normalized away before comparing.
#
# Those *_us fields are the ONLY normalized bytes by design: the §5.5
# overhead microbenchmark is the one sanctioned consumer of real
# wall-clock time in the workspace (`Instant::now` is banned everywhere
# else — see analyze-allowlist.txt and clippy.toml), so overhead.json is
# the one file allowed to carry run-dependent bytes, and only in those
# fields. Every other output derives purely from the simulated clock and
# seeded RNG streams and must reproduce byte-for-byte. Widening the
# normalization here would silently weaken the determinism gate.
#
# This is the standing parallel-determinism gate: CI runs the figures
# sweep sequentially and with --threads 4 and feeds both directories
# here, so any divergence between the sharded executor and sequential
# serving fails the build.
#
# Usage: scripts/compare_results.sh <dir-a> <dir-b>
set -euo pipefail
# Empty result directories must hit the explicit "no result files" check
# below, not iterate over a literal '*.json'.
shopt -s nullglob

if [ $# -ne 2 ]; then
    echo "usage: scripts/compare_results.sh <dir-a> <dir-b>" >&2
    exit 2
fi
a="$1"
b="$2"

# Strip the wall-clock fields from overhead.json rows.
normalize_overhead() {
    sed -E 's/"(dispatch|complete|record)_us": *[0-9.eE+-]+/"\1_us": "WALL-CLOCK"/g' "$1"
}

fail=0
count=0
for f in "$a"/*.json; do
    name="$(basename "$f")"
    count=$((count + 1))
    if [ ! -f "$b/$name" ]; then
        echo "missing in $b: $name"
        fail=1
        continue
    fi
    if [ "$name" = "overhead.json" ]; then
        if ! diff -q <(normalize_overhead "$f") <(normalize_overhead "$b/$name") >/dev/null; then
            echo "differs (beyond wall-clock fields): $name"
            fail=1
        fi
    elif ! cmp -s "$f" "$b/$name"; then
        echo "differs: $name"
        fail=1
    fi
done

if [ "$count" -eq 0 ]; then
    echo "no result files in $a" >&2
    exit 1
fi
for f in "$b"/*.json; do
    name="$(basename "$f")"
    if [ ! -f "$a/$name" ]; then
        echo "missing in $a: $name"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "all $count result files identical across $a and $b (modulo overhead.json wall-clock)"
fi
exit "$fail"
