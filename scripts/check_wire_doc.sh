#!/usr/bin/env bash
# Drift guard for the wire-protocol spec: the frame-tag table in
# docs/WIRE.md (between the wire-frames:begin/end markers) must match
# `flstore-net --list-frames` exactly — same tags, same names, same
# directions, same summaries, same order. A frame added, removed, or
# reworded in crates/net/src/wire.rs without updating the spec (or vice
# versa) fails CI here.
#
# Usage: scripts/check_wire_doc.sh
set -euo pipefail
cd "$(dirname "$0")/.."

actual="$(cargo run -q -p flstore-net --bin flstore-net -- --list-frames)"

# Extract the WIRE.md table rows and reduce them to the same
# tab-separated `0xNN<TAB>name<TAB>direction<TAB>summary` shape
# --list-frames emits.
documented="$(
    awk '/<!-- wire-frames:begin -->/{f=1; next} /<!-- wire-frames:end -->/{f=0} f' docs/WIRE.md |
        grep '^| `' |
        sed -E 's/^\| `([^`]+)` \| ([^|]+) \| ([^|]+) \| (.*) \|$/\1\t\2\t\3\t\4/' |
        sed -E 's/[[:space:]]+\t/\t/g; s/\t[[:space:]]+/\t/g; s/[[:space:]]+$//'
)"

if diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >/dev/null; then
    count="$(printf '%s\n' "$actual" | wc -l)"
    echo "wire frames in sync: $count frames match between --list-frames and docs/WIRE.md"
else
    echo "docs/WIRE.md frame table has drifted from flstore-net --list-frames:" >&2
    diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >&2 || true
    echo >&2
    echo "update the table between <!-- wire-frames:begin/end --> in docs/WIRE.md" >&2
    echo "(or the FRAMES inventory in crates/net/src/wire.rs) so they agree." >&2
    exit 1
fi
