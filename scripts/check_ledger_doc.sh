#!/usr/bin/env bash
# Drift guard for the durability-ledger spec: the record-tag table in
# docs/LEDGER.md (between the ledger-records:begin/end markers) must
# match `flstore-durability --list-records` exactly — same tags, same
# names, same payload layouts, same summaries, same order. A record
# added, removed, or reworded in crates/durability/src/records.rs
# without updating the spec (or vice versa) fails CI here.
#
# Usage: scripts/check_ledger_doc.sh
set -euo pipefail
cd "$(dirname "$0")/.."

actual="$(cargo run -q -p flstore-durability --bin flstore-durability -- --list-records)"

# Extract the LEDGER.md table rows and reduce them to the same
# tab-separated `0xNN<TAB>name<TAB>payload<TAB>summary` shape
# --list-records emits.
documented="$(
    awk '/<!-- ledger-records:begin -->/{f=1; next} /<!-- ledger-records:end -->/{f=0} f' docs/LEDGER.md |
        grep '^| `' |
        sed -E 's/^\| `([^`]+)` \| ([^|]+) \| ([^|]+) \| (.*) \|$/\1\t\2\t\3\t\4/' |
        sed -E 's/[[:space:]]+\t/\t/g; s/\t[[:space:]]+/\t/g; s/[[:space:]]+$//'
)"

if diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >/dev/null; then
    count="$(printf '%s\n' "$actual" | wc -l)"
    echo "ledger records in sync: $count records match between --list-records and docs/LEDGER.md"
else
    echo "docs/LEDGER.md record table has drifted from flstore-durability --list-records:" >&2
    diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >&2 || true
    echo >&2
    echo "update the table between <!-- ledger-records:begin/end --> in docs/LEDGER.md" >&2
    echo "(or the RECORDS inventory in crates/durability/src/records.rs) so they agree." >&2
    exit 1
fi
