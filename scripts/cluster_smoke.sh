#!/usr/bin/env bash
# End-to-end failover smoke: the real server binary (lock-order detector
# armed) fronting a 3-node rf=2 replicated cluster over real TCP, with
# node 1 killed mid-run — the simulated equivalent of SIGKILL-ing that
# node's process: its memory is dropped, its write-ahead ledger keeps
# only what was flushed, and it goes silent until its scheduled rejoin.
#
#   1. The churned cluster serves pass 1 of a seeded closed-loop
#      schedule. Node 1 (the primary for job 1's replica set) dies 1800
#      virtual seconds in; during the detection window the server
#      answers typed Relocated redirects, and the load generator's
#      bounded retry budget (--retries) rides through them. The gate:
#      ZERO requests failed *by the failover* — the final ok/rejected
#      counts must equal the churn-free twin's exactly (the trace's own
#      application-level rejections are identical on both) — and at
#      least one redirect was actually exercised. The killed node
#      rejoins from its own ledger before pass 2.
#   2. The churned cluster serves pass 2 (the post-failover pass, now on
#      the promoted replica + repaired spare).
#   3. A churn-free twin — identical cluster, no failure schedule —
#      serves both passes. Pass 2's reports must match the churned run's
#      byte-for-byte after scripts/compare_results.sh normalizes the
#      `_wall` fields: the failover, the re-replication, and the rejoin
#      are unobservable in post-failover payload bytes.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p flstore-net --features lock-order --bin flstore-net
cargo build --release -q -p flstore-loadgen --bin flstore-loadgen

server_pid=""
server_log="$(mktemp)"
data_dir="$(mktemp -d)"
ref_data_dir="$(mktemp -d)"
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$server_log" "$data_dir" "$ref_data_dir"
}
trap cleanup EXIT

# start_server <extra flags...> — launches a fresh server on an
# ephemeral port and sets $addr from its "listening on" line.
start_server() {
    : >"$server_log"
    target/release/flstore-net serve --addr 127.0.0.1:0 "$@" >"$server_log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$server_log")"
        [ -n "$addr" ] && return 0
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "cluster-smoke: server exited before binding:" >&2
            cat "$server_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "cluster-smoke: server never reported its address" >&2
    exit 1
}

out=cluster-smoke-results
rm -rf "$out"
mkdir -p "$out/churned" "$out/churn-free"
cluster_flags=(--cluster-nodes 3 --cluster-rf 2 --detect-ms 60000 --flush-every 1)
# Window 1 keeps the closed loop strictly in schedule order, so a
# redirected envelope is resolved (retried past detection) before the
# next one is sent — the "in-flight window" the availability bound
# allows is exactly the one outstanding request.
pass_flags=(--mode closed --requests 200 --window 1 --retries 2)

# --- 1+2. churned cluster: kill node 1 mid-pass-1, rejoin before pass 2
start_server "${cluster_flags[@]}" --data-dir "$data_dir" --kill 1@1800 --rejoin 1@3000
echo "cluster-smoke: churned cluster at $addr (node 1 dies at t=1800s, rejoins at t=3000s)"
target/release/flstore-loadgen --addr "$addr" "${pass_flags[@]}" \
    --seed 7 --out "$out/churned-pass1.json"
if ! grep -Eq '"redirected": [1-9]' "$out/churned-pass1.json"; then
    echo "cluster-smoke: pass 1 never saw a Relocated redirect — the kill did not bite:" >&2
    cat "$out/churned-pass1.json" >&2
    exit 1
fi
target/release/flstore-loadgen --addr "$addr" "${pass_flags[@]}" \
    --seed 31 --out "$out/churned/pass2.json"
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# --- 3. the churn-free twin: same cluster, no failure schedule --------
start_server "${cluster_flags[@]}" --data-dir "$ref_data_dir"
echo "cluster-smoke: churn-free twin at $addr (pass 1 + pass 2)"
target/release/flstore-loadgen --addr "$addr" "${pass_flags[@]}" \
    --seed 7 --out "$out/churn-free-pass1.json" 2>/dev/null
if ! grep -q '"redirected": 0' "$out/churn-free-pass1.json"; then
    echo "cluster-smoke: churn-free twin answered redirects without a failure schedule" >&2
    exit 1
fi
target/release/flstore-loadgen --addr "$addr" "${pass_flags[@]}" \
    --seed 31 --out "$out/churn-free/pass2.json" 2>/dev/null
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Zero requests failed by the failover: every final count of pass 1 —
# ok, rejected, transport errors — must equal the churn-free twin's.
# (The schedules carry a handful of application-level rejections by
# design; they are identical on both sides, so any extra rejection here
# is a request the failover lost.)
field() { sed -n "s/^  \"$2\": \([0-9]*\),*$/\1/p" "$1"; }
for name in ok rejected transport_errors; do
    churned="$(field "$out/churned-pass1.json" "$name")"
    twin="$(field "$out/churn-free-pass1.json" "$name")"
    if [ "$churned" != "$twin" ]; then
        echo "cluster-smoke: pass-1 '$name' diverged: churned=$churned churn-free=$twin" >&2
        exit 1
    fi
done
echo "cluster-smoke: pass 1 rode through the failover with zero failed requests"

# Pass 1 reports legitimately differ beyond those counts (the churned
# one carries nonzero retried/redirected columns and its redirected
# envelope was served post-failover); the post-failover pass must be
# byte-identical modulo `_wall` fields.
scripts/compare_results.sh "$out/churned" "$out/churn-free"

echo
echo "cluster-smoke: OK (node kill survived with zero failed requests; post-failover pass byte-identical to the churn-free twin)"
