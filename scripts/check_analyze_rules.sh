#!/usr/bin/env bash
# Drift guard for the determinism-lint rule inventory: the README's
# "Correctness tooling" rules table (between the analyze-rules:begin/end
# markers) must match `flstore-analyze --list-rules` exactly — same
# rules, same scopes, same summaries, same order. A rule added, removed,
# or reworded in crates/analyze/src/rules.rs without updating the README
# (or vice versa) fails CI here.
#
# Usage: scripts/check_analyze_rules.sh
set -euo pipefail
cd "$(dirname "$0")/.."

actual="$(cargo run -q -p flstore-analyze -- --list-rules)"

# Extract the README table rows and reduce them to the same
# tab-separated `id<TAB>scope<TAB>summary` shape --list-rules emits.
documented="$(
    awk '/<!-- analyze-rules:begin -->/{f=1; next} /<!-- analyze-rules:end -->/{f=0} f' README.md |
        grep '^| `' |
        sed -E 's/^\| `([^`]+)` \| ([^|]+) \| (.*) \|$/\1\t\2\t\3/' |
        sed -E 's/[[:space:]]+\t/\t/g; s/\t[[:space:]]+/\t/g; s/[[:space:]]+$//'
)"

if diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >/dev/null; then
    count="$(printf '%s\n' "$actual" | wc -l)"
    echo "analyze rules in sync: $count rules match between --list-rules and README.md"
else
    echo "README.md rules table has drifted from flstore-analyze --list-rules:" >&2
    diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >&2 || true
    echo >&2
    echo "update the table between <!-- analyze-rules:begin/end --> in README.md" >&2
    echo "(or the inventory in crates/analyze/src/rules.rs) so they agree." >&2
    exit 1
fi
