#!/usr/bin/env bash
# End-to-end smoke of the network serving plane: the real server binary
# (lock-order detector armed) driven by the real load generator over
# loopback.
#
#   1. Closed-loop determinism: the same seeded schedule replayed
#      against a fresh 4-shard server and a fresh sequential server;
#      the two reports must be byte-identical after
#      scripts/compare_results.sh normalizes the `_wall` fields —
#      same counts, same FNV-1a response checksum.
#   2. Overload is typed: an open-loop burst into `--max-inflight 2`
#      must see Overloaded envelopes and ZERO transport errors (no
#      drops, no resets) — `--expect-overload` makes the loadgen the
#      gate.
#   3. Connection limiting is clean: 5 simultaneous connections into
#      `--max-conns 2` probe as served/overloaded with zero transport
#      errors.
#   4. Pacing is result-transparent: the same open-loop schedule sent
#      unpaced and at `--rate 2000` against fresh servers must produce
#      byte-identical deterministic report fields — arrival timing can
#      only move `_wall` numbers. One connection, because only a total
#      submission order is comparable across runs (multi-connection
#      open loop races envelopes between sockets by design).
#
# Usage: scripts/net_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Build up front so `listening on` is the first line the log parser sees
# and the per-run startup is fast.
cargo build --release -q -p flstore-net --features lock-order --bin flstore-net
cargo build --release -q -p flstore-loadgen --bin flstore-loadgen

server_pid=""
server_log="$(mktemp)"
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -f "$server_log"
}
trap cleanup EXIT

# start_server <extra flags...> — launches a fresh server on an
# ephemeral port and sets $addr from its "listening on" line.
start_server() {
    : >"$server_log"
    target/release/flstore-net serve --addr 127.0.0.1:0 "$@" >"$server_log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$server_log")"
        [ -n "$addr" ] && return 0
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "net-smoke: server exited before binding:" >&2
            cat "$server_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "net-smoke: server never reported its address" >&2
    exit 1
}

stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

out=net-smoke-results
rm -rf "$out"
mkdir -p "$out/sharded" "$out/sequential"

# --- 1. closed-loop determinism: 4-shard vs sequential serving -------
start_server --jobs 1 --threads 4
echo "net-smoke: closed loop vs 4-shard server at $addr"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 312 --seed 7 --out "$out/sharded/netload.json"
stop_server

start_server --jobs 1 --threads 1
echo "net-smoke: closed loop vs sequential server at $addr"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 312 --seed 7 --out "$out/sequential/netload.json"
stop_server

scripts/compare_results.sh "$out/sharded" "$out/sequential"

# --- 2. overload surfaces as typed envelopes, never resets -----------
start_server --jobs 1 --threads 4 --max-inflight 2
echo "net-smoke: open-loop burst into max_inflight=2 at $addr"
target/release/flstore-loadgen --addr "$addr" --mode burst \
    --connections 4 --requests 312 --seed 7 --expect-overload \
    --out "$out/burst.json"
stop_server

# --- 3. connection limiting: typed envelope + clean half-close -------
start_server --jobs 1 --threads 1 --max-conns 2
echo "net-smoke: connection probe into max_conns=2 at $addr"
target/release/flstore-loadgen --addr "$addr" --mode probe \
    --connections 5 --expect-overload
stop_server

# --- 4. paced arrivals change nothing but wall-clock fields ----------
mkdir -p "$out/unpaced" "$out/paced"
start_server --jobs 1 --threads 4
echo "net-smoke: unpaced open loop at $addr"
target/release/flstore-loadgen --addr "$addr" --mode burst \
    --connections 1 --requests 312 --seed 7 --out "$out/unpaced/openload.json"
stop_server

start_server --jobs 1 --threads 4
echo "net-smoke: paced open loop (--rate 2000) at $addr"
target/release/flstore-loadgen --addr "$addr" --mode burst \
    --connections 1 --requests 312 --seed 7 --rate 2000 \
    --out "$out/paced/openload.json"
stop_server

scripts/compare_results.sh "$out/unpaced" "$out/paced"

echo
echo "net-smoke: OK (deterministic closed loop, typed overload, clean connection limiting, pacing result-transparent)"
