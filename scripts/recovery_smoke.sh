#!/usr/bin/env bash
# End-to-end crash-recovery smoke: the real server binary (lock-order
# detector armed) writing a real write-ahead ledger, killed with SIGKILL
# and recovered, byte-diffed against an uninterrupted run.
#
#   1. A durable server (--data-dir, synchronous commit) serves pass 1
#      of a seeded closed-loop schedule, then dies by SIGKILL — no
#      shutdown path, exactly what the ledger must survive.
#   2. A fresh server process on the same --data-dir recovers (its log
#      must say so) and serves pass 2.
#   3. An identically configured durable server on its own data-dir
#      serves pass 1 then pass 2 in one uninterrupted life — the only
#      variable is the kill. Both passes' reports must match the killed
#      run's byte-for-byte after scripts/compare_results.sh normalizes
#      the `_wall` fields: pass 1 proves cross-process determinism,
#      pass 2 proves the recovered state (cache, cold tier included) is
#      the pre-crash state.
#
# Usage: scripts/recovery_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p flstore-net --features lock-order --bin flstore-net
cargo build --release -q -p flstore-loadgen --bin flstore-loadgen

server_pid=""
server_log="$(mktemp)"
data_dir="$(mktemp -d)"
ref_data_dir="$(mktemp -d)"
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$server_log" "$data_dir" "$ref_data_dir"
}
trap cleanup EXIT

# start_server <extra flags...> — launches a fresh server on an
# ephemeral port and sets $addr from its "listening on" line.
start_server() {
    : >"$server_log"
    target/release/flstore-net serve --addr 127.0.0.1:0 "$@" >"$server_log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$server_log")"
        [ -n "$addr" ] && return 0
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "recovery-smoke: server exited before binding:" >&2
            cat "$server_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "recovery-smoke: server never reported its address" >&2
    exit 1
}

out=recovery-smoke-results
rm -rf "$out"
mkdir -p "$out/killed" "$out/uninterrupted"
durable_flags=(--jobs 1 --threads 2 --flush-every 1 --spill)

# --- 1. durable pass 1, then die by SIGKILL --------------------------
start_server "${durable_flags[@]}" --data-dir "$data_dir"
echo "recovery-smoke: durable pass 1 at $addr (then SIGKILL)"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 160 --seed 7 --out "$out/killed/pass1.json"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# --- 2. recover on the same data-dir, serve pass 2 -------------------
start_server "${durable_flags[@]}" --data-dir "$data_dir"
if ! grep -q '^durable: 1 job(s) recovered from ledger$' "$server_log"; then
    echo "recovery-smoke: restarted server did not report a recovery:" >&2
    cat "$server_log" >&2
    exit 1
fi
echo "recovery-smoke: recovered at $addr, durable pass 2"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 160 --seed 21 --out "$out/killed/pass2.json"
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# --- 3. the uninterrupted reference: both passes in one life ---------
start_server "${durable_flags[@]}" --data-dir "$ref_data_dir"
echo "recovery-smoke: uninterrupted reference at $addr (pass 1 + pass 2)"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 160 --seed 7 --out "$out/uninterrupted/pass1.json"
target/release/flstore-loadgen --addr "$addr" --mode closed \
    --requests 160 --seed 21 --out "$out/uninterrupted/pass2.json"
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

scripts/compare_results.sh "$out/killed" "$out/uninterrupted"

echo
echo "recovery-smoke: OK (SIGKILL'd ledger recovered; both passes byte-identical to the uninterrupted run)"
