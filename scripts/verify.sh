#!/usr/bin/env bash
# Tier-1 verification for the FLStore reproduction workspace.
#
# Usage: scripts/verify.sh [--skip-smoke]
#
# Runs the SAME steps as .github/workflows/ci.yml, in the same order, so
# local verify and CI cannot drift:
#   1. cargo build --release                   (tier1: whole workspace)
#   2. cargo test -q                           (tier1: unit + property + integration + doctests)
#   3. cargo build --benches                   (tier1: Criterion benches compile)
#   4. cargo clippy --all-targets -D warnings  (lint: BLOCKING, like CI)
#   5. cargo fmt --check                       (lint: BLOCKING, like CI)
#   6. cargo doc --no-deps -D warnings         (lint: public API stays documented)
#   7. determinism lint (analyze: BLOCKING, like CI) + rules/README
#      drift guard via scripts/check_analyze_rules.sh + wire-protocol
#      spec drift guard via scripts/check_wire_doc.sh + ledger-format
#      spec drift guard via scripts/check_ledger_doc.sh + cluster-plane
#      spec drift guard via scripts/check_cluster_doc.sh
#   8. lock-order detector tests: parking_lot unit tests + the exec
#      stress/rendezvous/seeded-inversion suite + the net socket suite,
#      all --features lock-order
#   9. figures smoke: every experiment id end-to-end at --fast scale into
#      results-smoke/ (so full-scale results/ are never clobbered), then
#      scripts/check_figures_outputs.sh — the same check CI runs.
#  10. parallel determinism: the same sweep again with --threads 4 (built
#      with the lock-order detector armed) into results-smoke-threads4/,
#      byte-diffed against the sequential run via
#      scripts/compare_results.sh (sanctioned wall-clock fields
#      excepted) — the sharded executor must be bit-for-bit sequential.
#  11. intra-job determinism: the sweep a third time with --threads 4
#      --key-shards 4 (MetaKey-sharded cache engines, work-stealing
#      serves, lock-order armed) into results-smoke-keyshards4/,
#      byte-diffed against the sequential run — the key-shard layout
#      must be unobservable in every result byte.
#  12. net smoke: the real server binary + load generator over loopback
#      via scripts/net_smoke.sh — closed-loop reports byte-diffed across
#      shard counts, overload asserted typed (zero transport errors),
#      paced arrivals asserted result-transparent.
#  13. recovery smoke: a durable server SIGKILL'd mid-life and recovered
#      from its write-ahead ledger via scripts/recovery_smoke.sh —
#      served responses byte-diffed against an uninterrupted run.
#  14. cluster smoke: the net server fronting a 3-node rf=2 cluster with
#      a node killed mid-run via scripts/cluster_smoke.sh — zero failed
#      requests after retries, post-failover pass byte-diffed against a
#      churn-free twin.
#      Skip 9–14 with --skip-smoke for a quick edit-compile loop.
set -euo pipefail

cd "$(dirname "$0")/.."

skip_smoke=0
for arg in "$@"; do
    case "$arg" in
        --skip-smoke) skip_smoke=1 ;;
        *)
            echo "unknown argument: $arg" >&2
            echo "usage: scripts/verify.sh [--skip-smoke]" >&2
            exit 2
            ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
run cargo build --benches
run cargo clippy -q --all-targets -- -D warnings
run cargo fmt --check
echo
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Correctness tooling (blocking, like CI's analyze job): the determinism
# lint over the workspace sources, the rules/README drift guard, and the
# lock-order deadlock detector suites.
run cargo run -q -p flstore-analyze -- lint
run scripts/check_analyze_rules.sh
run scripts/check_wire_doc.sh
run scripts/check_ledger_doc.sh
run scripts/check_cluster_doc.sh
run cargo test -q -p parking_lot --features lock-order
run cargo test -q -p flstore-exec --features lock-order
run cargo test -q -p flstore-net --features lock-order

if [ "$skip_smoke" -eq 0 ]; then
    # Smoke outputs go to their own directory so this run can neither be
    # satisfied by stale files nor clobber full-scale results/ the
    # developer may have spent minutes generating. (CI uses the default
    # results/ from a fresh checkout.)
    export FLSTORE_RESULTS_DIR=results-smoke
    rm -rf results-smoke
    run cargo run --release --bin figures -- all --fast
    run scripts/check_figures_outputs.sh results-smoke

    # Parallel determinism gate: the sharded executor must reproduce the
    # sequential sweep byte for byte. --features lock-order arms the
    # deadlock detector, so an inversion fails loudly instead of hanging.
    export FLSTORE_RESULTS_DIR=results-smoke-threads4
    rm -rf results-smoke-threads4
    run cargo run --release -p flstore-bench --features lock-order --bin figures -- all --fast --threads 4
    run scripts/compare_results.sh results-smoke results-smoke-threads4

    # Intra-job determinism gate: the same sweep with every cache engine
    # MetaKey-sharded 4 ways — serves run through the work-stealing
    # plane — must also reproduce the sequential bytes. The shard layout
    # is a serve-phase fact; it may never reach a result file.
    export FLSTORE_RESULTS_DIR=results-smoke-keyshards4
    rm -rf results-smoke-keyshards4
    run cargo run --release -p flstore-bench --features lock-order --bin figures -- all --fast --threads 4 --key-shards 4
    unset FLSTORE_RESULTS_DIR
    run scripts/compare_results.sh results-smoke results-smoke-keyshards4

    # Network plane smoke: real server binary + load generator over
    # loopback, lock-order armed; closed-loop determinism across shard
    # counts, typed overload, clean connection limiting, paced arrivals.
    run scripts/net_smoke.sh

    # Durability plane smoke: SIGKILL the durable server mid-life,
    # recover from the ledger, byte-diff serving against an
    # uninterrupted twin.
    run scripts/recovery_smoke.sh

    # Cluster plane smoke: the net server fronting a 3-node rf=2
    # cluster, one node killed mid-run; the retrying load generator
    # must lose zero requests and the post-failover pass must
    # byte-match a churn-free twin.
    run scripts/cluster_smoke.sh
else
    echo
    echo "==> figures smoke SKIPPED (--skip-smoke); CI always runs it"
fi

echo
echo "verify: OK"
