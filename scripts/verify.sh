#!/usr/bin/env bash
# Tier-1 verification for the FLStore reproduction workspace.
#
# Usage: scripts/verify.sh
#
# Runs, in order:
#   1. cargo build --release        (whole workspace, via default-members)
#   2. cargo test -q                (unit + property + integration + doctests)
#   3. cargo build --benches        (Criterion benches compile; not executed)
#   4. cargo clippy --all-targets   (NON-BLOCKING: reported, never fails the run)
set -uo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

set -e
run cargo build --release
run cargo test -q
run cargo build --benches
set +e

echo
echo "==> cargo clippy -q --all-targets (non-blocking)"
if cargo clippy -q --all-targets 2>&1 | tail -n 40; then
    echo "clippy: clean (or warnings above)"
else
    echo "clippy: reported issues above (non-blocking)"
fi

echo
echo "verify: OK"
