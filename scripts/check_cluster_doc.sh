#!/usr/bin/env bash
# Drift guard for the cluster-plane spec: the failure-model table in
# docs/CLUSTER.md (between the cluster-failure-events:begin/end markers)
# must match `flstore-cluster --list-events` exactly — same event names,
# same semantics, same order. A failure kind added, removed, or reworded
# in crates/cluster/src/failure.rs without updating the spec (or vice
# versa) fails CI here.
#
# Usage: scripts/check_cluster_doc.sh
set -euo pipefail
cd "$(dirname "$0")/.."

actual="$(cargo run -q -p flstore-cluster --bin flstore-cluster -- --list-events)"

# Extract the CLUSTER.md table rows and reduce them to the same
# tab-separated `name<TAB>summary` shape --list-events emits.
documented="$(
    awk '/<!-- cluster-failure-events:begin -->/{f=1; next} /<!-- cluster-failure-events:end -->/{f=0} f' docs/CLUSTER.md |
        grep '^| `' |
        sed -E 's/^\| `([^`]+)` \| (.*) \|$/\1\t\2/' |
        sed -E 's/[[:space:]]+\t/\t/g; s/\t[[:space:]]+/\t/g; s/[[:space:]]+$//'
)"

if diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >/dev/null; then
    count="$(printf '%s\n' "$actual" | wc -l)"
    echo "cluster failure events in sync: $count events match between --list-events and docs/CLUSTER.md"
else
    echo "docs/CLUSTER.md failure-model table has drifted from flstore-cluster --list-events:" >&2
    diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >&2 || true
    echo >&2
    echo "update the table between <!-- cluster-failure-events:begin/end --> in docs/CLUSTER.md" >&2
    echo "(or the FAILURE_EVENTS inventory in crates/cluster/src/failure.rs) so they agree." >&2
    exit 1
fi
