//! Property-based invariants for the FL substrate.

use proptest::prelude::*;

use flstore_fl::aggregate::fedavg;
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::metadata::{MetaKey, MetaValue};
use flstore_fl::update::{ModelUpdate, UpdateMetrics};
use flstore_fl::weights::WeightVector;
use flstore_fl::zoo::ModelArch;

fn weight_pair() -> impl Strategy<Value = (WeightVector, WeightVector)> {
    (4usize..64).prop_flat_map(|dim| {
        (
            prop::collection::vec(-100.0f32..100.0, dim),
            prop::collection::vec(-100.0f32..100.0, dim),
        )
            .prop_map(|(a, b)| (WeightVector::from_vec(a), WeightVector::from_vec(b)))
    })
}

fn weight_vec() -> impl Strategy<Value = WeightVector> {
    prop::collection::vec(-100.0f32..100.0, 4..64).prop_map(WeightVector::from_vec)
}

fn update_with(weights: WeightVector, client: u32, samples: u32) -> ModelUpdate {
    ModelUpdate {
        job: JobId::new(0),
        client: ClientId::new(client),
        round: Round::new(0),
        weights,
        metrics: UpdateMetrics {
            local_loss: 1.0,
            local_accuracy: 0.5,
            train_time_s: 10.0,
            upload_time_s: 1.0,
            num_samples: samples,
            staleness: 0,
        },
        ground_truth_malicious: false,
    }
}

proptest! {
    #[test]
    fn cosine_similarity_is_bounded_and_symmetric((a, b) in weight_pair()) {
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn l2_distance_is_a_metric((a, b) in weight_pair()) {
        prop_assert!(a.l2_distance(&b) >= 0.0);
        prop_assert!((a.l2_distance(&b) - b.l2_distance(&a)).abs() < 1e-6);
        prop_assert!(a.l2_distance(&a) < 1e-6);
    }

    #[test]
    fn weight_bytes_round_trip(v in weight_vec()) {
        let bytes = v.to_bytes();
        let back = WeightVector::from_bytes(&bytes).expect("aligned");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn fedavg_stays_in_coordinate_hull(
        dim in 2usize..16,
        rows in prop::collection::vec((prop::collection::vec(-50.0f32..50.0, 16), 1u32..1000), 1..8),
    ) {
        let updates: Vec<ModelUpdate> = rows
            .iter()
            .enumerate()
            .map(|(i, (vals, samples))| {
                update_with(WeightVector::from_vec(vals[..dim].to_vec()), i as u32, *samples)
            })
            .collect();
        let agg = fedavg(JobId::new(0), Round::new(0), &updates).expect("non-empty");
        for d in 0..dim {
            let column: Vec<f32> = updates.iter().map(|u| u.weights.as_slice()[d]).collect();
            let lo = column.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = column.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let v = agg.weights.as_slice()[d];
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3,
                "coordinate {d}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn metadata_blob_round_trip_any_round(seed in 0u64..500) {
        let cfg = FlJobConfig {
            seed,
            rounds: 2,
            ..FlJobConfig::quick_test(JobId::new(3))
        };
        let mut sim = FlJobSim::new(cfg);
        let record = sim.next().expect("rounds");
        for u in &record.updates {
            let v = MetaValue::Update(u.clone());
            let blob = v.to_blob(&ModelArch::RESNET18);
            prop_assert_eq!(MetaValue::from_blob(&blob), Some(v));
        }
    }

    #[test]
    fn job_rounds_have_consistent_shape(seed in 0u64..200) {
        let cfg = FlJobConfig {
            seed,
            rounds: 5,
            ..FlJobConfig::quick_test(JobId::new(4))
        };
        let pool = cfg.total_clients;
        let per_round = cfg.clients_per_round;
        for (i, record) in FlJobSim::new(cfg).enumerate() {
            prop_assert_eq!(record.round.as_u32(), i as u32);
            prop_assert!(!record.updates.is_empty());
            prop_assert!(record.updates.len() <= per_round as usize);
            prop_assert_eq!(record.metrics.clients.len(), pool as usize);
            prop_assert_eq!(record.aggregate.num_clients as usize, record.updates.len());
            // Updates come from distinct clients.
            let mut clients: Vec<u32> =
                record.updates.iter().map(|u| u.client.as_u32()).collect();
            clients.sort_unstable();
            clients.dedup();
            prop_assert_eq!(clients.len(), record.updates.len());
            // Losses and accuracies are sane.
            for u in &record.updates {
                prop_assert!(u.metrics.local_loss.is_finite() && u.metrics.local_loss >= 0.0);
                prop_assert!((0.0..=1.0).contains(&u.metrics.local_accuracy));
                prop_assert!(u.metrics.train_time_s > 0.0);
            }
        }
    }

    #[test]
    fn meta_keys_are_injective(
        job in 0u32..100, round in 0u32..1000, client in 0u32..250,
        job2 in 0u32..100, round2 in 0u32..1000, client2 in 0u32..250,
    ) {
        let a = MetaKey::update(JobId::new(job), Round::new(round), ClientId::new(client));
        let b = MetaKey::update(JobId::new(job2), Round::new(round2), ClientId::new(client2));
        if (job, round, client) != (job2, round2, client2) {
            prop_assert_ne!(a.object_key(), b.object_key());
        } else {
            prop_assert_eq!(a.object_key(), b.object_key());
        }
    }
}
