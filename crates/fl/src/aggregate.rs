//! Server-side aggregation (FedAvg).

use serde::{Deserialize, Serialize};

use crate::ids::{JobId, Round};
use crate::update::ModelUpdate;
use crate::weights::WeightVector;

/// The aggregated global model after one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateModel {
    /// Job the aggregate belongs to.
    pub job: JobId,
    /// Round the aggregate concludes.
    pub round: Round,
    /// Aggregated weights.
    pub weights: WeightVector,
    /// Estimated global loss.
    pub loss: f64,
    /// Estimated global accuracy.
    pub accuracy: f64,
    /// Number of updates aggregated.
    pub num_clients: u32,
}

/// Sample-weighted FedAvg over a round's updates.
///
/// Returns `None` for an empty round.
///
/// # Panics
///
/// Panics if updates disagree on weight dimensionality.
pub fn fedavg(job: JobId, round: Round, updates: &[ModelUpdate]) -> Option<AggregateModel> {
    let first = updates.first()?;
    let total_samples: f64 = updates.iter().map(|u| u.metrics.num_samples as f64).sum();
    let mut weights = WeightVector::zeros(first.weights.dim());
    let mut loss = 0.0;
    let mut accuracy = 0.0;
    for u in updates {
        let w = if total_samples > 0.0 {
            u.metrics.num_samples as f64 / total_samples
        } else {
            1.0 / updates.len() as f64
        };
        weights.axpy(w, &u.weights);
        loss += w * u.metrics.local_loss;
        accuracy += w * u.metrics.local_accuracy;
    }
    Some(AggregateModel {
        job,
        round,
        weights,
        loss,
        accuracy,
        num_clients: updates.len() as u32,
    })
}

/// Unweighted mean aggregate, used as the robust-aggregation baseline in
/// filtering workloads.
pub fn mean_aggregate(job: JobId, round: Round, updates: &[ModelUpdate]) -> Option<AggregateModel> {
    let first = updates.first()?;
    let mut weights = WeightVector::zeros(first.weights.dim());
    for u in updates {
        weights.axpy(1.0 / updates.len() as f64, &u.weights);
    }
    let loss = updates.iter().map(|u| u.metrics.local_loss).sum::<f64>() / updates.len() as f64;
    let accuracy = updates
        .iter()
        .map(|u| u.metrics.local_accuracy)
        .sum::<f64>()
        / updates.len() as f64;
    Some(AggregateModel {
        job,
        round,
        weights,
        loss,
        accuracy,
        num_clients: updates.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::update::UpdateMetrics;

    fn update(client: u32, samples: u32, w: Vec<f32>, loss: f64) -> ModelUpdate {
        ModelUpdate {
            job: JobId::new(0),
            client: ClientId::new(client),
            round: Round::new(0),
            weights: WeightVector::from_vec(w),
            metrics: UpdateMetrics {
                local_loss: loss,
                local_accuracy: 1.0 - loss / 4.0,
                train_time_s: 10.0,
                upload_time_s: 1.0,
                num_samples: samples,
                staleness: 0,
            },
            ground_truth_malicious: false,
        }
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let updates = vec![
            update(0, 300, vec![1.0, 0.0], 1.0),
            update(1, 100, vec![0.0, 1.0], 2.0),
        ];
        let agg = fedavg(JobId::new(0), Round::new(0), &updates).expect("non-empty");
        assert!((agg.weights.as_slice()[0] - 0.75).abs() < 1e-6);
        assert!((agg.weights.as_slice()[1] - 0.25).abs() < 1e-6);
        assert!((agg.loss - 1.25).abs() < 1e-9);
        assert_eq!(agg.num_clients, 2);
    }

    #[test]
    fn mean_aggregate_is_unweighted() {
        let updates = vec![
            update(0, 300, vec![1.0, 0.0], 1.0),
            update(1, 100, vec![0.0, 1.0], 2.0),
        ];
        let agg = mean_aggregate(JobId::new(0), Round::new(0), &updates).expect("non-empty");
        assert!((agg.weights.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((agg.loss - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_round_returns_none() {
        assert!(fedavg(JobId::new(0), Round::new(0), &[]).is_none());
        assert!(mean_aggregate(JobId::new(0), Round::new(0), &[]).is_none());
    }
}
