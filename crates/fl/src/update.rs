//! Client model updates — the dominant FL metadata type.
//!
//! Every selected client produces one [`ModelUpdate`] per round: the weight
//! delta plus the training-outcome metrics that non-training workloads
//! consume (loss, accuracy, timing, sample counts).

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, JobId, Round};
use crate::weights::WeightVector;

/// Training-outcome metrics attached to an update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateMetrics {
    /// Loss on the client's local data after training.
    pub local_loss: f64,
    /// Accuracy on the client's local validation split.
    pub local_accuracy: f64,
    /// Wall-clock seconds the client spent training.
    pub train_time_s: f64,
    /// Wall-clock seconds the client spent uploading.
    pub upload_time_s: f64,
    /// Number of local training samples.
    pub num_samples: u32,
    /// Rounds of staleness (0 for synchronous FL).
    pub staleness: u32,
}

/// One client's model update for one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Job that produced the update.
    pub job: JobId,
    /// Client that trained it.
    pub client: ClientId,
    /// Round it belongs to.
    pub round: Round,
    /// Reduced-fidelity weight vector (see `weights` module docs).
    pub weights: WeightVector,
    /// Training-outcome metrics.
    pub metrics: UpdateMetrics,
    /// Ground truth for evaluation only: whether the producing client is
    /// malicious. Workloads must not read this; tests score detectors
    /// against it.
    pub ground_truth_malicious: bool,
}

impl ModelUpdate {
    /// Utility score used by Oort-style schedulers: statistical utility
    /// (loss × sqrt(samples)) divided by system latency.
    pub fn oort_utility(&self) -> f64 {
        let stat = self.metrics.local_loss * (self.metrics.num_samples as f64).sqrt();
        let sys = (self.metrics.train_time_s + self.metrics.upload_time_s).max(1e-3);
        stat / sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(loss: f64, samples: u32, time: f64) -> ModelUpdate {
        ModelUpdate {
            job: JobId::new(0),
            client: ClientId::new(1),
            round: Round::new(2),
            weights: WeightVector::zeros(4),
            metrics: UpdateMetrics {
                local_loss: loss,
                local_accuracy: 0.8,
                train_time_s: time,
                upload_time_s: 1.0,
                num_samples: samples,
                staleness: 0,
            },
            ground_truth_malicious: false,
        }
    }

    #[test]
    fn oort_utility_prefers_lossy_fast_clients() {
        let informative = update(2.0, 400, 10.0);
        let converged = update(0.1, 400, 10.0);
        let slow = update(2.0, 400, 100.0);
        assert!(informative.oort_utility() > converged.oort_utility());
        assert!(informative.oort_utility() > slow.oort_utility());
    }

    #[test]
    fn utility_guards_against_zero_time() {
        let u = update(1.0, 100, 0.0);
        assert!(u.oort_utility().is_finite());
    }
}
