//! Reduced-fidelity model weights.
//!
//! Non-training workloads operate on client model updates: they compute
//! norms, cosine similarities, cluster assignments, and influence scores
//! over weight vectors. The *algorithms* need real vectors with realistic
//! statistical structure; the *latency/cost models* need the true serialized
//! model size. [`WeightVector`] carries a small dense vector (default 256
//! dimensions) for the former while storage accounting uses the
//! architecture's logical size (see `flstore-fl::metadata`).

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use flstore_sim::rng::DetRng;

/// Default reduced dimensionality.
pub const DEFAULT_DIM: usize = 256;

/// A dense weight vector.
///
/// # Examples
///
/// ```
/// use flstore_fl::weights::WeightVector;
///
/// let a = WeightVector::from_vec(vec![1.0, 0.0]);
/// let b = WeightVector::from_vec(vec![0.0, 1.0]);
/// assert!(a.cosine_similarity(&b).abs() < 1e-6);
/// assert!((a.l2_norm() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightVector {
    values: Vec<f32>,
}

impl WeightVector {
    /// Wraps an existing vector.
    pub fn from_vec(values: Vec<f32>) -> Self {
        WeightVector { values }
    }

    /// An all-zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        WeightVector {
            values: vec![0.0; dim],
        }
    }

    /// A random unit-scale Gaussian vector.
    pub fn gaussian(rng: &mut DetRng, dim: usize, std_dev: f64) -> Self {
        WeightVector {
            values: (0..dim).map(|_| rng.normal(0.0, std_dev) as f32).collect(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// True if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw components.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f64 {
        self.values
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn dot(&self, other: &WeightVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in dot product");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum()
    }

    /// Cosine similarity in `[-1, 1]`; zero if either vector is zero.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn cosine_similarity(&self, other: &WeightVector) -> f64 {
        let denom = self.l2_norm() * other.l2_norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Euclidean distance.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn l2_distance(&self, other: &WeightVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in distance");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| {
                let d = (*a as f64) - (*b as f64);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &WeightVector) -> WeightVector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in add");
        WeightVector {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sub(&self, other: &WeightVector) -> WeightVector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in sub");
        WeightVector {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// `self * factor`.
    pub fn scale(&self, factor: f64) -> WeightVector {
        WeightVector {
            values: self
                .values
                .iter()
                .map(|v| (*v as f64 * factor) as f32)
                .collect(),
        }
    }

    /// Adds `other * factor` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, factor: f64, other: &WeightVector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in axpy");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += (*b as f64 * factor) as f32;
        }
    }

    /// Unweighted mean of several vectors.
    ///
    /// Returns `None` when `vectors` is empty.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch among inputs.
    pub fn mean(vectors: &[&WeightVector]) -> Option<WeightVector> {
        let first = vectors.first()?;
        let mut acc = WeightVector::zeros(first.dim());
        for v in vectors {
            acc.axpy(1.0, v);
        }
        Some(acc.scale(1.0 / vectors.len() as f64))
    }

    /// Serializes to little-endian f32 bytes (the reduced physical payload
    /// stored in blobs).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.values.len() * 4);
        for v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.freeze()
    }

    /// Deserializes from little-endian f32 bytes.
    ///
    /// Returns `None` if the byte length is not a multiple of 4.
    pub fn from_bytes(bytes: &[u8]) -> Option<WeightVector> {
        if !bytes.len().is_multiple_of(4) {
            return None;
        }
        let values = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Some(WeightVector { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_distances() {
        let a = WeightVector::from_vec(vec![3.0, 4.0]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-9);
        let b = WeightVector::from_vec(vec![0.0, 0.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-9);
        assert_eq!(a.cosine_similarity(&b), 0.0);
    }

    #[test]
    fn cosine_of_self_is_one() {
        let mut rng = DetRng::new(5);
        let v = WeightVector::gaussian(&mut rng, 64, 1.0);
        assert!((v.cosine_similarity(&v) - 1.0).abs() < 1e-9);
        assert!((v.cosine_similarity(&v.scale(-2.0)) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_identities() {
        let mut rng = DetRng::new(6);
        let a = WeightVector::gaussian(&mut rng, 32, 1.0);
        let b = WeightVector::gaussian(&mut rng, 32, 1.0);
        let sum = a.add(&b);
        let back = sum.sub(&b);
        assert!(back.l2_distance(&a) < 1e-4);
        let mut axpy = a.clone();
        axpy.axpy(1.0, &b);
        assert!(axpy.l2_distance(&sum) < 1e-6);
    }

    #[test]
    fn mean_of_identical_is_identity() {
        let v = WeightVector::from_vec(vec![1.0, 2.0, 3.0]);
        let m = WeightVector::mean(&[&v, &v, &v]).expect("non-empty");
        assert!(m.l2_distance(&v) < 1e-6);
        assert!(WeightVector::mean(&[]).is_none());
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = DetRng::new(7);
        let v = WeightVector::gaussian(&mut rng, DEFAULT_DIM, 2.0);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), DEFAULT_DIM * 4);
        let back = WeightVector::from_bytes(&bytes).expect("aligned");
        assert_eq!(back, v);
        assert!(WeightVector::from_bytes(&bytes[..5]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dot_panics() {
        let a = WeightVector::zeros(2);
        let b = WeightVector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = DetRng::new(8);
        let v = WeightVector::gaussian(&mut rng, 4096, 1.0);
        let mean: f64 = v.as_slice().iter().map(|x| *x as f64).sum::<f64>() / 4096.0;
        assert!(mean.abs() < 0.1);
        // Norm of a standard Gaussian vector concentrates around sqrt(dim).
        assert!((v.l2_norm() - 64.0).abs() < 5.0);
    }
}
