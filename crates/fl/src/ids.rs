//! Identifier newtypes for jobs, clients, and rounds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one FL job (training session).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId(u32);

impl JobId {
    /// Creates a job id.
    pub const fn new(id: u32) -> Self {
        JobId(id)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Identifier of one client device.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id.
    pub const fn new(id: u32) -> Self {
        ClientId(id)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// A training round number (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Round(u32);

impl Round {
    /// The first round.
    pub const ZERO: Round = Round(0);

    /// Creates a round number.
    pub const fn new(r: u32) -> Self {
        Round(r)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The following round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The preceding round, if any.
    pub const fn prev(self) -> Option<Round> {
        if self.0 == 0 {
            None
        } else {
            Some(Round(self.0 - 1))
        }
    }

    /// Rounds `self..self+n`.
    pub fn window(self, n: u32) -> impl Iterator<Item = Round> {
        (self.0..self.0.saturating_add(n)).map(Round)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_navigation() {
        let r = Round::new(5);
        assert_eq!(r.next(), Round::new(6));
        assert_eq!(r.prev(), Some(Round::new(4)));
        assert_eq!(Round::ZERO.prev(), None);
        let w: Vec<u32> = Round::new(3).window(3).map(Round::as_u32).collect();
        assert_eq!(w, vec![3, 4, 5]);
    }

    #[test]
    fn displays() {
        assert_eq!(JobId::new(1).to_string(), "job-1");
        assert_eq!(ClientId::new(2).to_string(), "client-2");
        assert_eq!(Round::new(3).to_string(), "round-3");
    }
}
