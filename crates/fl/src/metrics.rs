//! Round-level operational metadata (the P4 data class).
//!
//! Scheduling, payout monitoring, and hyperparameter-tracking workloads
//! consume *pool-wide* per-round operational records rather than model
//! weights: who was available, how fast their devices are, what they have
//! been paid. One [`RoundMetrics`] record per round captures that state.

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, Round};

/// Per-client operational state within one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRoundInfo {
    /// Which client.
    pub client: ClientId,
    /// Whether the device was reachable this round.
    pub available: bool,
    /// Whether it was selected to train.
    pub participated: bool,
    /// Whether it completed the round (false = dropout).
    pub completed: bool,
    /// Device compute speed (relative units).
    pub compute_speed: f64,
    /// Device uplink in Mbit/s.
    pub uplink_mbps: f64,
    /// Historical completion reliability in `[0, 1]`.
    pub reliability: f64,
    /// Cumulative incentive payout balance in arbitrary credit units.
    pub payout_balance: f64,
    /// Rounds participated in so far.
    pub participation_count: u32,
    /// Most recent reported local loss (NaN-free; starts at the global
    /// initial loss).
    pub last_loss: f64,
}

/// Pool-wide operational record for one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// The round described.
    pub round: Round,
    /// Estimated global loss after aggregation.
    pub global_loss: f64,
    /// Estimated global accuracy after aggregation.
    pub global_accuracy: f64,
    /// Seconds the training portion of the round took (slowest completing
    /// participant: local training + upload).
    pub training_round_secs: f64,
    /// One entry per client in the pool.
    pub clients: Vec<ClientRoundInfo>,
}

impl RoundMetrics {
    /// Info for one client, if present.
    pub fn client(&self, id: ClientId) -> Option<&ClientRoundInfo> {
        self.clients.iter().find(|c| c.client == id)
    }

    /// Clients that completed training this round.
    pub fn completed_clients(&self) -> impl Iterator<Item = &ClientRoundInfo> {
        self.clients.iter().filter(|c| c.completed)
    }

    /// Fraction of selected clients that dropped out.
    pub fn dropout_rate(&self) -> f64 {
        let selected = self.clients.iter().filter(|c| c.participated).count();
        if selected == 0 {
            return 0.0;
        }
        let dropped = self
            .clients
            .iter()
            .filter(|c| c.participated && !c.completed)
            .count();
        dropped as f64 / selected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u32, participated: bool, completed: bool) -> ClientRoundInfo {
        ClientRoundInfo {
            client: ClientId::new(id),
            available: true,
            participated,
            completed,
            compute_speed: 1.0,
            uplink_mbps: 20.0,
            reliability: 0.9,
            payout_balance: 0.0,
            participation_count: 0,
            last_loss: 2.3,
        }
    }

    #[test]
    fn dropout_rate_counts_started_only() {
        let m = RoundMetrics {
            round: Round::new(1),
            global_loss: 1.0,
            global_accuracy: 0.6,
            training_round_secs: 120.0,
            clients: vec![
                info(0, true, true),
                info(1, true, false),
                info(2, false, false),
            ],
        };
        assert!((m.dropout_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.completed_clients().count(), 1);
        assert!(m.client(ClientId::new(2)).is_some());
        assert!(m.client(ClientId::new(9)).is_none());
    }

    #[test]
    fn empty_round_has_zero_dropout() {
        let m = RoundMetrics {
            round: Round::ZERO,
            global_loss: 2.3,
            global_accuracy: 0.1,
            training_round_secs: 0.0,
            clients: vec![],
        };
        assert_eq!(m.dropout_rate(), 0.0);
    }
}
