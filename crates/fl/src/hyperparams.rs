//! Hyperparameter records (P4 metadata).
//!
//! Hyperparameter tuning and tracking workloads (paper Table 1, P4) consume
//! per-round configuration records: learning-rate schedules, batch sizes,
//! aggregation settings. These are small (kilobytes) but accessed
//! repeatedly, which is why P4 caches the most recent `R` rounds of them.

use serde::{Deserialize, Serialize};

use crate::ids::Round;

/// Per-round training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Round these parameters applied to.
    pub round: Round,
    /// Client learning rate.
    pub learning_rate: f64,
    /// Local batch size.
    pub batch_size: u32,
    /// Local epochs per round.
    pub local_epochs: u32,
    /// SGD momentum.
    pub momentum: f64,
    /// Weight decay.
    pub weight_decay: f64,
    /// Server learning rate (for FedOpt-style servers).
    pub server_lr: f64,
    /// Fraction of clients sampled this round.
    pub sample_fraction: f64,
}

impl HyperParams {
    /// A standard cross-device schedule: cosine-decayed client LR starting
    /// at 0.1, batch 32, one local epoch.
    pub fn schedule(round: Round, total_rounds: u32, sample_fraction: f64) -> HyperParams {
        let total = total_rounds.max(1) as f64;
        let progress = (round.as_u32() as f64 / total).min(1.0);
        let lr = 0.001 + 0.099 * 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
        HyperParams {
            round,
            learning_rate: lr,
            batch_size: 32,
            local_epochs: 1,
            momentum: 0.9,
            weight_decay: 5e-4,
            server_lr: 1.0,
            sample_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_decays_over_training() {
        let early = HyperParams::schedule(Round::new(0), 1000, 0.04);
        let late = HyperParams::schedule(Round::new(999), 1000, 0.04);
        assert!(early.learning_rate > late.learning_rate);
        assert!((early.learning_rate - 0.1).abs() < 1e-6);
        assert!(late.learning_rate >= 0.001);
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = HyperParams::schedule(Round::new(500), 1000, 0.04);
        let b = HyperParams::schedule(Round::new(500), 1000, 0.04);
        assert_eq!(a, b);
    }
}
