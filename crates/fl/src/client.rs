//! Client device population.
//!
//! Cross-device FL draws participants from a heterogeneous pool: devices
//! differ in compute speed, network bandwidth, availability, reliability,
//! and data distribution. Scheduling, clustering, and incentive workloads
//! consume exactly this heterogeneity, so the population model generates it
//! deterministically from the job seed.

use serde::{Deserialize, Serialize};

use flstore_sim::rng::DetRng;

use crate::ids::ClientId;

/// Static profile of one client device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// The client's identifier.
    pub id: ClientId,
    /// Local compute speed relative to the median device (log-normal).
    pub compute_speed: f64,
    /// Uplink bandwidth in Mbit/s.
    pub uplink_mbps: f64,
    /// Long-run probability the device is available when selected.
    pub availability: f64,
    /// Probability the device completes a round it started (no dropout).
    pub reliability: f64,
    /// Number of local training samples.
    pub num_samples: u32,
    /// Label distribution over the dataset's classes (Dirichlet non-IID).
    pub label_dist: Vec<f64>,
    /// Ground truth: whether this client submits poisoned updates.
    /// Workloads must *infer* maliciousness; tests compare against this.
    pub is_malicious: bool,
}

impl ClientProfile {
    /// Expected seconds to locally train one round of a workload whose
    /// reference device takes `ref_secs`.
    pub fn local_train_secs(&self, ref_secs: f64) -> f64 {
        ref_secs / self.compute_speed
    }

    /// Seconds to upload `bytes` over the client's uplink.
    pub fn upload_secs(&self, bytes: u64) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.uplink_mbps * 1e6)
    }
}

/// Generates a deterministic population of `n` clients.
///
/// * compute speed: log-normal around 1.0 (σ = 0.4);
/// * uplink: log-normal around 20 Mbit/s;
/// * availability: Beta-like in `[0.5, 1.0)`;
/// * reliability: in `[0.7, 1.0)`;
/// * samples: 200–2000, skewed low (most devices hold little data);
/// * label distribution: symmetric Dirichlet with concentration `alpha`
///   over `classes` labels (`alpha` = 0.5 reproduces common non-IID
///   CIFAR-10 splits);
/// * the first `⌈malicious_fraction * n⌉` client *indices drawn at random*
///   are flagged malicious.
pub fn generate_population(
    seed: u64,
    n: u32,
    classes: usize,
    alpha: f64,
    malicious_fraction: f64,
) -> Vec<ClientProfile> {
    assert!(
        (0.0..=1.0).contains(&malicious_fraction),
        "malicious fraction must be in [0,1], got {malicious_fraction}"
    );
    let mut rng = DetRng::stream(seed, "client-population");
    let n_mal = (malicious_fraction * n as f64).ceil() as usize;
    let mal_set: std::collections::HashSet<usize> = rng
        .choose_k(n as usize, n_mal.min(n as usize))
        .into_iter()
        .collect();
    (0..n)
        .map(|i| {
            let compute_speed = rng.log_normal(0.0, 0.4);
            let uplink_mbps = rng.log_normal(3.0, 0.5); // median ≈ 20 Mbit/s
            let availability = 0.5 + 0.5 * rng.u01();
            let reliability = 0.7 + 0.3 * rng.u01();
            let num_samples = 200 + (1800.0 * rng.u01().powf(2.0)) as u32;
            let label_dist = rng.dirichlet(classes, alpha);
            ClientProfile {
                id: ClientId::new(i),
                compute_speed,
                uplink_mbps,
                availability,
                reliability,
                num_samples,
                label_dist,
                is_malicious: mal_set.contains(&(i as usize)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = generate_population(42, 50, 10, 0.5, 0.1);
        let b = generate_population(42, 50, 10, 0.5, 0.1);
        assert_eq!(a, b);
        let c = generate_population(43, 50, 10, 0.5, 0.1);
        assert_ne!(a, c);
    }

    #[test]
    fn malicious_count_matches_fraction() {
        let pop = generate_population(1, 250, 10, 0.5, 0.1);
        let mal = pop.iter().filter(|c| c.is_malicious).count();
        assert_eq!(mal, 25);
    }

    #[test]
    fn profiles_are_plausible() {
        let pop = generate_population(2, 200, 10, 0.5, 0.0);
        for c in &pop {
            assert!(c.compute_speed > 0.05 && c.compute_speed < 20.0);
            assert!(c.uplink_mbps > 0.5);
            assert!((0.5..=1.0).contains(&c.availability));
            assert!((0.7..=1.0).contains(&c.reliability));
            assert!((200..=2000).contains(&c.num_samples));
            assert_eq!(c.label_dist.len(), 10);
            let sum: f64 = c.label_dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(!c.is_malicious);
        }
    }

    #[test]
    fn upload_time_scales_with_bytes() {
        let pop = generate_population(3, 1, 10, 0.5, 0.0);
        let c = &pop[0];
        let t1 = c.upload_secs(10_000_000);
        let t2 = c.upload_secs(20_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slow_clients_train_longer() {
        let mut fast = generate_population(4, 1, 10, 0.5, 0.0)[0].clone();
        fast.compute_speed = 2.0;
        let mut slow = fast.clone();
        slow.compute_speed = 0.5;
        assert!(slow.local_train_secs(100.0) > fast.local_train_secs(100.0));
    }
}
