//! The model zoo: the 23 architectures of the paper's Figure 19 plus the
//! four evaluation models.
//!
//! Parameter counts and fp32 serialized sizes follow the standard
//! torchvision releases. The paper quotes an average footprint of
//! ~161 MB across its 23 models; this zoo averages ~149 MB (the paper's
//! checkpoints carry some extra state), which preserves the conclusion that
//! cross-device FL models fit comfortably in 2–10 GB function memories.

use serde::Serialize;

use flstore_sim::bytes::ByteSize;

/// A model architecture used in cross-device FL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelArch {
    /// Canonical name.
    pub name: &'static str,
    /// Trainable parameters, in millions.
    pub params_m: f64,
    /// Serialized fp32 checkpoint size, in MB.
    pub size_mb: f64,
}

impl ModelArch {
    /// Serialized size as a byte quantity.
    pub fn size(&self) -> ByteSize {
        ByteSize::from_mb_f64(self.size_mb)
    }

    /// Relative compute scale of workloads touching this model, normalized
    /// to EfficientNetV2-S (the paper's reference model). Non-training
    /// kernels scale roughly with parameter count.
    pub fn compute_scale(&self) -> f64 {
        self.params_m / ModelArch::EFFICIENTNET_V2_S.params_m
    }

    /// ResNet-18 — evaluation model (paper Figs. 7–8).
    pub const RESNET18: ModelArch = ModelArch {
        name: "ResNet18",
        params_m: 11.69,
        size_mb: 44.7,
    };

    /// MobileNetV3-Small — evaluation model (figures label the series
    /// "MobileNetV2"; the text uses MobileNet V3 Small).
    pub const MOBILENET_V3_SMALL: ModelArch = ModelArch {
        name: "MobileNetV3Small",
        params_m: 2.54,
        size_mb: 9.8,
    };

    /// EfficientNetV2-S — evaluation + motivation model.
    pub const EFFICIENTNET_V2_S: ModelArch = ModelArch {
        name: "EfficientNetV2S",
        params_m: 21.46,
        size_mb: 82.7,
    };

    /// SwinTransformerV2-Tiny — evaluation model.
    pub const SWIN_V2_TINY: ModelArch = ModelArch {
        name: "SwinTransformerV2Tiny",
        params_m: 28.35,
        size_mb: 108.6,
    };

    /// The four models the paper's main evaluation sweeps (Figs. 7, 8, 15, 16).
    pub const EVALUATION: [ModelArch; 4] = [
        ModelArch::RESNET18,
        ModelArch::MOBILENET_V3_SMALL,
        ModelArch::EFFICIENTNET_V2_S,
        ModelArch::SWIN_V2_TINY,
    ];

    /// Looks an architecture up by its canonical name, across the
    /// evaluation set and the Figure-19 zoo. Names are the durable
    /// identity of a model on disk (ledger manifests record them), so
    /// this is the inverse of `self.name`.
    pub fn by_name(name: &str) -> Option<ModelArch> {
        ModelArch::EVALUATION
            .iter()
            .chain(ZOO.iter())
            .find(|m| m.name == name)
            .copied()
    }
}

/// The 23-model zoo of the paper's Figure 19.
pub const ZOO: [ModelArch; 23] = [
    ModelArch {
        name: "ResNet50",
        params_m: 25.56,
        size_mb: 97.8,
    },
    ModelArch {
        name: "EfficientNetB0",
        params_m: 5.29,
        size_mb: 20.5,
    },
    ModelArch {
        name: "MobileNetV2",
        params_m: 3.50,
        size_mb: 13.6,
    },
    ModelArch::EFFICIENTNET_V2_S,
    ModelArch::SWIN_V2_TINY,
    ModelArch::RESNET18,
    ModelArch::MOBILENET_V3_SMALL,
    ModelArch {
        name: "ShuffleNetV2",
        params_m: 2.28,
        size_mb: 8.8,
    },
    ModelArch {
        name: "ResNet34",
        params_m: 21.80,
        size_mb: 83.3,
    },
    ModelArch {
        name: "DenseNet121",
        params_m: 7.98,
        size_mb: 30.8,
    },
    ModelArch {
        name: "AlexNet",
        params_m: 61.10,
        size_mb: 233.1,
    },
    ModelArch {
        name: "VGG13",
        params_m: 133.05,
        size_mb: 507.5,
    },
    ModelArch {
        name: "VGG16",
        params_m: 138.36,
        size_mb: 527.8,
    },
    ModelArch {
        name: "ResNet101",
        params_m: 44.55,
        size_mb: 170.5,
    },
    ModelArch {
        name: "ResNet152",
        params_m: 60.19,
        size_mb: 230.4,
    },
    ModelArch {
        name: "ResNeXt50_32x4d",
        params_m: 25.03,
        size_mb: 95.8,
    },
    ModelArch {
        name: "ResNeXt101_32x8d",
        params_m: 88.79,
        size_mb: 339.6,
    },
    ModelArch {
        name: "WideResNet50_2",
        params_m: 68.88,
        size_mb: 263.1,
    },
    ModelArch {
        name: "WideResNet101_2",
        params_m: 126.89,
        size_mb: 484.7,
    },
    ModelArch {
        name: "DenseNet161",
        params_m: 28.68,
        size_mb: 110.4,
    },
    ModelArch {
        name: "DenseNet169",
        params_m: 14.15,
        size_mb: 54.7,
    },
    ModelArch {
        name: "DenseNet201",
        params_m: 20.01,
        size_mb: 77.4,
    },
    ModelArch {
        name: "InceptionV3",
        params_m: 27.16,
        size_mb: 103.9,
    },
];

/// Looks up a zoo model by name.
pub fn by_name(name: &str) -> Option<ModelArch> {
    ZOO.iter().copied().find(|m| m.name == name)
}

/// Average serialized size across the zoo (paper: ~161 MB).
pub fn average_size() -> ByteSize {
    let total_mb: f64 = ZOO.iter().map(|m| m.size_mb).sum();
    ByteSize::from_mb_f64(total_mb / ZOO.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_23_models() {
        assert_eq!(ZOO.len(), 23);
        let mut names: Vec<&str> = ZOO.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23, "model names must be unique");
    }

    #[test]
    fn average_size_near_paper() {
        let avg = average_size().as_mb_f64();
        // Paper: 160.88 MB; torchvision fp32 checkpoints: ~149 MB.
        assert!((130.0..180.0).contains(&avg), "average was {avg} MB");
    }

    #[test]
    fn all_models_fit_in_max_function_memory() {
        for m in ZOO {
            assert!(
                m.size() < ByteSize::from_gb(10),
                "{} does not fit in a 10 GB function",
                m.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("ResNet18"), Some(ModelArch::RESNET18));
        assert!(by_name("GPT-5").is_none());
    }

    #[test]
    fn compute_scale_reference_is_one() {
        assert!((ModelArch::EFFICIENTNET_V2_S.compute_scale() - 1.0).abs() < 1e-12);
        assert!(ModelArch::MOBILENET_V3_SMALL.compute_scale() < 0.5);
        assert!(ModelArch::SWIN_V2_TINY.compute_scale() > 1.0);
    }

    #[test]
    fn evaluation_models_are_in_zoo() {
        for m in ModelArch::EVALUATION {
            assert!(by_name(m.name).is_some(), "{} missing from zoo", m.name);
        }
    }
}
