//! Metadata keys and values: the unit of storage.
//!
//! Everything an FL job emits is addressed by a [`MetaKey`]
//! `(job, round, client?, kind)` and stored as a [`MetaValue`]. Values
//! serialize into [`Blob`]s whose *payload* is the reduced-fidelity record
//! (JSON) and whose *logical size* is what the real artifact would occupy
//! (the full serialized model for updates/aggregates) — the quantity all
//! latency/cost models account.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use flstore_cloud::blob::{Blob, ObjectKey};
use flstore_sim::bytes::ByteSize;

use crate::aggregate::AggregateModel;
use crate::hyperparams::HyperParams;
use crate::ids::{ClientId, JobId, Round};
use crate::job::RoundRecord;
use crate::metrics::RoundMetrics;
use crate::update::ModelUpdate;
use crate::zoo::ModelArch;

/// The four metadata classes FL jobs emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetaKind {
    /// One client's model update for one round.
    ClientUpdate,
    /// The aggregated global model for one round.
    Aggregate,
    /// Hyperparameters used in one round.
    HyperParams,
    /// Pool-wide operational metrics for one round.
    RoundMetrics,
}

impl MetaKind {
    fn tag(self) -> &'static str {
        match self {
            MetaKind::ClientUpdate => "update",
            MetaKind::Aggregate => "aggregate",
            MetaKind::HyperParams => "hyper",
            MetaKind::RoundMetrics => "metrics",
        }
    }
}

/// Structured address of one metadata object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetaKey {
    /// Producing job.
    pub job: JobId,
    /// Round the object belongs to.
    pub round: Round,
    /// Producing client (updates only).
    pub client: Option<ClientId>,
    /// Metadata class.
    pub kind: MetaKind,
}

impl MetaKey {
    /// Key of a client update.
    pub fn update(job: JobId, round: Round, client: ClientId) -> MetaKey {
        MetaKey {
            job,
            round,
            client: Some(client),
            kind: MetaKind::ClientUpdate,
        }
    }

    /// Key of a round aggregate.
    pub fn aggregate(job: JobId, round: Round) -> MetaKey {
        MetaKey {
            job,
            round,
            client: None,
            kind: MetaKind::Aggregate,
        }
    }

    /// Key of a round's hyperparameters.
    pub fn hyperparams(job: JobId, round: Round) -> MetaKey {
        MetaKey {
            job,
            round,
            client: None,
            kind: MetaKind::HyperParams,
        }
    }

    /// Key of a round's operational metrics.
    pub fn metrics(job: JobId, round: Round) -> MetaKey {
        MetaKey {
            job,
            round,
            client: None,
            kind: MetaKind::RoundMetrics,
        }
    }

    /// Flattens into the opaque key used by stores and caches.
    pub fn object_key(&self) -> ObjectKey {
        match self.client {
            Some(c) => ObjectKey::new(format!(
                "{}/{}/{}/{}",
                self.job,
                self.round,
                c,
                self.kind.tag()
            )),
            None => ObjectKey::new(format!("{}/{}/{}", self.job, self.round, self.kind.tag())),
        }
    }
}

impl std::fmt::Display for MetaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.object_key())
    }
}

/// A shared handle to a decoded [`MetaValue`].
///
/// Cloning is a refcount bump — serving systems hand these out per request
/// so a cached object is parsed from its [`Blob`] at most once per
/// lifetime, instead of re-running `Blob → JSON → MetaValue` on every
/// access. `Arc<MetaValue>: Borrow<MetaValue>`, so a `&[SharedValue]`
/// slice feeds any consumer generic over `Borrow<MetaValue>` (see
/// `flstore_workloads::run::execute`).
pub type SharedValue = Arc<MetaValue>;

/// A typed metadata record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetaValue {
    /// A client model update.
    Update(ModelUpdate),
    /// A round aggregate.
    Aggregate(AggregateModel),
    /// Round hyperparameters.
    Hyper(HyperParams),
    /// Round operational metrics.
    Metrics(RoundMetrics),
}

impl MetaValue {
    /// The key addressing this value.
    pub fn key(&self) -> MetaKey {
        match self {
            MetaValue::Update(u) => MetaKey::update(u.job, u.round, u.client),
            MetaValue::Aggregate(a) => MetaKey::aggregate(a.job, a.round),
            // Hyper/metrics records do not embed the job id; the producing
            // job attaches it via `keyed_for`.
            MetaValue::Hyper(h) => MetaKey::hyperparams(JobId::new(0), h.round),
            MetaValue::Metrics(m) => MetaKey::metrics(JobId::new(0), m.round),
        }
    }

    /// The key addressing this value within `job` (needed for hyper/metrics
    /// records, which do not embed the job id).
    pub fn keyed_for(&self, job: JobId) -> MetaKey {
        let mut key = self.key();
        key.job = job;
        key
    }

    /// Logical byte volume of the real artifact.
    ///
    /// Updates and aggregates occupy a full serialized model; the small
    /// records are kilobytes.
    pub fn logical_size(&self, model: &ModelArch) -> ByteSize {
        match self {
            MetaValue::Update(_) | MetaValue::Aggregate(_) => model.size(),
            MetaValue::Hyper(_) => ByteSize::from_kb(2),
            MetaValue::Metrics(m) => ByteSize::from_bytes(1024 + 96 * m.clients.len() as u64),
        }
    }

    /// Estimated in-memory footprint of the *decoded* value (the
    /// `Arc<MetaValue>` a decoded-value cache holds resident), independent
    /// of the logical artifact size. Weights dominate (4 B/f32 element);
    /// the small records are a constant plus per-client rows.
    pub fn resident_estimate(&self) -> ByteSize {
        let body = match self {
            MetaValue::Update(u) => 96 + 4 * u.weights.dim() as u64,
            MetaValue::Aggregate(a) => 64 + 4 * a.weights.dim() as u64,
            MetaValue::Hyper(_) => 64,
            MetaValue::Metrics(m) => 64 + 96 * m.clients.len() as u64,
        };
        ByteSize::from_bytes(body)
    }

    /// Serializes into a storable blob (JSON payload + logical size).
    pub fn to_blob(&self, model: &ModelArch) -> Blob {
        let payload = serde_json::to_vec(self).expect("metadata serializes");
        Blob::with_payload(payload.into(), self.logical_size(model))
    }

    /// Decodes a blob produced by [`MetaValue::to_blob`].
    ///
    /// Returns `None` for blobs without a decodable payload (e.g. purely
    /// synthetic blobs used in capacity tests).
    pub fn from_blob(blob: &Blob) -> Option<MetaValue> {
        serde_json::from_slice(blob.payload()).ok()
    }

    /// One-time parse into a shared handle: the `Blob → JSON → MetaValue`
    /// decode happens here, after which every consumer clones the cheap
    /// [`SharedValue`] instead of re-parsing.
    pub fn decode_shared(blob: &Blob) -> Option<SharedValue> {
        MetaValue::from_blob(blob).map(Arc::new)
    }

    /// Wraps an already-constructed value in a shared handle.
    pub fn into_shared(self) -> SharedValue {
        Arc::new(self)
    }
}

/// One ingestible metadata object: its key, the decoded value handle, and
/// the serialized blob. Producing both sides at ingest time lets serving
/// systems seed their decoded-value caches without ever re-parsing the
/// blob they just wrote.
#[derive(Debug, Clone)]
pub struct RoundEntry {
    /// Storage address.
    pub key: MetaKey,
    /// The decoded value, shareable without re-parsing.
    pub value: SharedValue,
    /// The persisted form (JSON payload + logical size).
    pub blob: Blob,
}

/// Flattens a [`RoundRecord`] into ingestible [`RoundEntry`]s: one per
/// client update, plus the aggregate, hyperparameters, and metrics. Each
/// entry carries both the blob (for the persistence boundary) and the
/// decoded handle (for serving caches).
pub fn round_entries(record: &RoundRecord, job: JobId, model: &ModelArch) -> Vec<RoundEntry> {
    let mut out = Vec::with_capacity(record.updates.len() + 3);
    let mut push = |v: MetaValue| {
        let key = v.keyed_for(job);
        let blob = v.to_blob(model);
        out.push(RoundEntry {
            key,
            value: v.into_shared(),
            blob,
        });
    };
    for u in &record.updates {
        push(MetaValue::Update(u.clone()));
    }
    push(MetaValue::Aggregate(record.aggregate.clone()));
    push(MetaValue::Hyper(record.hyperparams.clone()));
    push(MetaValue::Metrics(record.metrics.clone()));
    out
}

/// Flattens a [`RoundRecord`] into storable `(key, blob)` pairs: one blob
/// per client update, plus the aggregate, hyperparameters, and metrics.
/// Prefer [`round_entries`] when the decoded values are also needed.
pub fn round_blobs(record: &RoundRecord, job: JobId, model: &ModelArch) -> Vec<(MetaKey, Blob)> {
    round_entries(record, job, model)
        .into_iter()
        .map(|e| (e.key, e.blob))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FlJobConfig, FlJobSim};

    #[test]
    fn object_keys_are_unique_and_stable() {
        let job = JobId::new(1);
        let r = Round::new(5);
        let a = MetaKey::update(job, r, ClientId::new(3)).object_key();
        let b = MetaKey::update(job, r, ClientId::new(4)).object_key();
        let c = MetaKey::aggregate(job, r).object_key();
        let d = MetaKey::hyperparams(job, r).object_key();
        let e = MetaKey::metrics(job, r).object_key();
        let keys = [&a, &b, &c, &d, &e];
        for (i, x) in keys.iter().enumerate() {
            for (j, y) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
        assert_eq!(a.as_str(), "job-1/round-5/client-3/update");
    }

    #[test]
    fn blob_round_trip_preserves_value() {
        let mut sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(2)));
        let record = sim.next().expect("has rounds");
        let model = ModelArch::RESNET18;
        for (_, blob) in round_blobs(&record, JobId::new(2), &model) {
            let value = MetaValue::from_blob(&blob).expect("decodable");
            let re = value.to_blob(&model);
            assert_eq!(re.logical_size(), blob.logical_size());
            assert_eq!(MetaValue::from_blob(&re), Some(value));
        }
    }

    #[test]
    fn logical_sizes_follow_kinds() {
        let mut sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(3)));
        let record = sim.next().expect("has rounds");
        let model = ModelArch::EFFICIENTNET_V2_S;
        let update = MetaValue::Update(record.updates[0].clone());
        assert_eq!(update.logical_size(&model), model.size());
        let hyper = MetaValue::Hyper(record.hyperparams.clone());
        assert!(hyper.logical_size(&model) < ByteSize::from_kb(10));
        let metrics = MetaValue::Metrics(record.metrics.clone());
        assert!(metrics.logical_size(&model) > ByteSize::from_kb(1));
        assert!(metrics.logical_size(&model) < ByteSize::from_mb(1));
    }

    #[test]
    fn round_blobs_cover_all_artifacts() {
        let mut sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(4)));
        let record = sim.next().expect("has rounds");
        let blobs = round_blobs(&record, JobId::new(4), &ModelArch::RESNET18);
        assert_eq!(blobs.len(), record.updates.len() + 3);
        let kinds: Vec<MetaKind> = blobs.iter().map(|(k, _)| k.kind).collect();
        assert!(kinds.contains(&MetaKind::Aggregate));
        assert!(kinds.contains(&MetaKind::HyperParams));
        assert!(kinds.contains(&MetaKind::RoundMetrics));
        // Every key carries the right job id.
        assert!(blobs.iter().all(|(k, _)| k.job == JobId::new(4)));
    }

    #[test]
    fn resident_estimates_track_content() {
        let mut sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(5)));
        let record = sim.next().expect("has rounds");
        let update = MetaValue::Update(record.updates[0].clone());
        let hyper = MetaValue::Hyper(record.hyperparams.clone());
        let metrics = MetaValue::Metrics(record.metrics.clone());
        // Weights dominate an update's decoded footprint.
        assert!(update.resident_estimate() > hyper.resident_estimate());
        // Metrics grow with the client pool.
        assert!(
            metrics.resident_estimate()
                > ByteSize::from_bytes(96 * record.metrics.clients.len() as u64)
        );
        // Decoded residency is not the logical artifact size: a decoded
        // update is far smaller than the serialized model it stands for.
        assert!(update.resident_estimate() < update.logical_size(&ModelArch::RESNET18));
    }

    #[test]
    fn synthetic_blob_decodes_to_none() {
        let blob = Blob::synthetic(ByteSize::from_mb(1));
        assert_eq!(MetaValue::from_blob(&blob), None);
    }
}
