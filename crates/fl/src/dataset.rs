//! Dataset descriptors.
//!
//! The paper's experiments train on CIFAR-10. The reproduction never touches
//! pixels — what matters downstream is the number of classes (for non-IID
//! label splits), sample counts, and per-sample byte volumes (for metadata
//! size estimates like the paper's "1500 TB across 100 jobs" claim, §2.2).

use serde::Serialize;

use flstore_sim::bytes::ByteSize;

/// A labeled-image dataset descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of label classes.
    pub classes: usize,
    /// Total training samples.
    pub train_samples: u64,
    /// Bytes per stored sample.
    pub sample_bytes: u64,
}

impl DatasetSpec {
    /// CIFAR-10: 10 classes, 50k train images, 32x32x3 bytes each.
    pub const CIFAR10: DatasetSpec = DatasetSpec {
        name: "CIFAR10",
        classes: 10,
        train_samples: 50_000,
        sample_bytes: 3_072,
    };

    /// FEMNIST-like handwriting dataset (62 classes).
    pub const FEMNIST: DatasetSpec = DatasetSpec {
        name: "FEMNIST",
        classes: 62,
        train_samples: 805_263,
        sample_bytes: 784,
    };

    /// Total raw training-set volume.
    pub fn total_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.train_samples * self.sample_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar10_shape() {
        let d = DatasetSpec::CIFAR10;
        assert_eq!(d.classes, 10);
        assert!((d.total_bytes().as_mb_f64() - 153.6).abs() < 0.1);
    }

    #[test]
    // The operands are consts, but the point is to guard the catalog data.
    #[allow(clippy::assertions_on_constants)]
    fn femnist_has_more_classes() {
        assert!(DatasetSpec::FEMNIST.classes > DatasetSpec::CIFAR10.classes);
    }
}
