//! The FL job simulator: a deterministic generator of rounds.
//!
//! The reproduction does not train neural networks; it generates the
//! *metadata stream* a real FL job emits — per-client weight updates with
//! realistic statistical structure (a shared global signal, latent client
//! clusters, per-client bias, malicious outliers), loss/accuracy
//! trajectories, timing, and pool-wide operational state. Non-training
//! workloads run real algorithms over this stream, and the storage systems
//! move its (logically full-sized) bytes.

use serde::{Deserialize, Serialize};

use flstore_sim::rng::DetRng;

use crate::aggregate::{fedavg, AggregateModel};
use crate::client::{generate_population, ClientProfile};
use crate::dataset::DatasetSpec;
use crate::hyperparams::HyperParams;
use crate::ids::{JobId, Round};
use crate::metrics::{ClientRoundInfo, RoundMetrics};
use crate::update::{ModelUpdate, UpdateMetrics};
use crate::weights::{WeightVector, DEFAULT_DIM};
use crate::zoo::ModelArch;

/// Configuration of one simulated FL job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FlJobConfig {
    /// Job identifier.
    pub job: JobId,
    /// Model architecture being trained.
    pub model: ModelArch,
    /// Dataset descriptor.
    pub dataset: DatasetSpec,
    /// Size of the client pool.
    pub total_clients: u32,
    /// Clients selected per round.
    pub clients_per_round: u32,
    /// Total training rounds.
    pub rounds: u32,
    /// Fraction of the pool that is malicious.
    pub malicious_fraction: f64,
    /// Dirichlet concentration for non-IID label splits.
    pub dirichlet_alpha: f64,
    /// Reduced weight dimensionality.
    pub weight_dim: usize,
    /// Number of latent client clusters (personalization structure).
    pub latent_clusters: usize,
    /// Seed for all randomness in the job.
    pub seed: u64,
}

impl FlJobConfig {
    /// The paper's evaluation setting (§5.1): 10 clients per round from a
    /// pool of 250, 1000 rounds.
    pub fn paper_eval(job: JobId, model: ModelArch) -> Self {
        FlJobConfig {
            job,
            model,
            dataset: DatasetSpec::CIFAR10,
            total_clients: 250,
            clients_per_round: 10,
            rounds: 1000,
            malicious_fraction: 0.1,
            dirichlet_alpha: 0.5,
            weight_dim: DEFAULT_DIM,
            latent_clusters: 5,
            seed: 0xF15_0000 + job.as_u32() as u64,
        }
    }

    /// The motivation setting (Figs. 1–2): 200 clients, EfficientNet.
    pub fn motivation(job: JobId) -> Self {
        FlJobConfig {
            total_clients: 200,
            ..FlJobConfig::paper_eval(job, ModelArch::EFFICIENTNET_V2_S)
        }
    }

    /// A small configuration for fast unit tests.
    pub fn quick_test(job: JobId) -> Self {
        FlJobConfig {
            total_clients: 20,
            clients_per_round: 5,
            rounds: 12,
            weight_dim: 32,
            ..FlJobConfig::paper_eval(job, ModelArch::RESNET18)
        }
    }

    /// Logical bytes of metadata one round produces (updates + aggregate +
    /// hyperparameters + round metrics). Used for capacity analyses (§2.2).
    pub fn round_metadata_bytes(&self) -> flstore_sim::bytes::ByteSize {
        let model = self.model.size();
        // clients_per_round updates + 1 aggregate, plus small records.
        model * (self.clients_per_round as u64 + 1)
            + flstore_sim::bytes::ByteSize::from_kb(2)
            + flstore_sim::bytes::ByteSize::from_bytes(96 * self.total_clients as u64 + 1024)
    }
}

/// Everything one round produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number.
    pub round: Round,
    /// The hyperparameters used.
    pub hyperparams: HyperParams,
    /// Updates from clients that completed training.
    pub updates: Vec<ModelUpdate>,
    /// The FedAvg aggregate.
    pub aggregate: AggregateModel,
    /// Pool-wide operational metadata.
    pub metrics: RoundMetrics,
}

/// Deterministic round-by-round FL job simulator.
///
/// Implements [`Iterator`], yielding one [`RoundRecord`] per round.
///
/// # Examples
///
/// ```
/// use flstore_fl::job::{FlJobConfig, FlJobSim};
/// use flstore_fl::ids::JobId;
///
/// let mut sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(1)));
/// let first = sim.next().expect("configured rounds");
/// assert_eq!(first.round.as_u32(), 0);
/// assert!(!first.updates.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FlJobSim {
    cfg: FlJobConfig,
    population: Vec<ClientProfile>,
    cluster_dirs: Vec<WeightVector>,
    client_bias: Vec<WeightVector>,
    client_cluster: Vec<usize>,
    global: WeightVector,
    payout: Vec<f64>,
    participation: Vec<u32>,
    last_loss: Vec<f64>,
    round: u32,
    rng_select: DetRng,
    rng_weights: DetRng,
    rng_metrics: DetRng,
}

impl FlJobSim {
    /// Builds the simulator (generates the client population and latent
    /// structure; O(total_clients × weight_dim)).
    ///
    /// # Panics
    ///
    /// Panics if the configuration selects zero clients per round or has an
    /// empty pool.
    pub fn new(cfg: FlJobConfig) -> Self {
        assert!(cfg.total_clients > 0, "client pool must be non-empty");
        assert!(
            cfg.clients_per_round > 0 && cfg.clients_per_round <= cfg.total_clients,
            "clients_per_round must be in 1..=total_clients"
        );
        assert!(
            cfg.latent_clusters > 0,
            "at least one latent cluster required"
        );
        let population = generate_population(
            cfg.seed,
            cfg.total_clients,
            cfg.dataset.classes,
            cfg.dirichlet_alpha,
            cfg.malicious_fraction,
        );
        let mut rng_structure = DetRng::stream(cfg.seed, "latent-structure");
        let cluster_dirs: Vec<WeightVector> = (0..cfg.latent_clusters)
            .map(|_| WeightVector::gaussian(&mut rng_structure, cfg.weight_dim, 1.0))
            .collect();
        let client_bias: Vec<WeightVector> = (0..cfg.total_clients)
            .map(|_| WeightVector::gaussian(&mut rng_structure, cfg.weight_dim, 1.0))
            .collect();
        let client_cluster: Vec<usize> = (0..cfg.total_clients as usize)
            .map(|_| rng_structure.index(cfg.latent_clusters))
            .collect();
        let global = WeightVector::gaussian(&mut rng_structure, cfg.weight_dim, 1.0);
        let n = cfg.total_clients as usize;
        FlJobSim {
            rng_select: DetRng::stream(cfg.seed, "selection"),
            rng_weights: DetRng::stream(cfg.seed, "weights"),
            rng_metrics: DetRng::stream(cfg.seed, "metrics"),
            population,
            cluster_dirs,
            client_bias,
            client_cluster,
            global,
            payout: vec![0.0; n],
            participation: vec![0; n],
            last_loss: vec![2.3; n],
            round: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FlJobConfig {
        &self.cfg
    }

    /// The client pool.
    pub fn population(&self) -> &[ClientProfile] {
        &self.population
    }

    /// Latent cluster assignment of each client (ground truth for
    /// clustering-workload tests).
    pub fn ground_truth_clusters(&self) -> &[usize] {
        &self.client_cluster
    }

    /// Global loss/accuracy trajectory at a round.
    fn trajectory(&self, round: u32) -> (f64, f64) {
        let progress = round as f64 / self.cfg.rounds.max(1) as f64;
        let decay = (-3.0 * progress).exp();
        let loss = 0.25 + 2.05 * decay;
        let acc = 0.85 - 0.75 * decay;
        (loss, acc)
    }

    fn synth_update(
        &mut self,
        client_idx: usize,
        round: Round,
        noise_scale: f64,
        global_loss: f64,
    ) -> ModelUpdate {
        let profile = &self.population[client_idx];
        let malicious = profile.is_malicious;
        let dim = self.cfg.weight_dim;
        let weights = if malicious {
            // Unrelated direction with inflated norm: the signature
            // norm/cosine-based filters look for.
            WeightVector::gaussian(&mut self.rng_weights, dim, 2.5)
        } else {
            let mut w = self.global.clone();
            w.axpy(0.5, &self.cluster_dirs[self.client_cluster[client_idx]]);
            w.axpy(0.2, &self.client_bias[client_idx]);
            let noise = WeightVector::gaussian(&mut self.rng_weights, dim, noise_scale);
            w.axpy(1.0, &noise);
            w
        };
        let loss_noise = self.rng_metrics.normal(0.0, 0.05).abs();
        let local_loss = if malicious {
            global_loss * 1.5 + 0.8 + loss_noise
        } else {
            global_loss * (0.9 + 0.2 * self.rng_metrics.u01()) + loss_noise
        };
        let local_accuracy = if malicious {
            (0.3 * self.rng_metrics.u01()).max(0.02)
        } else {
            (1.05 - local_loss / 2.55).clamp(0.02, 0.99)
        };
        let ref_train_secs = 60.0 * self.cfg.model.compute_scale();
        let train_time_s =
            profile.local_train_secs(ref_train_secs) * (0.9 + 0.2 * self.rng_metrics.u01());
        let upload_time_s = profile.upload_secs(self.cfg.model.size().as_bytes());
        self.last_loss[client_idx] = local_loss;
        ModelUpdate {
            job: self.cfg.job,
            client: profile.id,
            round,
            weights,
            metrics: UpdateMetrics {
                local_loss,
                local_accuracy,
                train_time_s,
                upload_time_s,
                num_samples: profile.num_samples,
                staleness: 0,
            },
            ground_truth_malicious: malicious,
        }
    }

    /// Advances one round.
    pub fn next_round(&mut self) -> Option<RoundRecord> {
        if self.round >= self.cfg.rounds {
            return None;
        }
        let round = Round::new(self.round);
        let (global_loss, global_acc) = self.trajectory(self.round);
        let progress = self.round as f64 / self.cfg.rounds.max(1) as f64;
        let noise_scale = 0.3 * (-2.0 * progress).exp() + 0.05;

        // Global signal drifts slowly toward convergence.
        let drift = WeightVector::gaussian(&mut self.rng_weights, self.cfg.weight_dim, 1.0);
        self.global.axpy(0.02 * noise_scale, &drift);

        // Availability, selection, dropout.
        let n = self.population.len();
        let available: Vec<usize> = (0..n)
            .filter(|i| self.rng_select.chance(self.population[*i].availability))
            .collect();
        let k = (self.cfg.clients_per_round as usize).min(available.len().max(1));
        let selected: Vec<usize> = if available.len() <= k {
            available.clone()
        } else {
            self.rng_select
                .choose_k(available.len(), k)
                .into_iter()
                .map(|j| available[j])
                .collect()
        };
        let mut completed: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|i| self.rng_select.chance(self.population[*i].reliability))
            .collect();
        if completed.is_empty() {
            // A round always produces at least one update (the aggregator
            // waits for stragglers in the limit).
            completed.push(selected.first().copied().unwrap_or(0));
        }

        let updates: Vec<ModelUpdate> = completed
            .iter()
            .map(|i| self.synth_update(*i, round, noise_scale, global_loss))
            .collect();
        let aggregate =
            fedavg(self.cfg.job, round, &updates).expect("completed set is never empty");

        // Payouts: completing clients earn credit proportional to alignment
        // with the aggregate (a simple contribution proxy).
        for u in &updates {
            let idx = u.client.as_u32() as usize;
            let contribution = u.weights.cosine_similarity(&aggregate.weights).max(0.0);
            self.payout[idx] += 0.5 + contribution;
            self.participation[idx] += 1;
        }

        let training_round_secs = updates
            .iter()
            .map(|u| u.metrics.train_time_s + u.metrics.upload_time_s)
            .fold(0.0, f64::max);

        let selected_set: std::collections::HashSet<usize> = selected.iter().copied().collect();
        let completed_set: std::collections::HashSet<usize> = completed.iter().copied().collect();
        let available_set: std::collections::HashSet<usize> = available.into_iter().collect();
        let clients: Vec<ClientRoundInfo> = (0..n)
            .map(|i| ClientRoundInfo {
                client: self.population[i].id,
                available: available_set.contains(&i),
                participated: selected_set.contains(&i),
                completed: completed_set.contains(&i),
                compute_speed: self.population[i].compute_speed,
                uplink_mbps: self.population[i].uplink_mbps,
                reliability: self.population[i].reliability,
                payout_balance: self.payout[i],
                participation_count: self.participation[i],
                last_loss: self.last_loss[i],
            })
            .collect();

        let metrics = RoundMetrics {
            round,
            global_loss,
            global_accuracy: global_acc,
            training_round_secs,
            clients,
        };
        let hyperparams = HyperParams::schedule(
            round,
            self.cfg.rounds,
            self.cfg.clients_per_round as f64 / self.cfg.total_clients as f64,
        );

        self.round += 1;
        Some(RoundRecord {
            round,
            hyperparams,
            updates,
            aggregate,
            metrics,
        })
    }
}

impl Iterator for FlJobSim {
    type Item = RoundRecord;

    fn next(&mut self) -> Option<RoundRecord> {
        self.next_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_configured_rounds() {
        let sim = FlJobSim::new(FlJobConfig::quick_test(JobId::new(1)));
        let records: Vec<RoundRecord> = sim.collect();
        assert_eq!(records.len(), 12);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round.as_u32(), i as u32);
            assert!(!r.updates.is_empty());
            assert!(r.updates.len() <= 5);
            assert_eq!(r.metrics.clients.len(), 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<RoundRecord> = FlJobSim::new(FlJobConfig::quick_test(JobId::new(2))).collect();
        let b: Vec<RoundRecord> = FlJobSim::new(FlJobConfig::quick_test(JobId::new(2))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loss_decreases_accuracy_increases() {
        let records: Vec<RoundRecord> =
            FlJobSim::new(FlJobConfig::quick_test(JobId::new(3))).collect();
        let first = &records[0].metrics;
        let last = &records[records.len() - 1].metrics;
        assert!(first.global_loss > last.global_loss);
        assert!(first.global_accuracy < last.global_accuracy);
    }

    #[test]
    fn malicious_updates_are_outliers() {
        let mut cfg = FlJobConfig::quick_test(JobId::new(4));
        cfg.malicious_fraction = 0.3;
        cfg.clients_per_round = 10;
        let records: Vec<RoundRecord> = FlJobSim::new(cfg).collect();
        let mut honest_sims = Vec::new();
        let mut malicious_sims = Vec::new();
        for r in &records {
            for u in &r.updates {
                let sim = u.weights.cosine_similarity(&r.aggregate.weights);
                if u.ground_truth_malicious {
                    malicious_sims.push(sim);
                } else {
                    honest_sims.push(sim);
                }
            }
        }
        assert!(
            !malicious_sims.is_empty(),
            "expected malicious participants"
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&honest_sims) > mean(&malicious_sims) + 0.3,
            "honest {} vs malicious {}",
            mean(&honest_sims),
            mean(&malicious_sims)
        );
    }

    #[test]
    fn same_cluster_clients_are_closer() {
        let cfg = FlJobConfig {
            malicious_fraction: 0.0,
            clients_per_round: 20,
            total_clients: 20,
            ..FlJobConfig::quick_test(JobId::new(5))
        };
        let sim = FlJobSim::new(cfg);
        let clusters = sim.ground_truth_clusters().to_vec();
        let records: Vec<RoundRecord> = sim.collect();
        let last = &records[records.len() - 1];
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for a in &last.updates {
            for b in &last.updates {
                if a.client >= b.client {
                    continue;
                }
                let d = a.weights.l2_distance(&b.weights);
                if clusters[a.client.as_u32() as usize] == clusters[b.client.as_u32() as usize] {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        if same.is_empty() || diff.is_empty() {
            return; // tiny pool may miss a pairing; other seeds cover it
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&same) < mean(&diff));
    }

    #[test]
    fn payouts_accumulate_for_participants() {
        let records: Vec<RoundRecord> =
            FlJobSim::new(FlJobConfig::quick_test(JobId::new(6))).collect();
        let last = &records[records.len() - 1].metrics;
        let total_payout: f64 = last.clients.iter().map(|c| c.payout_balance).sum();
        assert!(total_payout > 0.0);
        let participated: u32 = last.clients.iter().map(|c| c.participation_count).sum();
        assert!(participated >= records.len() as u32);
    }

    #[test]
    fn round_metadata_bytes_scale_with_model() {
        let small = FlJobConfig::paper_eval(JobId::new(7), ModelArch::MOBILENET_V3_SMALL);
        let large = FlJobConfig::paper_eval(JobId::new(7), ModelArch::SWIN_V2_TINY);
        assert!(large.round_metadata_bytes() > small.round_metadata_bytes());
        // 10 updates + 1 aggregate of EfficientNet ≈ 0.9 GB.
        let eff = FlJobConfig::paper_eval(JobId::new(8), ModelArch::EFFICIENTNET_V2_S);
        let gb = eff.round_metadata_bytes().as_gb_f64();
        assert!((0.8..1.1).contains(&gb), "round bytes {gb} GB");
    }

    #[test]
    #[should_panic(expected = "clients_per_round")]
    fn oversubscribed_round_panics() {
        let cfg = FlJobConfig {
            clients_per_round: 100,
            total_clients: 10,
            ..FlJobConfig::quick_test(JobId::new(9))
        };
        let _ = FlJobSim::new(cfg);
    }
}
