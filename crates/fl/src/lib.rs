//! # flstore-fl — federated learning substrate
//!
//! Generates the FL metadata stream that non-training workloads consume and
//! storage systems move, without training real neural networks:
//!
//! * [`zoo`] — the 23-model zoo of the paper's Fig. 19 plus the four
//!   evaluation models, with real parameter counts and checkpoint sizes.
//! * [`weights`] — reduced-fidelity weight vectors with real vector math
//!   (norms, cosine similarity, distances, averaging).
//! * [`client`] — heterogeneous device population (speed, bandwidth,
//!   availability, reliability, non-IID data, malicious flags).
//! * [`job`] — the deterministic round-by-round job simulator.
//! * [`aggregate`] — FedAvg and mean aggregation.
//! * [`hyperparams`] / [`metrics`] — the small per-round records (P4 data).
//! * [`metadata`] — `(job, round, client?, kind)` keys and blob
//!   serialization with full-model logical sizes.
//! * [`dataset`] / [`ids`] — descriptors and identifier newtypes.
//!
//! The statistical structure is what matters: honest updates share a global
//! signal plus latent cluster structure; malicious updates are
//! high-norm outliers; losses decay along a convergence trajectory. The
//! workload crate's detectors, clusterers, and schedulers operate on this
//! structure for real, and tests score them against the embedded ground
//! truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod client;
pub mod dataset;
pub mod decoded;
pub mod hyperparams;
pub mod ids;
pub mod job;
pub mod metadata;
pub mod metrics;
pub mod update;
pub mod weights;
pub mod zoo;

pub use aggregate::{fedavg, AggregateModel};
pub use client::ClientProfile;
pub use dataset::DatasetSpec;
pub use decoded::{DecodedCache, DecodedStats};
pub use hyperparams::HyperParams;
pub use ids::{ClientId, JobId, Round};
pub use job::{FlJobConfig, FlJobSim, RoundRecord};
pub use metadata::{
    round_blobs, round_entries, MetaKey, MetaKind, MetaValue, RoundEntry, SharedValue,
};
pub use metrics::{ClientRoundInfo, RoundMetrics};
pub use update::{ModelUpdate, UpdateMetrics};
pub use weights::WeightVector;
pub use zoo::ModelArch;
