//! Decoded-value cache: at most one `Blob → JSON → MetaValue` parse per
//! cached object lifetime.
//!
//! Serving systems keep blobs next to compute (function memory, memcache
//! clusters, object stores); without this layer every request re-parses
//! the blob it already holds. [`DecodedCache`] maps a [`MetaKey`] to the
//! [`SharedValue`] decoded from its current bytes, so a cache hit is an
//! `Arc` clone instead of a JSON parse.
//!
//! Coherence is two-layered:
//!
//! * owners invalidate explicitly on eviction/overwrite
//!   ([`DecodedCache::invalidate`]), and
//! * every validated read ([`DecodedCache::get_or_decode`]) checks that
//!   the presented blob is *the same bytes in memory* as the ones the
//!   cached value was decoded from (same slice address and length — see
//!   [`same_bytes`], which uses only upstream `bytes` API). The entry pins
//!   a refcounted clone of those bytes, so the backing buffer can never be
//!   freed and its address reused while the entry lives — a pointer match
//!   therefore guarantees the decode is current, and an overwritten blob
//!   (new buffer, new address) forces a re-decode. No stale handle can
//!   survive an overwrite.

use std::collections::HashMap;

use bytes::Bytes;
use flstore_cloud::blob::Blob;
use flstore_sim::bytes::ByteSize;

use crate::metadata::{MetaKey, MetaValue, SharedValue};

/// Fixed per-entry bookkeeping charge: one hash-map slot (~48 B), the
/// pinned `Bytes` handle (~32 B), and the `Arc` header (~32 B). The
/// decoded value itself is charged via
/// [`MetaValue::resident_estimate`].
const ENTRY_OVERHEAD: ByteSize = ByteSize::from_bytes(112);

/// Byte-identity check: whether two handles view *the same slice of
/// memory* (same starting address, same length). Unlike the vendored
/// `Bytes::ptr_eq`, this relies only on API that upstream `bytes` exposes
/// (`Deref<Target = [u8]>`), so the workspace can swap to crates.io
/// `bytes` without a vendor-only identity method.
///
/// Empty slices are never considered identical: all empty views share one
/// dangling address, so an address match proves nothing about provenance.
pub fn same_bytes(a: &Bytes, b: &Bytes) -> bool {
    !a.is_empty() && a.len() == b.len() && a.as_ptr() == b.as_ptr()
}

/// Operation counters for the decoded-value layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodedStats {
    /// Reads served from an existing decoded handle (zero-parse).
    pub hits: u64,
    /// Full `Blob → MetaValue` parses performed by the cache.
    pub decodes: u64,
    /// Entries seeded from values already decoded by the producer
    /// (ingest-time: zero-parse).
    pub seeded: u64,
    /// Entries dropped — explicit invalidation or a byte-identity
    /// mismatch on read.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    /// The exact bytes `value` was decoded from. Holding this clone pins
    /// the backing buffer, making the [`same_bytes`] identity check sound.
    payload: Bytes,
    value: SharedValue,
    /// This entry's contribution to [`DecodedCache::resident_bytes`]
    /// (value estimate + fixed bookkeeping), recorded at insertion so
    /// removal subtracts exactly what was added.
    charge: ByteSize,
}

impl Entry {
    fn new(payload: Bytes, value: SharedValue) -> Self {
        let charge = value.resident_estimate() + ENTRY_OVERHEAD;
        Entry {
            payload,
            value,
            charge,
        }
    }
}

/// Maps cached object keys to their decoded value handles.
///
/// # Examples
///
/// ```
/// use flstore_fl::decoded::DecodedCache;
/// use flstore_fl::ids::{ClientId, JobId, Round};
/// use flstore_fl::job::{FlJobConfig, FlJobSim};
/// use flstore_fl::metadata::round_entries;
///
/// let cfg = FlJobConfig::quick_test(JobId::new(1));
/// let model = cfg.model;
/// let record = FlJobSim::new(cfg).next().expect("rounds");
/// let entries = round_entries(&record, JobId::new(1), &model);
///
/// let mut cache = DecodedCache::new();
/// for e in &entries {
///     cache.seed(e.key, &e.blob, e.value.clone());
/// }
/// // Every subsequent read is an Arc clone, not a JSON parse.
/// let e = &entries[0];
/// let v = cache.get_or_decode(&e.key, &e.blob).expect("decodable");
/// assert_eq!(*v, *e.value);
/// assert_eq!(cache.stats().decodes, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecodedCache {
    entries: HashMap<MetaKey, Entry>,
    stats: DecodedStats,
    resident: ByteSize,
}

impl DecodedCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecodedCache::default()
    }

    /// Number of decoded entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Operation counters since construction.
    pub fn stats(&self) -> DecodedStats {
        self.stats
    }

    /// Estimated resident memory of the decoded layer: one
    /// [`MetaValue::resident_estimate`] per entry plus fixed per-entry
    /// bookkeeping. Maintained incrementally, so reading it is O(1) — the
    /// accounting capacity/quota decisions fold into their budgets.
    pub fn resident_bytes(&self) -> ByteSize {
        self.resident
    }

    fn insert_entry(&mut self, key: MetaKey, entry: Entry) {
        self.resident += entry.charge;
        if let Some(old) = self.entries.insert(key, entry) {
            self.resident = self.resident.saturating_sub(old.charge);
        }
    }

    fn remove_entry(&mut self, key: &MetaKey) -> bool {
        match self.entries.remove(key) {
            Some(old) => {
                self.resident = self.resident.saturating_sub(old.charge);
                true
            }
            None => false,
        }
    }

    /// The decoded handle for `key`, if present. Trusts the owner's
    /// explicit invalidation; use [`DecodedCache::get_or_decode`] when the
    /// current blob is at hand and byte-identity should be verified.
    pub fn get(&mut self, key: &MetaKey) -> Option<SharedValue> {
        let entry = self.entries.get(key)?;
        self.stats.hits += 1;
        Some(entry.value.clone())
    }

    /// The decoded handle for `key` validated against `blob`: returns the
    /// cached handle when the entry was decoded from these exact bytes,
    /// re-decodes (and replaces the entry) otherwise. Returns `None` for
    /// undecodable payloads (synthetic blobs), dropping any stale entry.
    pub fn get_or_decode(&mut self, key: &MetaKey, blob: &Blob) -> Option<SharedValue> {
        if let Some(entry) = self.entries.get(key) {
            if same_bytes(&entry.payload, blob.payload()) {
                self.stats.hits += 1;
                return Some(entry.value.clone());
            }
            // Same key, different bytes: the object was overwritten.
            self.stats.invalidations += 1;
            self.remove_entry(key);
        }
        self.decode_insert(*key, blob)
    }

    /// Seeds an entry from a value the producer already holds decoded
    /// (ingest path): no parse happens now or on later hits, as long as
    /// the served blob keeps these bytes.
    ///
    /// Payload-less blobs are ignored: all empty `Bytes` views alias one
    /// address, so a pointer comparison cannot distinguish them and a
    /// seeded entry could match a logically different empty blob later.
    /// (Such blobs carry nothing decodable anyway; [`same_bytes`] also
    /// refuses empty slices as a second line of defense.)
    pub fn seed(&mut self, key: MetaKey, blob: &Blob, value: SharedValue) {
        if blob.payload().is_empty() {
            return;
        }
        self.stats.seeded += 1;
        self.insert_entry(key, Entry::new(blob.payload().clone(), value));
    }

    /// Drops the entry for `key` (owner-side eviction/overwrite).
    pub fn invalidate(&mut self, key: &MetaKey) {
        if self.remove_entry(key) {
            self.stats.invalidations += 1;
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.resident = ByteSize::ZERO;
    }

    fn decode_insert(&mut self, key: MetaKey, blob: &Blob) -> Option<SharedValue> {
        self.stats.decodes += 1;
        let value = MetaValue::decode_shared(blob)?;
        self.insert_entry(key, Entry::new(blob.payload().clone(), value.clone()));
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, Round};
    use crate::job::{FlJobConfig, FlJobSim};
    use crate::metadata::round_entries;
    use crate::zoo::ModelArch;
    use flstore_sim::bytes::ByteSize;

    fn sample() -> (MetaKey, SharedValue, Blob) {
        let cfg = FlJobConfig::quick_test(JobId::new(7));
        let model = cfg.model;
        let record = FlJobSim::new(cfg).next().expect("rounds");
        let e = round_entries(&record, JobId::new(7), &model)
            .into_iter()
            .next()
            .expect("entries");
        (e.key, e.value, e.blob)
    }

    #[test]
    fn decode_happens_once_across_repeated_hits() {
        let (key, _, blob) = sample();
        let mut cache = DecodedCache::new();
        let first = cache.get_or_decode(&key, &blob).expect("decodable");
        for _ in 0..100 {
            let again = cache.get_or_decode(&key, &blob).expect("decodable");
            assert!(SharedValue::ptr_eq(&first, &again));
        }
        assert_eq!(cache.stats().decodes, 1);
        assert_eq!(cache.stats().hits, 100);
    }

    #[test]
    fn seeded_entries_never_parse() {
        let (key, value, blob) = sample();
        let mut cache = DecodedCache::new();
        cache.seed(key, &blob, value.clone());
        for _ in 0..10 {
            let got = cache.get_or_decode(&key, &blob).expect("cached");
            assert!(SharedValue::ptr_eq(&value, &got));
        }
        assert_eq!(cache.stats().decodes, 0);
        assert_eq!(cache.stats().seeded, 1);
    }

    #[test]
    fn overwrite_forces_redecode_and_serves_fresh_value() {
        let (key, _, blob) = sample();
        let mut cache = DecodedCache::new();
        let stale = cache.get_or_decode(&key, &blob).expect("decodable");

        // Overwrite: same key, different bytes (a different value).
        let replacement = MetaValue::Hyper(crate::hyperparams::HyperParams::schedule(
            Round::new(1),
            10,
            0.2,
        ));
        let new_blob = replacement.to_blob(&ModelArch::RESNET18);
        let fresh = cache.get_or_decode(&key, &new_blob).expect("decodable");
        assert!(!SharedValue::ptr_eq(&stale, &fresh));
        assert_eq!(*fresh, replacement);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().decodes, 2);
    }

    #[test]
    fn invalidate_then_refetch_redecodes() {
        let (key, _, blob) = sample();
        let mut cache = DecodedCache::new();
        cache.get_or_decode(&key, &blob).expect("decodable");
        cache.invalidate(&key);
        assert!(cache.get(&key).is_none());
        cache.get_or_decode(&key, &blob).expect("decodable");
        assert_eq!(cache.stats().decodes, 2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn synthetic_blobs_do_not_cache() {
        let (key, _, _) = sample();
        let mut cache = DecodedCache::new();
        let blob = Blob::synthetic(ByteSize::from_mb(1));
        assert!(cache.get_or_decode(&key, &blob).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn same_bytes_is_identity_not_equality() {
        let (_, _, blob) = sample();
        let a = blob.payload().clone();
        // A clone views the same backing buffer: identical.
        assert!(same_bytes(&a, blob.payload()));
        // An equal-content copy lives at a different address: not identical.
        let copy = Bytes::copy_from_slice(&a);
        assert_eq!(&*copy, &*a);
        assert!(!same_bytes(&a, &copy));
        // Empty views are never identical, even to themselves by address.
        let empty = Bytes::new();
        assert!(!same_bytes(&empty, &Bytes::new()));
        assert!(!same_bytes(&empty, &empty.clone()));
    }

    #[test]
    fn resident_bytes_track_entry_lifecycle() {
        let (key, value, blob) = sample();
        let mut cache = DecodedCache::new();
        assert_eq!(cache.resident_bytes(), ByteSize::ZERO);
        cache.seed(key, &blob, value.clone());
        let one = cache.resident_bytes();
        assert!(one >= value.resident_estimate(), "{one}");

        // Re-seeding the same key replaces the charge instead of leaking it.
        cache.seed(key, &blob, value.clone());
        assert_eq!(cache.resident_bytes(), one);

        // Invalidation returns the bytes.
        cache.invalidate(&key);
        assert_eq!(cache.resident_bytes(), ByteSize::ZERO);

        // Decoding charges; clearing zeroes.
        cache.get_or_decode(&key, &blob).expect("decodable");
        assert!(cache.resident_bytes() > ByteSize::ZERO);
        cache.clear();
        assert_eq!(cache.resident_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn seeding_a_payloadless_blob_is_refused() {
        // All empty `Bytes` views share one address, so an empty-payload
        // entry would address-match ANY later empty blob and serve a stale
        // value for logically different data. `seed` must refuse it.
        let (key, value, _) = sample();
        let mut cache = DecodedCache::new();
        let synthetic_a = Blob::synthetic(ByteSize::from_mb(1));
        cache.seed(key, &synthetic_a, value);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().seeded, 0);
        // A later read with a different (also payload-less) blob cannot be
        // served a stale handle.
        let synthetic_b = Blob::synthetic(ByteSize::from_mb(2));
        assert!(cache.get_or_decode(&key, &synthetic_b).is_none());
    }
}
