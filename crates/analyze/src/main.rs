//! CLI front end for the workspace lint.
//!
//! ```text
//! flstore-analyze lint [--json] [--root <path>]   # exit 1 on violations
//! flstore-analyze --list-rules                    # rule inventory (tsv)
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use flstore_analyze::{lint_workspace, rules};

fn usage() -> ExitCode {
    eprintln!(
        "usage: flstore-analyze lint [--json] [--root <path>]\n       flstore-analyze --list-rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("--list-rules") => {
            print!("{}", rules::inventory());
            ExitCode::SUCCESS
        }
        Some("lint") => {
            let mut json = false;
            let mut root = PathBuf::from(".");
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => match iter.next() {
                        Some(p) => root = PathBuf::from(p),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let report = match lint_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("flstore-analyze: {e}");
                    return ExitCode::from(2);
                }
            };
            if json {
                match serde_json::to_string(&report) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("flstore-analyze: json: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                for d in &report.diagnostics {
                    println!("{}", d.render());
                }
                eprintln!(
                    "flstore-analyze: {} file(s) scanned, {} violation(s)",
                    report.files_scanned,
                    report.diagnostics.len()
                );
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
