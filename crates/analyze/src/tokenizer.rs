//! A small Rust-aware tokenizer: just enough lexing for line/token-level
//! lint rules. It understands comments (line + nested block), string and
//! char literals (including raw and byte strings), lifetimes, numbers,
//! identifiers, and collapses `::` into one punctuation token — so the
//! rule scanners never match text inside strings or comments.
//!
//! This is deliberately not a parser: the lint layer works on token
//! sequences plus a handful of structural helpers (brace matching,
//! statement boundaries) and keeps its honesty by allowing per-site
//! annotations wherever the heuristics cannot see far enough.

/// The coarse classification a lint rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `sort_unstable`, ...).
    Ident,
    /// Punctuation; `::` is one token, everything else is one char.
    Punct,
    /// String/char/number literal (content preserved for float checks).
    Literal,
    /// Line or block comment, content preserved for annotation parsing.
    Comment,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Coarse kind.
    pub kind: TokKind,
    /// Source text (comments keep their full body).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Tok {
            kind,
            text: text.into(),
            line,
        }
    }
}

/// Lexes `src` into a flat token stream. Unterminated constructs consume
/// to end-of-input rather than erroring: the lint must degrade gracefully
/// on any file rustc itself would reject.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok::new(TokKind::Comment, text, line));
            continue;
        }
        // Block comment (nested, possibly multi-line).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok::new(TokKind::Comment, text, start_line));
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br"..." / br#"..."#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    let start_line = line;
                    k += 1;
                    // Consume until `"` followed by `hashes` hashes.
                    loop {
                        if k >= n {
                            break;
                        }
                        if chars[k] == '\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break;
                            }
                        }
                        k += 1;
                    }
                    toks.push(Tok::new(TokKind::Literal, "r\"...\"", start_line));
                    i = k;
                    continue;
                }
            }
        }
        // Plain / byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let start_line = line;
            let mut k = if c == 'b' { i + 2 } else { i + 1 };
            while k < n {
                match chars[k] {
                    '\\' => k += 2,
                    '"' => {
                        k += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            toks.push(Tok::new(TokKind::Literal, "\"...\"", start_line));
            i = k;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to closing quote.
                let mut k = i + 2;
                while k < n && chars[k] != '\'' {
                    k += 1;
                }
                toks.push(Tok::new(TokKind::Literal, "'\\?'", line));
                i = (k + 1).min(n);
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                toks.push(Tok::new(TokKind::Literal, "'?'", line));
                i += 3;
                continue;
            }
            // Lifetime: skip the quote and its identifier.
            let mut k = i + 1;
            while k < n && is_ident_cont(chars[k]) {
                k += 1;
            }
            i = k;
            continue;
        }
        // Numbers (enough to spot float literals: keep `.`-joined digits).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // `1.5`: take the dot only when a digit follows (so `0..n`
            // ranges and `1.max(2)` method calls stay separate tokens).
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok::new(TokKind::Literal, text, line));
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            toks.push(Tok::new(TokKind::Ident, text, line));
            continue;
        }
        // `::` is one token; everything else single-char punctuation.
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            toks.push(Tok::new(TokKind::Punct, "::", line));
            i += 2;
            continue;
        }
        toks.push(Tok::new(TokKind::Punct, c, line));
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
            // HashMap in a comment
            /* nested /* SystemTime::now() */ still comment */
            let s = "Instant::now() inside a string";
            let r = r#"HashSet "raw""#;
        "##;
        let t = texts(src);
        assert!(!t
            .iter()
            .any(|x| x == "HashMap" || x == "SystemTime" || x == "HashSet"));
        assert!(t.iter().any(|x| x == "let"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(t.iter().any(|x| x == "str"));
        // The content after a lifetime must still lex.
        assert!(t.iter().any(|x| x == "fn"));
    }

    #[test]
    fn float_literals_keep_their_dot() {
        let t = texts("let x = 1.5e-3 + 0.0; let r = 0..n; let m = 1.max(2);");
        assert!(t.iter().any(|x| x == "1.5e"));
        assert!(t.iter().any(|x| x == "0.0"));
        assert!(t.iter().any(|x| x == "max"));
        // Range endpoints stay integers.
        assert!(t.iter().any(|x| x == "0"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let t = texts("SystemTime::now()");
        assert_eq!(t, vec!["SystemTime", "::", "now", "(", ")"]);
    }

    #[test]
    fn comments_carry_their_bodies_for_annotations() {
        let toks = tokenize("let x = 1; // flstore: allow(wall_clock, reason)");
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert!(c.text.contains("flstore: allow(wall_clock"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
