//! The scanning engine: runs every rule over a token stream and folds the
//! two allow layers (inline annotations, path allowlist) into the final
//! diagnostic list.
//!
//! The determinism rules (`unordered_iter`, `unordered_float_fold`) are
//! deliberately heuristic — token-level, two passes, no type information:
//!
//! 1. collect the names bound to `HashMap`/`HashSet` values in this file
//!    (let-bindings, struct fields, fn params — found by walking back from
//!    each `HashMap`/`HashSet` token to its binding name);
//! 2. flag iteration sites (`for` loops and `.iter()`-family calls) whose
//!    receiver mentions one of those names, unless the surrounding
//!    statement window sorts the items or reduces them order-independently.
//!
//! Anything the heuristics cannot see is handled by per-site
//! `// flstore: allow(<rule>, <reason>)` annotations — the lint prefers a
//! visible, justified suppression over silent cleverness.

use std::path::Path;

use serde::Serialize;

use crate::allow::{self, Allowlist};
use crate::rules;
use crate::tokenizer::{tokenize, Tok, TokKind};

/// One finding, in both human and JSON output.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule id (see [`rules::RULES`]).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation, including how to suppress.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: rule: message` — the human diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a full lint run.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// The iteration-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Order-independent reducers: seeing one of these consume the iterator
/// (method position) exempts the site. `sum`/`fold`/`min_by_key` are NOT
/// here on purpose — float sums are order-dependent and keyed min/max
/// reproduced a real tie-break bug.
const ORDER_FREE_REDUCERS: &[&str] = &[
    "count",
    "all",
    "any",
    "contains",
    "contains_key",
    "is_empty",
    "len",
    "max",
    "min",
    "find",
];

/// Accumulators whose result depends on iteration order for floats.
const ACCUMULATORS: &[&str] = &["sum", "fold", "product"];

/// Determinism-critical crates: their `src/` trees get the unordered-
/// iteration rules.
const DETERMINISM_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/fl/src/",
    "crates/exec/src/",
    "crates/workloads/src/",
    "crates/baselines/src/",
    "crates/net/src/",
    "crates/loadgen/src/",
    "crates/durability/src/",
    "crates/cluster/src/",
];

/// True when `rel` falls under a determinism-critical crate's `src/`.
pub fn is_determinism_path(rel: &str) -> bool {
    DETERMINISM_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Lints one file. `rel` is the workspace-relative path used in
/// diagnostics and allowlist matching.
pub fn lint_file(rel: &str, src: &str, allowlist: &Allowlist) -> Vec<Diagnostic> {
    let toks = tokenize(src);
    let (allows, bad) = allow::collect_inline_allows(&toks);
    let code: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();

    let mut out = Vec::new();
    for b in &bad {
        out.push(Diagnostic {
            rule: rules::BAD_ANNOTATION.to_string(),
            file: rel.to_string(),
            line: b.line,
            message: b.why.clone(),
        });
    }

    if is_determinism_path(rel) {
        let test_ranges = cfg_test_ranges(&code);
        let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
        let names = hash_binding_names(&code);
        if !names.is_empty() {
            for (line, name, rule) in unordered_iteration_sites(&code, &names) {
                if in_test(line) {
                    continue;
                }
                let message = if rule == rules::UNORDERED_FLOAT_FOLD {
                    format!(
                        "float accumulation over hash-ordered `{name}` — addition order \
                         changes the result bits; collect and sort before folding"
                    )
                } else {
                    format!(
                        "iteration over hash-ordered `{name}` with no adjacent sort and no \
                         order-independent reduction; sort the items or annotate \
                         `// flstore: allow(unordered_iter, <reason>)`"
                    )
                };
                out.push(Diagnostic {
                    rule: rule.to_string(),
                    file: rel.to_string(),
                    line,
                    message,
                });
            }
        }
    }

    for (line, what) in wall_clock_sites(&code) {
        out.push(Diagnostic {
            rule: rules::WALL_CLOCK.to_string(),
            file: rel.to_string(),
            line,
            message: format!(
                "`{what}::now()` outside the bench/overhead allowlist — wall-clock reads \
                 break replayability; plumb simulated time or add the file to \
                 analyze-allowlist.txt with a justification"
            ),
        });
    }
    for (line, what) in ambient_entropy_sites(&code) {
        out.push(Diagnostic {
            rule: rules::AMBIENT_ENTROPY.to_string(),
            file: rel.to_string(),
            line,
            message: format!(
                "ambient entropy source `{what}` — all randomness must flow from \
                 explicitly seeded deterministic streams"
            ),
        });
    }
    for (line, what) in std_sync_lock_sites(&code) {
        out.push(Diagnostic {
            rule: rules::STD_SYNC_LOCK.to_string(),
            file: rel.to_string(),
            line,
            message: format!(
                "`std::sync::{what}` — use the vendored `parking_lot::{what}` \
                 (non-poisoning, lock-order instrumentable)"
            ),
        });
    }
    for (line, method, handler) in lock_poison_sites(&code) {
        out.push(Diagnostic {
            rule: rules::LOCK_POISON.to_string(),
            file: rel.to_string(),
            line,
            message: format!(
                "`.{method}().{handler}(..)` poison handling — parking_lot guards \
                 cannot poison; take the guard directly"
            ),
        });
    }

    // Apply both allow layers, then dedup (a `for (k, v) in m.iter()` site
    // is found by both the for-loop and the method scanner).
    out.retain(|d| {
        !allow::inline_allowed(&allows, &d.rule, d.line) && !allowlist.allows(&d.rule, &d.file)
    });
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Names bound to `HashMap`/`HashSet` values in this file: walks back from
/// each `HashMap`/`HashSet` token through the type/path expression to the
/// binding it belongs to (field `name:`, `let name =`, param `name:`).
fn hash_binding_names(code: &[&Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if let Some(name) = binding_name_before(code, i) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

/// Walks back from index `i` (a `HashMap`/`HashSet` token) over tokens that
/// can be part of a type or path, to the stop token that reveals the
/// binding shape.
fn binding_name_before(code: &[&Tok], i: usize) -> Option<String> {
    let type_punct = ["::", "<", ">", "&", ",", "-"];
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = code[j];
        match t.kind {
            TokKind::Ident => {
                // `let x = HashMap::new()` / `mut` / wrapper types: keep going.
                if t.text == "let" || t.text == "return" || t.text == "in" {
                    return None;
                }
                continue;
            }
            TokKind::Punct if type_punct.contains(&t.text.as_str()) => continue,
            TokKind::Punct if t.text == ":" => {
                // Field or param: the ident right before `:` is the name.
                return ident_before(code, j);
            }
            TokKind::Punct if t.text == "=" => {
                // `let [mut] name [: Ty] = HashMap::new()`: the name is the
                // ident before `=`, or before the `:` of its annotation.
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    let u = code[k];
                    if u.kind == TokKind::Ident {
                        if u.text == "mut" || u.text == "let" {
                            continue;
                        }
                        return Some(u.text.clone());
                    }
                    if u.kind == TokKind::Punct
                        && (u.text == ":" || type_punct.contains(&u.text.as_str()))
                    {
                        continue;
                    }
                    return None;
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// The nearest ident strictly before index `j`.
fn ident_before(code: &[&Tok], j: usize) -> Option<String> {
    code[..j]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Finds iteration sites over hash-named bindings; returns
/// `(line, name, rule)` per site (rule is `unordered_iter` or
/// `unordered_float_fold`).
fn unordered_iteration_sites(code: &[&Tok], names: &[String]) -> Vec<(u32, String, &'static str)> {
    let mut sites = Vec::new();

    // Method-position iteration: `<receiver>.iter()`-family calls.
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let at_method = i > 0
            && code[i - 1].kind == TokKind::Punct
            && code[i - 1].text == "."
            && code.get(i + 1).is_some_and(|n| n.text == "(");
        if !at_method {
            continue;
        }
        let Some(name) = receiver_hash_name(code, i - 1, names) else {
            continue;
        };
        if let Some(rule) = classify_window(code, i) {
            sites.push((t.line, name, rule));
        }
    }

    // `for <pat> in <iterable> {`: flag when the iterable mentions a hash
    // name (covers bare `for k in map {` with no method call). `impl Trait
    // for Type` never has an `in` before its `{`, so it cannot match.
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "for" {
            continue;
        }
        let mut j = i + 1;
        let mut in_at = None;
        while j < code.len() && j - i < 64 {
            let u = code[j];
            if u.kind == TokKind::Ident && u.text == "in" {
                in_at = Some(j);
                break;
            }
            if u.kind == TokKind::Punct && (u.text == "{" || u.text == ";") {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else { continue };
        // Scan the iterable expression up to the loop body brace.
        let mut k = in_at + 1;
        let mut depth = 0i32;
        let mut hit = None;
        while k < code.len() && k - in_at < 64 {
            let u = code[k];
            if u.kind == TokKind::Punct {
                match u.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" => break,
                    _ => {}
                }
            } else if u.kind == TokKind::Ident && names.contains(&u.text) && hit.is_none() {
                hit = Some(u.text.clone());
            }
            k += 1;
        }
        if let Some(name) = hit {
            if let Some(rule) = classify_window(code, in_at) {
                sites.push((t.line, name, rule));
            }
        }
    }

    sites
}

/// Walks the receiver chain back from the `.` at `dot` and returns the
/// first hash-named ident in it, skipping balanced `(..)`/`[..]` groups.
fn receiver_hash_name(code: &[&Tok], dot: usize, names: &[String]) -> Option<String> {
    let mut depth = 0i32;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = code[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                "." | "::" | "?" | "&" | "*" => {}
                _ => {
                    if depth == 0 {
                        return None;
                    }
                }
            },
            TokKind::Ident if depth == 0 && names.contains(&t.text) => {
                return Some(t.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// Examines the statement window after an iteration site (the rest of the
/// current statement plus the next one) and decides its fate:
/// `None` = exempt, `Some(rule)` = flag under that rule.
fn classify_window(code: &[&Tok], site: usize) -> Option<&'static str> {
    let mut semis = 0;
    let mut depth = 0i32;
    let mut accumulates = false;
    let mut float_evidence = false;
    let mut k = site;
    while k < code.len() && k - site < 120 {
        let t = code[k];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    semis += 1;
                    if semis >= 2 {
                        break;
                    }
                }
                _ => {}
            },
            TokKind::Ident => {
                let s = t.text.as_str();
                if s.starts_with("sort")
                    || s == "sorted"
                    || s == "BTreeMap"
                    || s == "BTreeSet"
                    || s == "BinaryHeap"
                {
                    return None;
                }
                // Method position: preceded by `.`, followed by `(` or a
                // turbofish (`sum::<f64>()`).
                let at_method = k > 0
                    && code[k - 1].kind == TokKind::Punct
                    && code[k - 1].text == "."
                    && code
                        .get(k + 1)
                        .is_some_and(|n| n.text == "(" || n.text == "::");
                if at_method && ORDER_FREE_REDUCERS.contains(&s) {
                    return None;
                }
                if at_method && ACCUMULATORS.contains(&s) {
                    accumulates = true;
                }
                if s == "f64" || s == "f32" {
                    float_evidence = true;
                }
            }
            TokKind::Literal => {
                if t.text.contains('.') && t.text.starts_with(|c: char| c.is_ascii_digit()) {
                    float_evidence = true;
                }
            }
            TokKind::Comment => {}
        }
        k += 1;
    }
    if accumulates && float_evidence {
        Some(rules::UNORDERED_FLOAT_FOLD)
    } else {
        Some(rules::UNORDERED_ITER)
    }
}

/// Line ranges of `#[cfg(test)] mod … { … }` blocks (inclusive).
fn cfg_test_ranges(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let seq_matches = code[i].text == "#"
            && code[i + 1].text == "["
            && code[i + 2].text == "cfg"
            && code[i + 3].text == "("
            && code[i + 4].text == "test"
            && code[i + 5].text == ")"
            && code[i + 6].text == "]";
        if !seq_matches {
            i += 1;
            continue;
        }
        // Allow a few tokens (other attrs, `pub`) before `mod`.
        let mut j = i + 7;
        let mut saw_mod = false;
        while j < code.len() && j - i < 20 {
            if code[j].kind == TokKind::Ident && code[j].text == "mod" {
                saw_mod = true;
                break;
            }
            if code[j].text == "{" || code[j].text == ";" {
                break;
            }
            j += 1;
        }
        if !saw_mod {
            i += 7;
            continue;
        }
        // Find the block's `{` and match braces to its end.
        while j < code.len() && code[j].text != "{" {
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let start_line = code[i].line;
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < code.len() {
            match code[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = code[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

/// `SystemTime::now` / `Instant::now` call sites.
fn wall_clock_sites(code: &[&Tok]) -> Vec<(u32, &'static str)> {
    let mut sites = Vec::new();
    for i in 0..code.len().saturating_sub(2) {
        let (a, b, c) = (code[i], code[i + 1], code[i + 2]);
        if b.text == "::" && c.text == "now" {
            if a.text == "SystemTime" {
                sites.push((c.line, "SystemTime"));
            } else if a.text == "Instant" {
                sites.push((c.line, "Instant"));
            }
        }
    }
    sites
}

/// Ambient-entropy call sites (`thread_rng`, `OsRng`, `from_entropy`,
/// `getrandom`, `rand::random`).
fn ambient_entropy_sites(code: &[&Tok]) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom" => {
                sites.push((t.line, t.text.clone()));
            }
            "random" if i >= 2 && code[i - 1].text == "::" && code[i - 2].text == "rand" => {
                sites.push((t.line, "rand::random".to_string()));
            }
            _ => {}
        }
    }
    sites
}

/// `std::sync::Mutex` / `std::sync::RwLock` mentions, including grouped
/// imports (`use std::sync::{Arc, Mutex}`).
fn std_sync_lock_sites(code: &[&Tok]) -> Vec<(u32, &'static str)> {
    let mut sites = Vec::new();
    for i in 0..code.len().saturating_sub(4) {
        let path_is_std_sync = code[i].text == "std"
            && code[i + 1].text == "::"
            && code[i + 2].text == "sync"
            && code[i + 3].text == "::";
        if !path_is_std_sync {
            continue;
        }
        let next = code[i + 4];
        match next.text.as_str() {
            "Mutex" => sites.push((next.line, "Mutex")),
            "RwLock" => sites.push((next.line, "RwLock")),
            "{" => {
                // Grouped import: scan to the matching `}`.
                let mut j = i + 5;
                let mut depth = 1i32;
                while j < code.len() && depth > 0 {
                    match code[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "Mutex" if depth == 1 => sites.push((code[j].line, "Mutex")),
                        "RwLock" if depth == 1 => sites.push((code[j].line, "RwLock")),
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }
    sites
}

/// `.lock().unwrap()` / `.read().expect(..)`-style poison handling.
fn lock_poison_sites(code: &[&Tok]) -> Vec<(u32, String, String)> {
    let mut sites = Vec::new();
    for i in 0..code.len().saturating_sub(6) {
        let m = code[i + 1];
        let h = code[i + 5];
        let shape = code[i].text == "."
            && m.kind == TokKind::Ident
            && matches!(m.text.as_str(), "lock" | "read" | "write" | "try_lock")
            && code[i + 2].text == "("
            && code[i + 3].text == ")"
            && code[i + 4].text == "."
            && h.kind == TokKind::Ident
            && matches!(h.text.as_str(), "unwrap" | "expect")
            && code.get(i + 6).is_some_and(|n| n.text == "(");
        if shape {
            sites.push((h.line, m.text.clone(), h.text.clone()));
        }
    }
    sites
}

/// Recursively collects `.rs` files under `dir` into `out` (workspace-
/// relative paths), skipping excluded directories.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" || name == "vendor" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every `.rs` file under
/// `src/` and `crates/` (vendor/, target/, fixture corpora excluded),
/// with the allowlist read from `<root>/analyze-allowlist.txt` when
/// present.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let allowlist = match std::fs::read_to_string(root.join("analyze-allowlist.txt")) {
        Ok(text) => Allowlist::parse(&text).map_err(std::io::Error::other)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(e),
    };

    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    files.sort_unstable();

    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        diagnostics.extend(lint_file(&rel, &src, &allowlist));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(LintReport {
        diagnostics,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
        lint_file(rel, src, &Allowlist::default())
    }

    const DET: &str = "crates/core/src/x.rs";

    #[test]
    fn flags_unordered_values_iteration() {
        let src = "
struct S { m: HashMap<u64, u64> }
impl S {
    fn f(&self) -> Vec<u64> { self.m.values().copied().collect() }
}";
        let d = lint(DET, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unordered_iter");
    }

    #[test]
    fn sorted_collect_and_order_free_reducers_are_exempt() {
        let src = "
struct S { m: HashMap<u64, u64> }
impl S {
    fn count(&self) -> usize { self.m.values().filter(|v| **v > 0).count() }
    fn sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.m.keys().copied().collect();
        v.sort_unstable();
        v
    }
}";
        assert!(lint(DET, src).is_empty());
    }

    #[test]
    fn float_fold_is_classified_separately() {
        let src = "
struct S { m: HashMap<u64, f64> }
impl S {
    fn total(&self) -> f64 { self.m.values().sum::<f64>() }
}";
        let d = lint(DET, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unordered_float_fold");
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged_and_annotation_clears_it() {
        let flagged = "
fn f(m: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (_k, v) in m.iter() { acc += v; }
    acc
}";
        let d = lint(DET, flagged);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unordered_iter");

        let allowed = "
fn f(m: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    // flstore: allow(unordered_iter, integer sum is order-independent)
    for (_k, v) in m.iter() { acc += v; }
    acc
}";
        assert!(lint(DET, allowed).is_empty());
    }

    #[test]
    fn determinism_rules_skip_other_crates_and_test_mods() {
        let src = "
struct S { m: HashMap<u64, u64> }
impl S { fn f(&self) -> Vec<u64> { self.m.values().copied().collect() } }";
        assert!(lint("crates/bench/src/x.rs", src).is_empty());

        let test_mod = "
#[cfg(test)]
mod tests {
    struct S { m: HashMap<u64, u64> }
    impl S { fn f(&self) -> Vec<u64> { self.m.values().copied().collect() } }
}";
        assert!(lint(DET, test_mod).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy_fire_workspace_wide() {
        let src = "
fn f() {
    let t = std::time::Instant::now();
    let s = SystemTime::now();
    let r = rand::random::<u64>();
    let g = thread_rng();
}";
        let d = lint("crates/trace/src/x.rs", src);
        let rules: Vec<&str> = d.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(
            rules,
            [
                "wall_clock",
                "wall_clock",
                "ambient_entropy",
                "ambient_entropy"
            ],
            "{d:?}"
        );
    }

    #[test]
    fn std_sync_lock_and_poison_patterns_fire() {
        let src = "
use std::sync::{Arc, Mutex};
fn f(m: &std::sync::RwLock<u64>) {
    let g = m.read().unwrap();
    let h = m.write().expect(\"poisoned\");
}";
        let d = lint("crates/exec/tests/x.rs", src);
        let rules: Vec<&str> = d.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(
            rules,
            [
                "std_sync_lock",
                "std_sync_lock",
                "lock_poison",
                "lock_poison"
            ],
            "{d:?}"
        );
    }

    #[test]
    fn allowlist_suppresses_by_path_prefix() {
        let list = Allowlist::parse("wall_clock crates/bench/src/ measures real latency").unwrap();
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint_file("crates/bench/src/inventory.rs", src, &list).is_empty());
        assert_eq!(lint_file("crates/core/src/x.rs", src, &list).len(), 1);
    }

    #[test]
    fn min_by_key_is_not_an_exempting_reducer() {
        // The PR 3 tie-break bug shape: keyed min over hash iteration is
        // only deterministic if the key is a total order — demand a sort
        // or an annotation.
        let src = "
struct S { m: HashMap<u64, u64> }
impl S {
    fn pick(&self) -> Option<u64> { self.m.iter().min_by_key(|(_, v)| **v).map(|(k, _)| *k) }
}";
        let d = lint(DET, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unordered_iter");
    }
}
