//! `flstore-analyze`: correctness tooling for the FLStore workspace.
//!
//! A source-level determinism lint (token scanning, no rustc internals)
//! that enforces the invariants the serving plane's byte-diff gate relies
//! on: no hash-ordered iteration feeding results, no wall-clock or ambient
//! entropy outside the bench allowlist, and the vendored `parking_lot`
//! (non-poisoning, lock-order instrumentable) everywhere `std::sync`
//! locks would otherwise creep in.
//!
//! Run it with `cargo run -p flstore-analyze -- lint` (add `--json` for
//! machine output); `--list-rules` prints the rule inventory that
//! `scripts/check_analyze_rules.sh` diffs against the README.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lint;
pub mod rules;
pub mod tokenizer;

pub use lint::{lint_file, lint_workspace, Diagnostic, LintReport};
