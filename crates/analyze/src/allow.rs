//! The two allow mechanisms: inline `// flstore: allow(<rule>, <reason>)`
//! annotations parsed out of comment tokens, and the checked-in path
//! allowlist file (`analyze-allowlist.txt` at the workspace root — the
//! explicit bench/overhead allowlist the wall-clock rule refers to).
//!
//! Both demand a reason: an annotation without one, or an allowlist line
//! without a justification, is itself a violation — suppressions must
//! explain themselves to the next reader.

use crate::rules;
use crate::tokenizer::{Tok, TokKind};

/// One parsed inline annotation.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    /// The rule being allowed.
    pub rule: String,
    /// Lines this annotation covers: its own line (trailing comment) and
    /// the next code line (standalone comment above the site).
    pub lines: Vec<u32>,
}

/// A malformed annotation (unknown rule, missing reason, bad syntax).
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// Line of the offending comment.
    pub line: u32,
    /// Why it is rejected.
    pub why: String,
}

/// Extracts `flstore: allow(...)` annotations from a token stream.
/// `toks` must be the full stream (comments included).
pub fn collect_inline_allows(toks: &[Tok]) -> (Vec<InlineAllow>, Vec<BadAnnotation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Comment {
            continue;
        }
        let Some(at) = tok.text.find("flstore:") else {
            continue;
        };
        let rest = tok.text[at + "flstore:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad.push(BadAnnotation {
                line: tok.line,
                why: format!(
                    "unrecognized flstore annotation (expected `flstore: allow(<rule>, <reason>)`): `{}`",
                    rest.chars().take(40).collect::<String>().trim_end()
                ),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push(BadAnnotation {
                line: tok.line,
                why: "unterminated `flstore: allow(` annotation (missing `)`)".to_string(),
            });
            continue;
        };
        let body = &args[..close];
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (body.trim(), ""),
        };
        // Documentation placeholders (`allow(<rule>, <reason>)`,
        // `allow(...)`) describe the syntax; they are not annotations.
        if rule.starts_with('<') || rule == "..." {
            continue;
        }
        if rules::rule_by_id(rule).is_none() {
            bad.push(BadAnnotation {
                line: tok.line,
                why: format!("`flstore: allow({rule}, ...)` names an unknown rule"),
            });
            continue;
        }
        if reason.is_empty() {
            bad.push(BadAnnotation {
                line: tok.line,
                why: format!(
                    "`flstore: allow({rule})` has no reason — suppressions must explain themselves"
                ),
            });
            continue;
        }
        // The annotation covers its own line (trailing position) and, when
        // it stands alone above a site, every line of the statement that
        // follows (chained calls split across lines included): scan from
        // the next code token to the statement's `;` / block `{`.
        let mut lines = vec![tok.line];
        // Trailing position (code precedes the comment on its own line):
        // the annotation covers that line only.
        let trailing = toks[..i]
            .iter()
            .rev()
            .find(|t| t.kind != TokKind::Comment)
            .is_some_and(|t| t.line == tok.line);
        if trailing {
            allows.push(InlineAllow {
                rule: rule.to_string(),
                lines,
            });
            continue;
        }
        let mut depth = 0i32;
        let mut scanned = 0usize;
        for t in toks[i + 1..].iter().filter(|t| t.kind != TokKind::Comment) {
            if !lines.contains(&t.line) {
                lines.push(t.line);
            }
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" | "{" if depth <= 0 => break,
                _ => {}
            }
            scanned += 1;
            if scanned > 120 {
                break;
            }
        }
        allows.push(InlineAllow {
            rule: rule.to_string(),
            lines,
        });
    }
    (allows, bad)
}

/// Returns true when an inline annotation covers `rule` at `line`.
pub fn inline_allowed(allows: &[InlineAllow], rule: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == rule && a.lines.contains(&line))
}

/// One line of the checked-in path allowlist.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule being allowed.
    pub rule: String,
    /// Workspace-relative path prefix the allowance covers.
    pub prefix: String,
    /// Required justification (kept for reporting).
    pub reason: String,
}

/// The parsed allowlist file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Format, one entry per line:
    /// `<rule> <path-prefix> <reason...>`; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default().to_string();
            let prefix = parts.next().unwrap_or_default().trim().to_string();
            let reason = parts.next().unwrap_or_default().trim().to_string();
            if rules::rule_by_id(&rule).is_none() {
                return Err(format!(
                    "allowlist line {}: unknown rule `{rule}`",
                    lineno + 1
                ));
            }
            if prefix.is_empty() {
                return Err(format!(
                    "allowlist line {}: missing path prefix",
                    lineno + 1
                ));
            }
            if reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: `{rule} {prefix}` has no justification",
                    lineno + 1
                ));
            }
            entries.push(AllowEntry {
                rule,
                prefix,
                reason,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Returns true when `rule` is allowed for workspace-relative `file`.
    pub fn allows(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && file.starts_with(e.prefix.as_str()))
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the allowlist carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn trailing_and_standalone_annotations_cover_the_right_lines() {
        let src = "\
// flstore: allow(wall_clock, timing the bench itself)
let t = Instant::now();
let u = 1; // flstore: allow(unordered_iter, integer count)
";
        let (allows, bad) = collect_inline_allows(&tokenize(src));
        assert!(bad.is_empty(), "{bad:?}");
        assert!(inline_allowed(&allows, "wall_clock", 2));
        assert!(inline_allowed(&allows, "unordered_iter", 3));
        assert!(!inline_allowed(&allows, "wall_clock", 3));
    }

    #[test]
    fn documentation_placeholders_are_not_annotations() {
        let src = "\
// syntax is `flstore: allow(<rule>, <reason>)`
// or just `flstore: allow(...)` in prose
";
        let (allows, bad) = collect_inline_allows(&tokenize(src));
        assert!(allows.is_empty());
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_bad_annotations() {
        let src = "\
// flstore: allow(wall_clock)
// flstore: allow(no_such_rule, whatever)
// flstore: disallow(everything)
";
        let (allows, bad) = collect_inline_allows(&tokenize(src));
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 3);
        assert!(bad[0].why.contains("no reason"));
        assert!(bad[1].why.contains("unknown rule"));
        assert!(bad[2].why.contains("unrecognized"));
    }

    #[test]
    fn allowlist_parses_and_matches_prefixes() {
        let text = "\
# comment
wall_clock crates/bench/src/inventory.rs measures real operation latency
";
        let list = Allowlist::parse(text).expect("valid");
        assert_eq!(list.len(), 1);
        assert!(list.allows("wall_clock", "crates/bench/src/inventory.rs"));
        assert!(!list.allows("wall_clock", "crates/core/src/store.rs"));
        assert!(!list.allows("ambient_entropy", "crates/bench/src/inventory.rs"));
    }

    #[test]
    fn allowlist_rejects_unjustified_or_unknown_lines() {
        assert!(Allowlist::parse("wall_clock crates/bench/src/x.rs").is_err());
        assert!(Allowlist::parse("bogus_rule crates/x some reason").is_err());
    }
}
