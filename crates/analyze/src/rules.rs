//! The rule inventory. `flstore-analyze -- --list-rules` prints this
//! table and `scripts/check_analyze_rules.sh` diffs it against the README
//! so the documentation can never drift from the binary.

/// Where a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the determinism-critical crates' `src/` trees (core, fl,
    /// exec, workloads, baselines), skipping `#[cfg(test)]` modules.
    DeterminismCrates,
    /// Every linted file in the workspace (vendor/ excluded).
    Workspace,
}

impl Scope {
    /// Stable string used in `--list-rules` output and the README table.
    pub fn as_str(self) -> &'static str {
        match self {
            Scope::DeterminismCrates => "determinism-crates",
            Scope::Workspace => "workspace",
        }
    }
}

/// One lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier, used in diagnostics and `allow(...)` annotations.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: Scope,
    /// One-line summary (the README table's "what it flags" column).
    pub summary: &'static str,
}

/// Unordered `HashMap`/`HashSet` iteration in determinism crates.
pub const UNORDERED_ITER: &str = "unordered_iter";
/// Float accumulation folded over an unordered iterator.
pub const UNORDERED_FLOAT_FOLD: &str = "unordered_float_fold";
/// `SystemTime::now` / `Instant::now` outside the bench/overhead allowlist.
pub const WALL_CLOCK: &str = "wall_clock";
/// Ambient entropy (`thread_rng`, `OsRng`, `from_entropy`, ...).
pub const AMBIENT_ENTROPY: &str = "ambient_entropy";
/// `std::sync::Mutex`/`RwLock` where vendored `parking_lot` is mandated.
pub const STD_SYNC_LOCK: &str = "std_sync_lock";
/// `.lock().unwrap()`-style poison handling on a lock guard.
pub const LOCK_POISON: &str = "lock_poison";
/// Malformed `flstore: allow(...)` annotation (unknown rule / no reason).
pub const BAD_ANNOTATION: &str = "bad_annotation";

/// Every rule the linter knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: UNORDERED_ITER,
        scope: Scope::DeterminismCrates,
        summary: "HashMap/HashSet iteration (for/.iter()/.keys()/.values()/.drain()/.retain()) \
                  with no adjacent sort and no order-independent reduction",
    },
    Rule {
        id: UNORDERED_FLOAT_FOLD,
        scope: Scope::DeterminismCrates,
        summary: "f64 sum/fold/product over an unordered hash iterator \
                  (floating-point addition is not associative)",
    },
    Rule {
        id: WALL_CLOCK,
        scope: Scope::Workspace,
        summary: "SystemTime::now / Instant::now outside the bench/overhead allowlist",
    },
    Rule {
        id: AMBIENT_ENTROPY,
        scope: Scope::Workspace,
        summary: "ambient randomness (thread_rng, OsRng, from_entropy, rand::random) \
                  instead of the seeded DetRng streams",
    },
    Rule {
        id: STD_SYNC_LOCK,
        scope: Scope::Workspace,
        summary: "std::sync::Mutex / std::sync::RwLock where the vendored parking_lot \
                  (lock-order instrumentable, non-poisoning) is mandated",
    },
    Rule {
        id: LOCK_POISON,
        scope: Scope::Workspace,
        summary: ".lock()/.read()/.write() followed by .unwrap()/.expect() — \
                  poison handling that parking_lot makes unrepresentable",
    },
    Rule {
        id: BAD_ANNOTATION,
        scope: Scope::Workspace,
        summary: "flstore: allow(...) annotation naming an unknown rule or missing its reason",
    },
];

/// Looks a rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// The `--list-rules` inventory: one `id\tscope\tsummary` line per rule.
pub fn inventory() -> String {
    let mut out = String::new();
    for rule in RULES {
        out.push_str(rule.id);
        out.push('\t');
        out.push_str(rule.scope.as_str());
        out.push('\t');
        // Collapse the multi-line summary whitespace.
        let summary: Vec<&str> = rule.summary.split_whitespace().collect();
        out.push_str(&summary.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_kebab_free() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in RULES {
            assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
            assert!(
                rule.id.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "rule ids are snake_case: {}",
                rule.id
            );
        }
    }

    #[test]
    fn inventory_is_tab_separated_with_one_row_per_rule() {
        let inv = inventory();
        let rows: Vec<&str> = inv.lines().collect();
        assert_eq!(rows.len(), RULES.len());
        for row in rows {
            assert_eq!(row.split('\t').count(), 3, "bad row: {row}");
        }
    }
}
