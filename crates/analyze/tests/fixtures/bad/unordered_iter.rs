// Fixture: every hash-ordered iteration shape the lint must flag.
use std::collections::{HashMap, HashSet};

pub fn keys_in_hash_order(map: &HashMap<u64, u64>) -> Vec<u64> {
    map.keys().copied().collect()
}

pub fn drain_leaks_order(set: &mut HashSet<u64>) -> Vec<u64> {
    set.drain().collect()
}

pub fn for_loop_order_dependent(map: &HashMap<u64, u64>) -> u64 {
    let mut last = 0;
    for (_k, v) in map.iter() {
        last = *v;
    }
    last
}

pub fn keyed_min_needs_total_order(map: &HashMap<u64, u64>) -> Option<u64> {
    map.iter().min_by_key(|(_, v)| **v).map(|(k, _)| *k)
}
