// Fixture: ambient randomness — everything must come from seeded streams.
pub fn roll() -> u64 {
    let mut rng = thread_rng();
    let direct: u64 = rand::random();
    let seeded_wrong = SmallRng::from_entropy();
    direct
}
