// Fixture: wall-clock reads outside the allowlist.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let mono = Instant::now();
    let wall = std::time::SystemTime::now();
    (mono, wall)
}
