// Fixture: float accumulation over hash iteration — the rule must pick
// the sharper `unordered_float_fold` id, not plain `unordered_iter`.
use std::collections::HashMap;

pub struct Metrics {
    pub losses: HashMap<u64, f64>,
}

impl Metrics {
    pub fn total(&self) -> f64 {
        self.losses.values().sum::<f64>()
    }

    pub fn folded(&self) -> f64 {
        self.losses.values().fold(0.0, |acc, l| acc + l)
    }
}
