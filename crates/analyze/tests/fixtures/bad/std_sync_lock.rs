// Fixture: std::sync locks and poison handling where parking_lot is
// mandated.
use std::sync::{Arc, Mutex, RwLock};

pub fn locked(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

pub fn read(rw: &Arc<RwLock<u64>>) -> u64 {
    *rw.read().expect("not poisoned")
}
