// Fixture: malformed suppressions are themselves violations.
// flstore: allow(wall_clock)
pub fn missing_reason() {}

// flstore: allow(no_such_rule, with a reason)
pub fn unknown_rule() {}
