// Fixture: determinism-crate code the lint must stay silent on — sorted
// boundaries, order-independent reductions, ordered containers, and a
// justified suppression.
use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Caches {
    pub sizes: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
    pub ordered: BTreeMap<u64, u64>,
}

impl Caches {
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.sizes.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    pub fn live(&self) -> usize {
        self.sizes.values().filter(|v| **v > 0).count()
    }

    pub fn holds(&self, k: u64) -> bool {
        self.seen.contains(&k)
    }

    pub fn ordered_walk(&self) -> Vec<u64> {
        self.ordered.values().copied().collect()
    }

    pub fn biggest(&self) -> Option<u64> {
        self.sizes.values().copied().max()
    }

    pub fn integer_total(&self) -> u64 {
        // flstore: allow(unordered_iter, integer addition commutes; the sum is order-free)
        self.sizes.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_iterate_freely() {
        let c = Caches {
            sizes: HashMap::new(),
            seen: HashSet::new(),
            ordered: BTreeMap::new(),
        };
        for v in c.sizes.values() {
            let _ = v;
        }
    }
}
