// Fixture: workspace-scope code the lint must stay silent on — vendored
// parking_lot taken directly (no poison handling), simulated time, and
// seeded randomness.
use parking_lot::{Mutex, RwLock};

pub struct Shared {
    counter: Mutex<u64>,
    table: RwLock<Vec<u64>>,
}

impl Shared {
    pub fn bump(&self) -> u64 {
        let mut c = self.counter.lock();
        *c += 1;
        *c
    }

    pub fn snapshot(&self) -> Vec<u64> {
        self.table.read().clone()
    }
}

pub fn seeded_stream(seed: u64) -> u64 {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    rng.next_u64()
}

pub fn simulated_deadline(now: SimTime) -> SimTime {
    now + SimDuration::from_secs(30)
}
