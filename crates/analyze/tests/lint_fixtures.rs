//! The fixture corpus: every rule must fire on its known-bad fixture at
//! exactly the expected lines, stay silent on the known-good fixtures,
//! and — the meta-test — find nothing in the workspace itself.

use std::path::{Path, PathBuf};

use flstore_analyze::allow::Allowlist;
use flstore_analyze::{lint_file, lint_workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel` in the workspace.
fn diags(rel: &str, name: &str) -> Vec<(String, u32)> {
    lint_file(rel, &fixture(name), &Allowlist::default())
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

fn expect(rule: &str, lines: &[u32]) -> Vec<(String, u32)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn unordered_iter_fires_on_every_iteration_shape() {
    assert_eq!(
        diags("crates/core/src/fixture.rs", "bad/unordered_iter.rs"),
        expect("unordered_iter", &[5, 9, 14, 21])
    );
}

#[test]
fn float_folds_get_the_sharper_rule_id() {
    assert_eq!(
        diags("crates/fl/src/fixture.rs", "bad/unordered_float_fold.rs"),
        expect("unordered_float_fold", &[11, 15])
    );
}

#[test]
fn determinism_rules_do_not_apply_outside_their_crates() {
    // The same hash-iteration fixture is silent when it lives in a crate
    // that is not determinism-critical (bench, trace, ...).
    assert!(diags("crates/bench/src/fixture.rs", "bad/unordered_iter.rs").is_empty());
}

#[test]
fn wall_clock_fires_without_an_allowlist_entry_and_is_silent_with_one() {
    assert_eq!(
        diags("crates/trace/src/fixture.rs", "bad/wall_clock.rs"),
        expect("wall_clock", &[5, 6])
    );
    let list =
        Allowlist::parse("wall_clock crates/bench/src/ the overhead bench measures real latency")
            .expect("valid allowlist");
    assert!(lint_file(
        "crates/bench/src/fixture.rs",
        &fixture("bad/wall_clock.rs"),
        &list
    )
    .is_empty());
}

#[test]
fn ambient_entropy_fires_on_every_source() {
    assert_eq!(
        diags("crates/workloads/src/fixture.rs", "bad/ambient_entropy.rs"),
        expect("ambient_entropy", &[3, 4, 5])
    );
}

#[test]
fn std_locks_and_poison_handling_fire_in_tests_too() {
    assert_eq!(
        diags("crates/exec/tests/fixture.rs", "bad/std_sync_lock.rs"),
        vec![
            ("std_sync_lock".to_string(), 3),
            ("std_sync_lock".to_string(), 5),
            ("lock_poison".to_string(), 6),
            ("lock_poison".to_string(), 10),
        ]
    );
}

#[test]
fn malformed_annotations_are_violations() {
    assert_eq!(
        diags("crates/core/src/fixture.rs", "bad/bad_annotation.rs"),
        expect("bad_annotation", &[2, 5])
    );
}

#[test]
fn known_good_fixtures_are_silent() {
    assert_eq!(
        diags("crates/core/src/fixture.rs", "good/clean_determinism.rs"),
        Vec::<(String, u32)>::new()
    );
    assert_eq!(
        diags("crates/exec/src/fixture.rs", "good/clean_workspace.rs"),
        Vec::<(String, u32)>::new()
    );
}

#[test]
fn diagnostics_serialize_for_the_json_mode() {
    let report = lint_file(
        "crates/trace/src/fixture.rs",
        &fixture("bad/wall_clock.rs"),
        &Allowlist::default(),
    );
    let json = serde_json::to_string(&report).expect("serializable");
    assert!(json.contains("\"rule\":\"wall_clock\""), "{json}");
    assert!(json.contains("\"line\":5"), "{json}");
    assert!(json.contains("crates/trace/src/fixture.rs"), "{json}");
}

/// The meta-test: the workspace itself must be clean under its own lint —
/// with the checked-in allowlist, through the exact code path the CI
/// `analyze` step runs.
#[test]
fn the_workspace_itself_is_lint_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk really covered the tree (105 files at the time of
    // writing; only ever grows).
    assert!(report.files_scanned >= 100, "{}", report.files_scanned);
}
