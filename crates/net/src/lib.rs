//! # flstore-net — the network serving plane
//!
//! Puts the [`flstore_core::api::Service`] trait behind a real socket: a
//! length-prefixed binary wire protocol (`docs/WIRE.md`) framing the
//! existing typed [`Request`](flstore_core::api::Request) /
//! [`Response`](flstore_core::api::Response) envelopes, a threaded TCP
//! accept loop with per-connection pipelining, and backpressure that
//! surfaces as typed
//! [`ApiError::Overloaded`](flstore_core::api::ApiError::Overloaded)
//! envelopes — never drops or connection resets.
//!
//! ```text
//!  clients (flstore-loadgen, NetClient)
//!     │  frames: [version][tag][len][payload]
//!     ▼
//!  accept loop ──conn semaphore──▶ reader thread (per connection)
//!                                     │ decode + seq stamp
//!                                     ▼
//!                               engine thread (owns the Service,
//!                               arrival-window batcher → submit_batch)
//!                                     │
//!                                     ▼
//!                               writer thread (per connection,
//!                               submission-order merge by seq)
//! ```
//!
//! The engine can own any `Service` — including a
//! [`flstore_exec::ShardedExecutor`], giving the front door a concurrent
//! sharded backend whose responses are already merged back into
//! submission order.
//!
//! A complete round-trip over an ephemeral port:
//!
//! ```
//! use flstore_core::api::{Request, Response};
//! use flstore_core::policy::TailoredPolicy;
//! use flstore_core::store::{FlStore, FlStoreConfig};
//! use flstore_fl::ids::JobId;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_net::client::NetClient;
//! use flstore_net::server::{NetServer, ServerConfig};
//! use flstore_sim::time::SimTime;
//! use std::sync::Arc;
//!
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! let server = NetServer::bind(Box::new(store), ServerConfig::default()).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let record = FlJobSim::new(cfg.clone()).next().expect("rounds");
//! let response = client
//!     .call(
//!         SimTime::ZERO,
//!         &Request::Ingest { job: cfg.job, record: Arc::new(record) },
//!     )
//!     .unwrap();
//! assert!(matches!(response, Response::Ingested(r) if r.cached > 0));
//! drop(client);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod codec;
pub mod server;
pub mod wire;
