//! Frame layer: version byte, frame tags, varints, and typed decode
//! errors.
//!
//! Every message on a connection is one *frame*:
//!
//! ```text
//! +---------+---------+-------------------+------------------+
//! | version | tag     | payload length    | payload          |
//! | 1 byte  | 1 byte  | varint (LEB128)   | `length` bytes   |
//! +---------+---------+-------------------+------------------+
//! ```
//!
//! The payload encoding per tag lives in [`crate::codec`]; the normative
//! spec is `docs/WIRE.md`, whose tag table is machine-checked against
//! [`FRAMES`] in CI (`scripts/check_wire_doc.sh`).
//!
//! Decoding is total: malformed input of any shape — truncated streams,
//! oversized length prefixes, unknown tags, overlong varints — surfaces
//! as a typed [`WireError`], never a panic (`#![forbid(unsafe_code)]`
//! holds for the whole crate).

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried as the first byte of every frame. Bumped on
/// any incompatible change to the frame layout or payload encodings.
pub const WIRE_VERSION: u8 = 2;

/// Hard bound on a frame's payload length. A length prefix above this is
/// rejected as [`WireError::Oversized`] *before* any allocation, so a
/// corrupt or hostile length cannot balloon memory.
pub const MAX_FRAME_LEN: u64 = 64 * 1024 * 1024;

/// Frame tag: `Ingest` request (a full round record for one job).
pub const TAG_INGEST: u8 = 0x01;
/// Frame tag: `Serve` request (one non-training workload request).
pub const TAG_SERVE: u8 = 0x02;
/// Frame tag: `Evict` request (drop one cached object by key).
pub const TAG_EVICT: u8 = 0x03;
/// Frame tag: `Stats` request (telemetry probe; a batch barrier).
pub const TAG_STATS: u8 = 0x04;
/// Frame tag: `Ingested` response (receipt for an `Ingest`).
pub const TAG_INGESTED: u8 = 0x81;
/// Frame tag: `Served` response (workload output + measured outcome).
pub const TAG_SERVED: u8 = 0x82;
/// Frame tag: `Evicted` response (whether the key was cached).
pub const TAG_EVICTED: u8 = 0x83;
/// Frame tag: `StatsReport` response (telemetry snapshot).
pub const TAG_STATS_REPORT: u8 = 0x84;
/// Frame tag: `Rejected` response (typed [`flstore_core::api::ApiError`]
/// envelope — admission rejections, workload failures, and overload
/// backpressure all arrive here, never as drops or resets).
pub const TAG_REJECTED: u8 = 0x85;

/// The frame inventory: `(tag, name, direction, summary)` for every tag
/// the protocol defines. `flstore-net --list-frames` prints this table;
/// `scripts/check_wire_doc.sh` diffs it against the tag table in
/// `docs/WIRE.md` so the spec cannot drift from the implementation.
pub const FRAMES: &[(u8, &str, &str, &str)] = &[
    (
        TAG_INGEST,
        "Ingest",
        "request",
        "ingest one round record for a job",
    ),
    (
        TAG_SERVE,
        "Serve",
        "request",
        "serve one non-training workload request",
    ),
    (
        TAG_EVICT,
        "Evict",
        "request",
        "evict one cached object by metadata key",
    ),
    (
        TAG_STATS,
        "Stats",
        "request",
        "telemetry probe; acts as a batch barrier",
    ),
    (
        TAG_INGESTED,
        "Ingested",
        "response",
        "ingest receipt (cached/evicted/backed-up/denied counts)",
    ),
    (
        TAG_SERVED,
        "Served",
        "response",
        "workload output plus measured latency/cost outcome",
    ),
    (
        TAG_EVICTED,
        "Evicted",
        "response",
        "eviction acknowledgement (whether the key was cached)",
    ),
    (
        TAG_STATS_REPORT,
        "StatsReport",
        "response",
        "telemetry snapshot (hit rates, faults, per-tenant quota)",
    ),
    (
        TAG_REJECTED,
        "Rejected",
        "response",
        "typed ApiError envelope, including Overloaded backpressure",
    ),
];

/// A typed wire failure. Every way a frame or payload can be malformed
/// maps to a variant here; decode never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The bound it exceeded.
        max: u64,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The frame tag is not in [`FRAMES`].
    UnknownTag(u8),
    /// A varint ran past its maximum width (10 bytes for a `u64`).
    VarintOverflow,
    /// The payload decoded, but bytes were left over.
    TrailingBytes {
        /// How many bytes remained unconsumed.
        remaining: usize,
    },
    /// The payload violated a documented invariant (bad enum tag, invalid
    /// UTF-8, a non-finite cost, a P3 request without a target client,
    /// ...). The message names the field.
    Malformed(&'static str),
    /// The underlying socket failed. Only the [`std::io::ErrorKind`] is
    /// kept so the error stays comparable in tests.
    Io(io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream truncated inside a frame"),
            WireError::Oversized { declared, max } => {
                write!(f, "frame length {declared} exceeds the {max}-byte bound")
            }
            WireError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::VarintOverflow => write!(f, "varint wider than 10 bytes"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the payload")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => WireError::Truncated,
            kind => WireError::Io(kind),
        }
    }
}

/// Appends `v` as an unsigned LEB128 varint (7 bits per byte, little
/// endian, high bit = continuation). At most 10 bytes for a `u64`.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A bounds-checked cursor over a received payload. All reads return
/// [`WireError::Truncated`] past the end instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless the payload was
    /// consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        for i in 0..10 {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            // The 10th byte may only carry the u64's single remaining bit.
            if i == 9 && bits > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads a varint and narrows it to `usize`, bounds-checked against
    /// [`MAX_FRAME_LEN`] (a length inside a payload can never legitimately
    /// exceed the frame bound).
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let v = self.varint()?;
        if v > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                declared: v,
                max: MAX_FRAME_LEN,
            });
        }
        usize::try_from(v).map_err(|_| WireError::Oversized {
            declared: v,
            max: MAX_FRAME_LEN,
        })
    }
}

/// Writes one frame: version, tag, varint payload length, payload.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut header = Vec::with_capacity(12);
    header.push(WIRE_VERSION);
    header.push(tag);
    put_varint(&mut header, payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame, returning `(tag, payload)`.
///
/// A clean EOF *between* frames returns `Ok(None)` (the peer closed the
/// connection at a frame boundary); EOF *inside* a frame is
/// [`WireError::Truncated`]. The length prefix is validated against
/// [`MAX_FRAME_LEN`] before the payload is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut version = [0u8; 1];
    // EOF before the first byte of a frame is a clean close.
    match r.read(&mut version) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    if version[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(version[0]));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    if !FRAMES.iter().any(|&(t, _, _, _)| t == tag[0]) {
        return Err(WireError::UnknownTag(tag[0]));
    }

    // Length varint, byte by byte (we cannot over-read from a stream).
    let mut declared: u64 = 0;
    let mut done = false;
    for i in 0..10 {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let bits = u64::from(byte[0] & 0x7f);
        if i == 9 && bits > 1 {
            return Err(WireError::VarintOverflow);
        }
        declared |= bits << (7 * i);
        if byte[0] & 0x80 == 0 {
            done = true;
            break;
        }
    }
    if !done {
        return Err(WireError::VarintOverflow);
    }
    if declared > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes can never be a valid u64 varint.
        let buf = [0x80u8; 11];
        assert_eq!(Reader::new(&buf).varint(), Err(WireError::VarintOverflow));
        // A 10th byte carrying more than the one remaining bit overflows.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(Reader::new(&buf).varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_STATS, b"xyz").unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(tag, TAG_STATS);
        assert_eq!(payload, b"xyz");
    }

    #[test]
    fn eof_between_frames_is_clean() {
        assert_eq!(read_frame(&mut [].as_slice()).unwrap(), None);
    }

    #[test]
    fn eof_inside_frame_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_STATS, &[7u8; 32]).unwrap();
        buf.truncate(buf.len() - 5);
        assert_eq!(read_frame(&mut buf.as_slice()), Err(WireError::Truncated));
    }

    #[test]
    fn bad_version_and_unknown_tag_are_typed() {
        assert_eq!(
            read_frame(&mut [9u8, TAG_STATS, 0].as_slice()),
            Err(WireError::BadVersion(9))
        );
        assert_eq!(
            read_frame(&mut [WIRE_VERSION, 0x7f, 0].as_slice()),
            Err(WireError::UnknownTag(0x7f))
        );
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![WIRE_VERSION, TAG_STATS];
        put_varint(&mut buf, MAX_FRAME_LEN + 1);
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Oversized {
                declared: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN,
            })
        );
    }
}
