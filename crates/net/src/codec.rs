//! Payload codec: the binary encoding of [`Request`] and [`Response`]
//! envelopes, field for field.
//!
//! The encoding is hand-rolled and canonical — the same envelope always
//! produces the same bytes, so encode→decode→encode is byte-exact
//! (property-tested in `tests/roundtrip.rs`) and the figures harness can
//! checksum response payloads under the byte-diff determinism gate.
//!
//! Primitives (normative spec: `docs/WIRE.md`):
//!
//! * integers and lengths — unsigned LEB128 varints;
//! * `f64`/`f32` — IEEE-754 bits, little endian (bit-exact, no
//!   formatting round-trip);
//! * `bool` — one byte, `0` or `1` (anything else is malformed);
//! * `Option<T>` — one presence byte (`0`/`1`) then `T`;
//! * `String` / `Vec<T>` — varint count then elements;
//! * enums — one tag byte in declaration order.
//!
//! Decoding is *validating*: every invariant the in-process types
//! enforce by construction (finite non-negative costs and work, P3
//! requests carrying a target client, known enum tags, UTF-8 labels) is
//! checked here and surfaces as [`WireError::Malformed`] — a hostile
//! peer cannot reach a panicking constructor.

use std::sync::Arc;

use flstore_cloud::blob::{ObjectKey, StoreError};
use flstore_cloud::compute::WorkUnits;
use flstore_core::api::{ApiError, Request, Response, StatsReport};
use flstore_core::quota::{QuotaPolicy, QuotaUsage, TenantQuota};
use flstore_core::store::{IngestReceipt, ServedRequest};
use flstore_fl::aggregate::AggregateModel;
use flstore_fl::hyperparams::HyperParams;
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::{MetaKey, MetaKind};
use flstore_fl::metrics::{ClientRoundInfo, RoundMetrics};
use flstore_fl::update::{ModelUpdate, UpdateMetrics};
use flstore_fl::weights::WeightVector;
use flstore_serverless::function::FunctionError;
use flstore_serverless::function::FunctionId;
use flstore_serverless::platform::PlatformError;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::latency::LatencyBreakdown;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::outputs::{
    ClusteringOutput, CosineOutput, DebuggingOutput, FilteringOutput, IncentivesOutput,
    InferenceOutput, PersonalizationOutput, ReputationOutput, SchedClusterOutput, SchedPerfOutput,
    WorkloadOutput,
};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::run::{WorkloadError, WorkloadOutcome};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

use crate::wire::{
    put_varint, Reader, WireError, TAG_EVICT, TAG_EVICTED, TAG_INGEST, TAG_INGESTED, TAG_REJECTED,
    TAG_SERVE, TAG_SERVED, TAG_STATS, TAG_STATS_REPORT,
};

/// The closed set of `WorkloadError::MissingInput` details. The wire
/// carries the string; decode interns it through this table (the field is
/// `&'static str` in-process). A detail string added in
/// `flstore-workloads` without a row here fails decode as
/// [`WireError::Malformed`] — loudly, in the round-trip tests.
pub const MISSING_INPUT_WHATS: &[&str] = &[
    "aggregated model",
    "client updates across rounds",
    "round aggregate",
    "round metrics window",
    "round updates",
    "target client",
];

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------------

fn get_f64(r: &mut Reader<'_>) -> Result<f64, WireError> {
    let bytes = r.bytes(8)?;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().expect("8 bytes"),
    )))
}

fn get_f32(r: &mut Reader<'_>) -> Result<f32, WireError> {
    let bytes = r.bytes(4)?;
    Ok(f32::from_bits(u32::from_le_bytes(
        bytes.try_into().expect("4 bytes"),
    )))
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed("bool byte must be 0 or 1")),
    }
}

fn get_u32(r: &mut Reader<'_>) -> Result<u32, WireError> {
    u32::try_from(r.varint()?).map_err(|_| WireError::Malformed("u32 field out of range"))
}

fn get_usize(r: &mut Reader<'_>) -> Result<usize, WireError> {
    usize::try_from(r.varint()?).map_err(|_| WireError::Malformed("usize field out of range"))
}

fn get_str(r: &mut Reader<'_>) -> Result<String, WireError> {
    let n = r.len_prefix()?;
    let bytes = r.bytes(n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string is not UTF-8"))
}

/// A finite, non-negative `f64` — the invariant `Cost::from_dollars` and
/// `WorkUnits::from_ref_seconds` assert. Checked *before* construction so
/// a hostile payload gets a typed error, not a panic.
fn get_nonneg_f64(r: &mut Reader<'_>, what: &'static str) -> Result<f64, WireError> {
    let v = get_f64(r)?;
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(WireError::Malformed(what))
    }
}

fn get_option<T>(
    r: &mut Reader<'_>,
    read: impl FnOnce(&mut Reader<'_>) -> Result<T, WireError>,
) -> Result<Option<T>, WireError> {
    if get_bool(r)? {
        Ok(Some(read(r)?))
    } else {
        Ok(None)
    }
}

fn put_option<T>(buf: &mut Vec<u8>, v: Option<&T>, write: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        Some(v) => {
            put_bool(buf, true);
            write(buf, v);
        }
        None => put_bool(buf, false),
    }
}

fn get_vec<T>(
    r: &mut Reader<'_>,
    mut read: impl FnMut(&mut Reader<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = r.len_prefix()?;
    // Capacity is clamped so a hostile count cannot balloon memory: reads
    // hit `Truncated` long before a fake multi-million count fills in.
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(read(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Ids, time, sizes
// ---------------------------------------------------------------------------

fn put_job(buf: &mut Vec<u8>, job: JobId) {
    put_varint(buf, u64::from(job.as_u32()));
}

fn get_job(r: &mut Reader<'_>) -> Result<JobId, WireError> {
    Ok(JobId::new(get_u32(r)?))
}

fn put_client(buf: &mut Vec<u8>, client: ClientId) {
    put_varint(buf, u64::from(client.as_u32()));
}

fn get_client(r: &mut Reader<'_>) -> Result<ClientId, WireError> {
    Ok(ClientId::new(get_u32(r)?))
}

fn put_round(buf: &mut Vec<u8>, round: Round) {
    put_varint(buf, u64::from(round.as_u32()));
}

fn get_round(r: &mut Reader<'_>) -> Result<Round, WireError> {
    Ok(Round::new(get_u32(r)?))
}

fn put_sim_time(buf: &mut Vec<u8>, t: SimTime) {
    put_varint(buf, t.as_micros());
}

fn get_sim_time(r: &mut Reader<'_>) -> Result<SimTime, WireError> {
    Ok(SimTime::from_micros(r.varint()?))
}

fn put_sim_duration(buf: &mut Vec<u8>, d: SimDuration) {
    put_varint(buf, d.as_micros());
}

fn get_sim_duration(r: &mut Reader<'_>) -> Result<SimDuration, WireError> {
    Ok(SimDuration::from_micros(r.varint()?))
}

fn put_byte_size(buf: &mut Vec<u8>, b: ByteSize) {
    put_varint(buf, b.as_bytes());
}

fn get_byte_size(r: &mut Reader<'_>) -> Result<ByteSize, WireError> {
    Ok(ByteSize::from_bytes(r.varint()?))
}

fn put_cost(buf: &mut Vec<u8>, c: Cost) {
    put_f64(buf, c.as_dollars());
}

fn get_cost(r: &mut Reader<'_>) -> Result<Cost, WireError> {
    Ok(Cost::from_dollars(get_nonneg_f64(
        r,
        "cost must be finite and non-negative",
    )?))
}

// ---------------------------------------------------------------------------
// Enum tags (declaration order)
// ---------------------------------------------------------------------------

fn kind_tag(kind: WorkloadKind) -> u8 {
    match kind {
        WorkloadKind::Personalized => 0,
        WorkloadKind::Clustering => 1,
        WorkloadKind::Debugging => 2,
        WorkloadKind::MaliciousFiltering => 3,
        WorkloadKind::Incentives => 4,
        WorkloadKind::SchedulingCluster => 5,
        WorkloadKind::ReputationCalc => 6,
        WorkloadKind::SchedulingPerf => 7,
        WorkloadKind::CosineSimilarity => 8,
        WorkloadKind::Inference => 9,
    }
}

fn get_kind(r: &mut Reader<'_>) -> Result<WorkloadKind, WireError> {
    Ok(match r.u8()? {
        0 => WorkloadKind::Personalized,
        1 => WorkloadKind::Clustering,
        2 => WorkloadKind::Debugging,
        3 => WorkloadKind::MaliciousFiltering,
        4 => WorkloadKind::Incentives,
        5 => WorkloadKind::SchedulingCluster,
        6 => WorkloadKind::ReputationCalc,
        7 => WorkloadKind::SchedulingPerf,
        8 => WorkloadKind::CosineSimilarity,
        9 => WorkloadKind::Inference,
        _ => return Err(WireError::Malformed("unknown workload kind tag")),
    })
}

fn meta_kind_tag(kind: MetaKind) -> u8 {
    match kind {
        MetaKind::ClientUpdate => 0,
        MetaKind::Aggregate => 1,
        MetaKind::HyperParams => 2,
        MetaKind::RoundMetrics => 3,
    }
}

fn get_meta_kind(r: &mut Reader<'_>) -> Result<MetaKind, WireError> {
    Ok(match r.u8()? {
        0 => MetaKind::ClientUpdate,
        1 => MetaKind::Aggregate,
        2 => MetaKind::HyperParams,
        3 => MetaKind::RoundMetrics,
        _ => return Err(WireError::Malformed("unknown metadata kind tag")),
    })
}

// ---------------------------------------------------------------------------
// FL record types
// ---------------------------------------------------------------------------

fn put_weights(buf: &mut Vec<u8>, w: &WeightVector) {
    let values = w.as_slice();
    put_varint(buf, values.len() as u64);
    for &v in values {
        put_f32(buf, v);
    }
}

fn get_weights(r: &mut Reader<'_>) -> Result<WeightVector, WireError> {
    Ok(WeightVector::from_vec(get_vec(r, get_f32)?))
}

fn put_hyperparams(buf: &mut Vec<u8>, h: &HyperParams) {
    put_round(buf, h.round);
    put_f64(buf, h.learning_rate);
    put_varint(buf, u64::from(h.batch_size));
    put_varint(buf, u64::from(h.local_epochs));
    put_f64(buf, h.momentum);
    put_f64(buf, h.weight_decay);
    put_f64(buf, h.server_lr);
    put_f64(buf, h.sample_fraction);
}

fn get_hyperparams(r: &mut Reader<'_>) -> Result<HyperParams, WireError> {
    Ok(HyperParams {
        round: get_round(r)?,
        learning_rate: get_f64(r)?,
        batch_size: get_u32(r)?,
        local_epochs: get_u32(r)?,
        momentum: get_f64(r)?,
        weight_decay: get_f64(r)?,
        server_lr: get_f64(r)?,
        sample_fraction: get_f64(r)?,
    })
}

fn put_update(buf: &mut Vec<u8>, u: &ModelUpdate) {
    put_job(buf, u.job);
    put_client(buf, u.client);
    put_round(buf, u.round);
    put_weights(buf, &u.weights);
    put_f64(buf, u.metrics.local_loss);
    put_f64(buf, u.metrics.local_accuracy);
    put_f64(buf, u.metrics.train_time_s);
    put_f64(buf, u.metrics.upload_time_s);
    put_varint(buf, u64::from(u.metrics.num_samples));
    put_varint(buf, u64::from(u.metrics.staleness));
    put_bool(buf, u.ground_truth_malicious);
}

fn get_update(r: &mut Reader<'_>) -> Result<ModelUpdate, WireError> {
    Ok(ModelUpdate {
        job: get_job(r)?,
        client: get_client(r)?,
        round: get_round(r)?,
        weights: get_weights(r)?,
        metrics: UpdateMetrics {
            local_loss: get_f64(r)?,
            local_accuracy: get_f64(r)?,
            train_time_s: get_f64(r)?,
            upload_time_s: get_f64(r)?,
            num_samples: get_u32(r)?,
            staleness: get_u32(r)?,
        },
        ground_truth_malicious: get_bool(r)?,
    })
}

fn put_aggregate(buf: &mut Vec<u8>, a: &AggregateModel) {
    put_job(buf, a.job);
    put_round(buf, a.round);
    put_weights(buf, &a.weights);
    put_f64(buf, a.loss);
    put_f64(buf, a.accuracy);
    put_varint(buf, u64::from(a.num_clients));
}

fn get_aggregate(r: &mut Reader<'_>) -> Result<AggregateModel, WireError> {
    Ok(AggregateModel {
        job: get_job(r)?,
        round: get_round(r)?,
        weights: get_weights(r)?,
        loss: get_f64(r)?,
        accuracy: get_f64(r)?,
        num_clients: get_u32(r)?,
    })
}

fn put_client_info(buf: &mut Vec<u8>, c: &ClientRoundInfo) {
    put_client(buf, c.client);
    put_bool(buf, c.available);
    put_bool(buf, c.participated);
    put_bool(buf, c.completed);
    put_f64(buf, c.compute_speed);
    put_f64(buf, c.uplink_mbps);
    put_f64(buf, c.reliability);
    put_f64(buf, c.payout_balance);
    put_varint(buf, u64::from(c.participation_count));
    put_f64(buf, c.last_loss);
}

fn get_client_info(r: &mut Reader<'_>) -> Result<ClientRoundInfo, WireError> {
    Ok(ClientRoundInfo {
        client: get_client(r)?,
        available: get_bool(r)?,
        participated: get_bool(r)?,
        completed: get_bool(r)?,
        compute_speed: get_f64(r)?,
        uplink_mbps: get_f64(r)?,
        reliability: get_f64(r)?,
        payout_balance: get_f64(r)?,
        participation_count: get_u32(r)?,
        last_loss: get_f64(r)?,
    })
}

fn put_round_metrics(buf: &mut Vec<u8>, m: &RoundMetrics) {
    put_round(buf, m.round);
    put_f64(buf, m.global_loss);
    put_f64(buf, m.global_accuracy);
    put_f64(buf, m.training_round_secs);
    put_varint(buf, m.clients.len() as u64);
    for c in &m.clients {
        put_client_info(buf, c);
    }
}

fn get_round_metrics(r: &mut Reader<'_>) -> Result<RoundMetrics, WireError> {
    Ok(RoundMetrics {
        round: get_round(r)?,
        global_loss: get_f64(r)?,
        global_accuracy: get_f64(r)?,
        training_round_secs: get_f64(r)?,
        clients: get_vec(r, get_client_info)?,
    })
}

fn put_record(buf: &mut Vec<u8>, rec: &RoundRecord) {
    put_round(buf, rec.round);
    put_hyperparams(buf, &rec.hyperparams);
    put_varint(buf, rec.updates.len() as u64);
    for u in &rec.updates {
        put_update(buf, u);
    }
    put_aggregate(buf, &rec.aggregate);
    put_round_metrics(buf, &rec.metrics);
}

fn get_record(r: &mut Reader<'_>) -> Result<RoundRecord, WireError> {
    Ok(RoundRecord {
        round: get_round(r)?,
        hyperparams: get_hyperparams(r)?,
        updates: get_vec(r, get_update)?,
        aggregate: get_aggregate(r)?,
        metrics: get_round_metrics(r)?,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

fn put_workload_request(buf: &mut Vec<u8>, w: &WorkloadRequest) {
    put_varint(buf, w.id.as_u64());
    buf.push(kind_tag(w.kind));
    put_job(buf, w.job);
    put_round(buf, w.round);
    put_option(buf, w.client.as_ref(), |b, c| put_client(b, *c));
    put_varint(buf, u64::from(w.window));
}

fn get_workload_request(r: &mut Reader<'_>) -> Result<WorkloadRequest, WireError> {
    let id = RequestId::new(r.varint()?);
    let kind = get_kind(r)?;
    let job = get_job(r)?;
    let round = get_round(r)?;
    let client = get_option(r, get_client)?;
    let window = get_u32(r)?;
    // `WorkloadRequest::new` asserts this; a frame must not reach it.
    if kind.policy_class() == PolicyClass::P3AcrossRounds && client.is_none() {
        return Err(WireError::Malformed(
            "client-tracking (P3) request without a target client",
        ));
    }
    Ok(WorkloadRequest {
        id,
        kind,
        job,
        round,
        client,
        window,
    })
}

fn put_meta_key(buf: &mut Vec<u8>, k: &MetaKey) {
    put_job(buf, k.job);
    put_round(buf, k.round);
    put_option(buf, k.client.as_ref(), |b, c| put_client(b, *c));
    buf.push(meta_kind_tag(k.kind));
}

fn get_meta_key(r: &mut Reader<'_>) -> Result<MetaKey, WireError> {
    Ok(MetaKey {
        job: get_job(r)?,
        round: get_round(r)?,
        client: get_option(r, get_client)?,
        kind: get_meta_kind(r)?,
    })
}

/// Encodes a request envelope stamped at `now`, returning the frame tag
/// and payload. The arrival stamp rides in the payload so the serving
/// results derive from the client-carried virtual clock — wall clock
/// never reaches the store.
pub fn encode_request(now: SimTime, request: &Request) -> (u8, Vec<u8>) {
    let mut buf = Vec::new();
    put_sim_time(&mut buf, now);
    let tag = match request {
        Request::Ingest { job, record } => {
            put_job(&mut buf, *job);
            put_record(&mut buf, record);
            TAG_INGEST
        }
        Request::Serve(w) => {
            put_workload_request(&mut buf, w);
            TAG_SERVE
        }
        Request::Evict(key) => {
            put_meta_key(&mut buf, key);
            TAG_EVICT
        }
        Request::Stats => TAG_STATS,
    };
    (tag, buf)
}

/// Decodes a request frame's payload into its arrival stamp and
/// envelope. The whole payload must be consumed ([`WireError::TrailingBytes`]
/// otherwise).
pub fn decode_request(tag: u8, payload: &[u8]) -> Result<(SimTime, Request), WireError> {
    let mut r = Reader::new(payload);
    let now = get_sim_time(&mut r)?;
    let request = match tag {
        TAG_INGEST => Request::Ingest {
            job: get_job(&mut r)?,
            record: Arc::new(get_record(&mut r)?),
        },
        TAG_SERVE => Request::Serve(get_workload_request(&mut r)?),
        TAG_EVICT => Request::Evict(get_meta_key(&mut r)?),
        TAG_STATS => Request::Stats,
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok((now, request))
}

// ---------------------------------------------------------------------------
// Workload outputs
// ---------------------------------------------------------------------------

fn put_client_f64s(buf: &mut Vec<u8>, items: &[(ClientId, f64)]) {
    put_varint(buf, items.len() as u64);
    for (c, v) in items {
        put_client(buf, *c);
        put_f64(buf, *v);
    }
}

fn get_client_f64s(r: &mut Reader<'_>) -> Result<Vec<(ClientId, f64)>, WireError> {
    get_vec(r, |r| Ok((get_client(r)?, get_f64(r)?)))
}

fn put_client_usizes(buf: &mut Vec<u8>, items: &[(ClientId, usize)]) {
    put_varint(buf, items.len() as u64);
    for (c, v) in items {
        put_client(buf, *c);
        put_varint(buf, *v as u64);
    }
}

fn get_client_usizes(r: &mut Reader<'_>) -> Result<Vec<(ClientId, usize)>, WireError> {
    get_vec(r, |r| Ok((get_client(r)?, get_usize(r)?)))
}

fn put_clients(buf: &mut Vec<u8>, items: &[ClientId]) {
    put_varint(buf, items.len() as u64);
    for c in items {
        put_client(buf, *c);
    }
}

fn put_output(buf: &mut Vec<u8>, out: &WorkloadOutput) {
    match out {
        WorkloadOutput::Cosine(o) => {
            buf.push(0);
            put_client_f64s(buf, &o.per_client);
            put_f64(buf, o.mean);
            put_f64(buf, o.min);
        }
        WorkloadOutput::Filtering(o) => {
            buf.push(1);
            put_clients(buf, &o.flagged);
            put_client_f64s(buf, &o.scores);
        }
        WorkloadOutput::Clustering(o) => {
            buf.push(2);
            put_client_usizes(buf, &o.assignments);
            put_varint(buf, o.k as u64);
            put_f64(buf, o.inertia);
        }
        WorkloadOutput::Personalization(o) => {
            buf.push(3);
            put_client_usizes(buf, &o.groups);
            put_varint(buf, o.group_accuracy.len() as u64);
            for v in &o.group_accuracy {
                put_f64(buf, *v);
            }
        }
        WorkloadOutput::SchedCluster(o) => {
            buf.push(4);
            put_client_usizes(buf, &o.tiers);
            put_varint(buf, o.selected_tier as u64);
            put_clients(buf, &o.selected);
        }
        WorkloadOutput::SchedPerf(o) => {
            buf.push(5);
            put_client_f64s(buf, &o.utilities);
            put_clients(buf, &o.selected);
        }
        WorkloadOutput::Reputation(o) => {
            buf.push(6);
            put_client(buf, o.client);
            put_varint(buf, o.history.len() as u64);
            for (round, v) in &o.history {
                put_round(buf, *round);
                put_f64(buf, *v);
            }
            put_f64(buf, o.reputation);
        }
        WorkloadOutput::Debugging(o) => {
            buf.push(7);
            put_client(buf, o.client);
            put_varint(buf, o.per_round.len() as u64);
            for (round, v) in &o.per_round {
                put_round(buf, *round);
                put_f64(buf, *v);
            }
            put_bool(buf, o.faulty);
        }
        WorkloadOutput::Incentives(o) => {
            buf.push(8);
            put_client_f64s(buf, &o.payouts);
            put_f64(buf, o.budget);
        }
        WorkloadOutput::Inference(o) => {
            buf.push(9);
            put_varint(buf, o.batch as u64);
            put_f64(buf, o.mean_score);
        }
    }
}

fn get_output(r: &mut Reader<'_>) -> Result<WorkloadOutput, WireError> {
    Ok(match r.u8()? {
        0 => WorkloadOutput::Cosine(CosineOutput {
            per_client: get_client_f64s(r)?,
            mean: get_f64(r)?,
            min: get_f64(r)?,
        }),
        1 => WorkloadOutput::Filtering(FilteringOutput {
            flagged: get_vec(r, get_client)?,
            scores: get_client_f64s(r)?,
        }),
        2 => WorkloadOutput::Clustering(ClusteringOutput {
            assignments: get_client_usizes(r)?,
            k: get_usize(r)?,
            inertia: get_f64(r)?,
        }),
        3 => WorkloadOutput::Personalization(PersonalizationOutput {
            groups: get_client_usizes(r)?,
            group_accuracy: get_vec(r, get_f64)?,
        }),
        4 => WorkloadOutput::SchedCluster(SchedClusterOutput {
            tiers: get_client_usizes(r)?,
            selected_tier: get_usize(r)?,
            selected: get_vec(r, get_client)?,
        }),
        5 => WorkloadOutput::SchedPerf(SchedPerfOutput {
            utilities: get_client_f64s(r)?,
            selected: get_vec(r, get_client)?,
        }),
        6 => WorkloadOutput::Reputation(ReputationOutput {
            client: get_client(r)?,
            history: get_vec(r, |r| Ok((get_round(r)?, get_f64(r)?)))?,
            reputation: get_f64(r)?,
        }),
        7 => WorkloadOutput::Debugging(DebuggingOutput {
            client: get_client(r)?,
            per_round: get_vec(r, |r| Ok((get_round(r)?, get_f64(r)?)))?,
            faulty: get_bool(r)?,
        }),
        8 => WorkloadOutput::Incentives(IncentivesOutput {
            payouts: get_client_f64s(r)?,
            budget: get_f64(r)?,
        }),
        9 => WorkloadOutput::Inference(InferenceOutput {
            batch: get_usize(r)?,
            mean_score: get_f64(r)?,
        }),
        _ => return Err(WireError::Malformed("unknown workload output tag")),
    })
}

// ---------------------------------------------------------------------------
// Served outcomes
// ---------------------------------------------------------------------------

fn put_served(buf: &mut Vec<u8>, served: &ServedRequest) {
    put_output(buf, &served.outcome.output);
    put_f64(buf, served.outcome.work.as_ref_seconds());
    put_byte_size(buf, served.outcome.result_bytes);

    let m = &served.measured;
    put_varint(buf, m.request.as_u64());
    buf.push(kind_tag(m.kind));
    put_sim_time(buf, m.arrived);
    put_sim_time(buf, m.finished);
    put_sim_duration(buf, m.latency.routing);
    put_sim_duration(buf, m.latency.queueing);
    put_sim_duration(buf, m.latency.communication);
    put_sim_duration(buf, m.latency.computation);
    put_cost(buf, m.cost.compute);
    put_cost(buf, m.cost.storage);
    put_cost(buf, m.cost.transfer);
    put_cost(buf, m.cost.requests);
    put_cost(buf, m.cost.infra);
    put_varint(buf, m.cache_hits as u64);
    put_varint(buf, m.cache_misses as u64);
    put_bool(buf, m.recovered_from_fault);
}

fn get_served(r: &mut Reader<'_>) -> Result<ServedRequest, WireError> {
    let output = get_output(r)?;
    let work =
        WorkUnits::from_ref_seconds(get_nonneg_f64(r, "work must be finite and non-negative")?);
    let result_bytes = get_byte_size(r)?;
    let measured = flstore_workloads::service::RequestOutcome {
        request: RequestId::new(r.varint()?),
        kind: get_kind(r)?,
        arrived: get_sim_time(r)?,
        finished: get_sim_time(r)?,
        latency: LatencyBreakdown {
            routing: get_sim_duration(r)?,
            queueing: get_sim_duration(r)?,
            communication: get_sim_duration(r)?,
            computation: get_sim_duration(r)?,
        },
        cost: CostBreakdown {
            compute: get_cost(r)?,
            storage: get_cost(r)?,
            transfer: get_cost(r)?,
            requests: get_cost(r)?,
            infra: get_cost(r)?,
        },
        cache_hits: get_usize(r)?,
        cache_misses: get_usize(r)?,
        recovered_from_fault: get_bool(r)?,
    };
    Ok(ServedRequest {
        outcome: WorkloadOutcome {
            output,
            work,
            result_bytes,
        },
        measured,
    })
}

// ---------------------------------------------------------------------------
// Stats and errors
// ---------------------------------------------------------------------------

fn put_quota_usage(buf: &mut Vec<u8>, q: &QuotaUsage) {
    put_job(buf, q.job);
    put_byte_size(buf, q.resident);
    put_option(buf, q.quota.as_ref(), |b, t| {
        put_byte_size(b, t.bytes);
        b.push(match t.policy {
            QuotaPolicy::Strict => 0,
            QuotaPolicy::Elastic => 1,
        });
    });
}

fn get_quota_usage(r: &mut Reader<'_>) -> Result<QuotaUsage, WireError> {
    Ok(QuotaUsage {
        job: get_job(r)?,
        resident: get_byte_size(r)?,
        quota: get_option(r, |r| {
            Ok(TenantQuota {
                bytes: get_byte_size(r)?,
                policy: match r.u8()? {
                    0 => QuotaPolicy::Strict,
                    1 => QuotaPolicy::Elastic,
                    _ => return Err(WireError::Malformed("unknown quota policy tag")),
                },
            })
        })?,
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &StatsReport) {
    put_str(buf, &s.label);
    put_varint(buf, s.tenants as u64);
    put_varint(buf, s.served as u64);
    put_varint(buf, s.cache_hits);
    put_varint(buf, s.cache_misses);
    put_f64(buf, s.hit_rate);
    put_varint(buf, s.faults);
    put_varint(buf, s.spilled_objects);
    put_byte_size(buf, s.spilled_bytes);
    put_varint(buf, s.spill_faults);
    put_varint(buf, s.quota.len() as u64);
    for q in &s.quota {
        put_quota_usage(buf, q);
    }
}

fn get_stats(r: &mut Reader<'_>) -> Result<StatsReport, WireError> {
    Ok(StatsReport {
        label: get_str(r)?,
        tenants: get_usize(r)?,
        served: get_usize(r)?,
        cache_hits: r.varint()?,
        cache_misses: r.varint()?,
        hit_rate: get_f64(r)?,
        faults: r.varint()?,
        spilled_objects: r.varint()?,
        spilled_bytes: get_byte_size(r)?,
        spill_faults: r.varint()?,
        quota: get_vec(r, get_quota_usage)?,
    })
}

fn put_api_error(buf: &mut Vec<u8>, e: &ApiError) {
    match e {
        ApiError::UnknownJob { job } => {
            buf.push(0);
            put_job(buf, *job);
        }
        ApiError::QuotaExceeded {
            job,
            budget,
            denied,
        } => {
            buf.push(1);
            put_job(buf, *job);
            put_byte_size(buf, *budget);
            put_varint(buf, *denied as u64);
        }
        ApiError::NoData { request } => {
            buf.push(2);
            put_varint(buf, request.as_u64());
        }
        ApiError::Store(StoreError::NotFound(key)) => {
            buf.push(3);
            buf.push(0);
            put_str(buf, key.as_str());
        }
        ApiError::Workload(WorkloadError::MissingInput { kind, what }) => {
            buf.push(4);
            buf.push(0);
            buf.push(kind_tag(*kind));
            put_str(buf, what);
        }
        ApiError::Platform(p) => {
            buf.push(5);
            match p {
                PlatformError::UnknownFunction(id) => {
                    buf.push(0);
                    put_varint(buf, id.as_raw());
                }
                PlatformError::Function(FunctionError::OutOfMemory { id, need, free }) => {
                    buf.push(1);
                    buf.push(0);
                    put_varint(buf, id.as_raw());
                    put_byte_size(buf, *need);
                    put_byte_size(buf, *free);
                }
            }
        }
        ApiError::Overloaded { retry_after_hint } => {
            buf.push(6);
            put_sim_duration(buf, *retry_after_hint);
        }
        ApiError::Relocated {
            job,
            retry_after_hint,
        } => {
            buf.push(7);
            put_job(buf, *job);
            put_sim_duration(buf, *retry_after_hint);
        }
    }
}

fn get_api_error(r: &mut Reader<'_>) -> Result<ApiError, WireError> {
    Ok(match r.u8()? {
        0 => ApiError::UnknownJob { job: get_job(r)? },
        1 => ApiError::QuotaExceeded {
            job: get_job(r)?,
            budget: get_byte_size(r)?,
            denied: get_usize(r)?,
        },
        2 => ApiError::NoData {
            request: RequestId::new(r.varint()?),
        },
        3 => match r.u8()? {
            0 => ApiError::Store(StoreError::NotFound(ObjectKey::new(get_str(r)?))),
            _ => return Err(WireError::Malformed("unknown store error tag")),
        },
        4 => match r.u8()? {
            0 => {
                let kind = get_kind(r)?;
                let sent = get_str(r)?;
                // `what` is `&'static str` in-process; intern through the
                // documented closed set.
                let what = MISSING_INPUT_WHATS
                    .iter()
                    .find(|w| **w == sent)
                    .copied()
                    .ok_or(WireError::Malformed(
                        "unrecognized missing-input detail string",
                    ))?;
                ApiError::Workload(WorkloadError::MissingInput { kind, what })
            }
            _ => return Err(WireError::Malformed("unknown workload error tag")),
        },
        5 => match r.u8()? {
            0 => ApiError::Platform(PlatformError::UnknownFunction(FunctionId::from_raw(
                r.varint()?,
            ))),
            1 => match r.u8()? {
                0 => ApiError::Platform(PlatformError::Function(FunctionError::OutOfMemory {
                    id: FunctionId::from_raw(r.varint()?),
                    need: get_byte_size(r)?,
                    free: get_byte_size(r)?,
                })),
                _ => return Err(WireError::Malformed("unknown function error tag")),
            },
            _ => return Err(WireError::Malformed("unknown platform error tag")),
        },
        6 => ApiError::Overloaded {
            retry_after_hint: get_sim_duration(r)?,
        },
        7 => ApiError::Relocated {
            job: get_job(r)?,
            retry_after_hint: get_sim_duration(r)?,
        },
        _ => return Err(WireError::Malformed("unknown api error tag")),
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encodes a response envelope, returning the frame tag and payload.
pub fn encode_response(response: &Response) -> (u8, Vec<u8>) {
    let mut buf = Vec::new();
    let tag = match response {
        Response::Ingested(receipt) => {
            put_varint(&mut buf, receipt.cached as u64);
            put_varint(&mut buf, receipt.evicted as u64);
            put_varint(&mut buf, receipt.backed_up as u64);
            put_varint(&mut buf, receipt.quota_denied as u64);
            TAG_INGESTED
        }
        Response::Served(served) => {
            put_served(&mut buf, served);
            TAG_SERVED
        }
        Response::Evicted { was_cached } => {
            put_bool(&mut buf, *was_cached);
            TAG_EVICTED
        }
        Response::Stats(stats) => {
            put_stats(&mut buf, stats);
            TAG_STATS_REPORT
        }
        Response::Rejected(e) => {
            put_api_error(&mut buf, e);
            TAG_REJECTED
        }
    };
    (tag, buf)
}

/// Decodes a response frame's payload. The whole payload must be
/// consumed ([`WireError::TrailingBytes`] otherwise).
pub fn decode_response(tag: u8, payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let response = match tag {
        TAG_INGESTED => Response::Ingested(IngestReceipt {
            cached: get_usize(&mut r)?,
            evicted: get_usize(&mut r)?,
            backed_up: get_usize(&mut r)?,
            quota_denied: get_usize(&mut r)?,
        }),
        TAG_SERVED => Response::Served(Box::new(get_served(&mut r)?)),
        TAG_EVICTED => Response::Evicted {
            was_cached: get_bool(&mut r)?,
        },
        TAG_STATS_REPORT => Response::Stats(get_stats(&mut r)?),
        TAG_REJECTED => Response::Rejected(get_api_error(&mut r)?),
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(response)
}
