//! A blocking, pipelining client for the wire protocol.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use flstore_core::api::{Request, Response};
use flstore_sim::time::SimTime;

use crate::codec::{decode_response, encode_request};
use crate::wire::{read_frame, write_frame, WireError};

/// A connection to a [`NetServer`](crate::server::NetServer).
///
/// Requests pipeline: any number of [`NetClient::send`]s may be in
/// flight before the matching [`NetClient::recv`]s — the server
/// guarantees responses come back in submission order, so the `n`-th
/// `recv` always answers the `n`-th `send`.
///
/// ```no_run
/// use flstore_core::api::{Request, Response};
/// use flstore_net::client::NetClient;
/// use flstore_sim::time::SimTime;
///
/// let mut client = NetClient::connect("127.0.0.1:7450")?;
/// let response = client.call(SimTime::ZERO, &Request::Stats)?;
/// assert!(matches!(response, Response::Stats(_)));
/// # Ok::<(), flstore_net::wire::WireError>(())
/// ```
pub struct NetClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        let read_half = stream.try_clone().map_err(WireError::from)?;
        Ok(NetClient {
            writer: BufWriter::new(stream),
            reader: BufReader::new(read_half),
        })
    }

    /// Writes one request frame stamped at `now` without waiting for the
    /// response (pipelining). Call [`NetClient::flush`] (or `recv`, which
    /// flushes first) once a burst is queued.
    pub fn send(&mut self, now: SimTime, request: &Request) -> Result<(), WireError> {
        let (tag, payload) = encode_request(now, request);
        write_frame(&mut self.writer, tag, &payload).map_err(WireError::from)
    }

    /// Flushes buffered request frames to the socket.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.writer.flush().map_err(WireError::from)
    }

    /// Reads the next response frame (flushing queued requests first).
    /// Returns [`WireError::Truncated`] if the server closed the
    /// connection before a full response arrived — callers that
    /// pipeline know how many responses they are still owed.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        self.flush()?;
        match read_frame(&mut self.reader)? {
            Some((tag, payload)) => decode_response(tag, &payload),
            None => Err(WireError::Truncated),
        }
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, now: SimTime, request: &Request) -> Result<Response, WireError> {
        self.send(now, request)?;
        self.recv()
    }

    /// Half-closes the write side, telling the server no more requests
    /// are coming; pipelined responses can still be received.
    pub fn finish_sending(&mut self) -> Result<(), WireError> {
        self.flush()?;
        self.writer
            .get_ref()
            .shutdown(Shutdown::Write)
            .map_err(WireError::from)
    }
}
