//! The standalone FLStore network server.
//!
//! ```sh
//! # Print the frame inventory (consumed by scripts/check_wire_doc.sh):
//! flstore-net --list-frames
//!
//! # Serve a multi-job FLStore deployment:
//! flstore-net serve --addr 127.0.0.1:0 --jobs 4 --threads 4
//!
//! # Serve durably: per-job write-ahead ledgers under DIR, recovered on
//! # restart (a SIGKILL'd server picks up exactly where the ledger ends):
//! flstore-net serve --data-dir DIR --flush-every 1 --spill
//!
//! # Front a 3-node rf=2 replicated cluster, killing node 1 (process
//! # death) 1800 virtual seconds in and rejoining it at 3000 s. During
//! # the detection window clients receive typed Relocated redirects;
//! # `flstore-loadgen --retries N` rides through with zero failures:
//! flstore-net serve --cluster-nodes 3 --cluster-rf 2 --detect-ms 60000 \
//!     --kill 1@1800 --rejoin 1@3000 --data-dir DIR --flush-every 1
//! ```
//!
//! `serve` prints `listening on <addr>` on stdout once bound (scripts
//! parse this line to discover the ephemeral port) and runs until the
//! process is killed.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use flstore_cluster::cluster::{ClusterConfig, ClusterStore};
use flstore_cluster::failure::{FailureKind, FailurePlan};
use flstore_core::api::Service;
use flstore_core::durable::DurabilityConfig;
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_durability::recover::{attach, recover, MANIFEST};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_net::server::{NetServer, ServerConfig};
use flstore_net::wire::FRAMES;
use flstore_sim::time::{SimDuration, SimTime};

fn usage() -> ! {
    eprintln!(
        "usage: flstore-net --list-frames\n       flstore-net serve [--addr HOST:PORT] \
         [--jobs N] [--threads N (0 = all cores)] [--key-shards K] [--max-conns N]\n       \
         [--max-inflight N]\n       \
         [--data-dir DIR] [--flush-every N] [--snapshot-every N] [--spill]\n       \
         [--cluster-nodes N] [--cluster-rf R] [--detect-ms MS] \
         [--kill NODE@SECS]... [--rejoin NODE@SECS]..."
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

/// Builds the replicated cluster deployment: `jobs` quick-test jobs slot
/// across `nodes` simulated store nodes at replication factor `rf`, with
/// the failure schedule injected up front (events fire on the virtual
/// clock as client request stamps pass them).
#[allow(clippy::too_many_arguments)]
fn cluster_service(
    nodes: usize,
    rf: usize,
    detect: SimDuration,
    jobs: u32,
    durability: DurabilityConfig,
    data_dir: Option<PathBuf>,
    kills: &[(usize, u64)],
    rejoins: &[(usize, u64)],
) -> ClusterStore {
    let template_job = FlJobConfig::quick_test(JobId::new(1));
    let mut cfg = ClusterConfig::sim_default(
        nodes,
        rf,
        FlStoreConfig {
            durability,
            ..FlStoreConfig::for_model(&template_job.model)
        },
    );
    cfg.detection_interval = detect;
    // The redirect hint equals the detection interval, so one
    // hint-advanced retry is guaranteed to land past failover detection
    // — `flstore-loadgen --retries 1` suffices to ride through a kill.
    cfg.redirect_hint = detect;
    cfg.durable_root = data_dir;
    let mut cluster = ClusterStore::new(cfg);
    for j in 1..=jobs.max(1) {
        let job_cfg = FlJobConfig::quick_test(JobId::new(j));
        cluster
            .register_job(job_cfg.job, job_cfg.model)
            .unwrap_or_else(|e| {
                eprintln!("register job-{j}: {e}");
                std::process::exit(1);
            });
    }
    let mut plan = FailurePlan::none();
    for &(node, secs) in kills {
        plan = plan.with(SimTime::from_secs(secs), node, FailureKind::Kill);
    }
    for &(node, secs) in rejoins {
        plan = plan.with(SimTime::from_secs(secs), node, FailureKind::Rejoin);
    }
    cluster.inject_plan(&plan);
    cluster
}

/// Parses a `NODE@SECS` failure-schedule operand (virtual seconds).
fn parse_node_at(args: &mut std::slice::Iter<'_, String>, flag: &str) -> (usize, u64) {
    let value: String = parse(args, flag);
    let parsed = value
        .split_once('@')
        .and_then(|(node, secs)| Some((node.parse().ok()?, secs.parse().ok()?)));
    parsed.unwrap_or_else(|| {
        eprintln!("{flag} needs NODE@SECS (e.g. {flag} 1@1800)");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-frames") {
        // Machine-readable frame inventory, tab-separated: tag byte,
        // name, direction, summary. docs/WIRE.md's tag table is diffed
        // against this output in CI.
        for (tag, name, direction, summary) in FRAMES {
            println!("0x{tag:02x}\t{name}\t{direction}\t{summary}");
        }
        return;
    }
    if args.first().map(String::as_str) != Some("serve") {
        usage();
    }

    let mut addr = String::from("127.0.0.1:0");
    let mut jobs = 1u32;
    let mut threads = 1usize;
    let mut config = ServerConfig::default();
    let mut data_dir: Option<PathBuf> = None;
    let mut durability = DurabilityConfig::DISABLED;
    let mut cluster_nodes = 0usize;
    let mut cluster_rf = 2usize;
    let mut detect = SimDuration::from_millis(500);
    let mut kills: Vec<(usize, u64)> = Vec::new();
    let mut rejoins: Vec<(usize, u64)> = Vec::new();
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&mut iter, "--addr"),
            "--jobs" => jobs = parse(&mut iter, "--jobs"),
            "--threads" => threads = parse(&mut iter, "--threads"),
            // Process-wide default MetaKey shard count: unobservable in
            // bytes (responses/ledgers identical at any K), so it is not
            // part of the serialized config.
            "--key-shards" => {
                flstore_core::engine::set_default_key_shards(parse(&mut iter, "--key-shards"))
            }
            "--max-conns" => config.max_connections = parse(&mut iter, "--max-conns"),
            "--max-inflight" => config.max_inflight = parse(&mut iter, "--max-inflight"),
            "--retry-after-us" => {
                config.retry_after_hint =
                    SimDuration::from_micros(parse(&mut iter, "--retry-after-us"))
            }
            "--cluster-nodes" => cluster_nodes = parse(&mut iter, "--cluster-nodes"),
            "--cluster-rf" => cluster_rf = parse(&mut iter, "--cluster-rf"),
            "--detect-ms" => detect = SimDuration::from_millis(parse(&mut iter, "--detect-ms")),
            "--kill" => kills.push(parse_node_at(&mut iter, "--kill")),
            "--rejoin" => rejoins.push(parse_node_at(&mut iter, "--rejoin")),
            "--data-dir" => data_dir = Some(parse(&mut iter, "--data-dir")),
            "--flush-every" => durability.flush_every = parse(&mut iter, "--flush-every"),
            "--snapshot-every" => durability.snapshot_every = parse(&mut iter, "--snapshot-every"),
            "--spill" => durability.spill = true,
            _ => usage(),
        }
    }

    // Cluster mode: the front door drives a replicated ClusterStore
    // instead of a single store / sharded executor. The cluster
    // replicates every state-touching envelope internally, so `--threads`
    // does not apply; `--data-dir` becomes the per-node durable root
    // (`DIR/node-<i>/job-<j>` ledgers, the rejoin recovery source).
    if cluster_nodes > 0 {
        if threads > 1 {
            eprintln!("--threads is ignored in cluster mode (replication is internal)");
        }
        let service = cluster_service(
            cluster_nodes,
            cluster_rf,
            detect,
            jobs,
            durability,
            data_dir,
            &kills,
            &rejoins,
        );
        println!(
            "cluster: {cluster_nodes} node(s), rf={cluster_rf}, detection {}ms, \
             {} kill(s) / {} rejoin(s) scheduled",
            detect.as_micros() / 1000,
            kills.len(),
            rejoins.len()
        );
        let server =
            NetServer::bind_to(addr.as_str(), Box::new(service), config).unwrap_or_else(|e| {
                eprintln!("bind {addr}: {e}");
                std::process::exit(1);
            });
        println!("listening on {}", server.local_addr());
        println!("{} job(s); kill the process to stop", jobs.max(1));
        loop {
            std::thread::park();
        }
    }

    // Each shard owns its unit outright, so each unit gets its own ledger
    // writer under `data-dir/job-<j>` — no lock is shared across shards.
    // A directory with a manifest is an earlier life of this deployment:
    // recover it (replay to the exact pre-crash state) instead of
    // starting fresh.
    let mut recovered = 0u32;
    let mut units: Vec<FlStore> = Vec::with_capacity(jobs.max(1) as usize);
    for j in 1..=jobs.max(1) {
        let cfg = FlJobConfig::quick_test(JobId::new(j));
        let fresh = |durability: DurabilityConfig| {
            FlStore::new(
                FlStoreConfig {
                    durability,
                    ..FlStoreConfig::for_model(&cfg.model)
                },
                Box::new(TailoredPolicy::new()),
                cfg.job,
                cfg.model,
            )
        };
        let Some(root) = &data_dir else {
            units.push(fresh(DurabilityConfig::DISABLED));
            continue;
        };
        let dir = root.join(format!("job-{j}"));
        if dir.join(MANIFEST).exists() {
            // The manifest's config wins over this invocation's flags:
            // replay must run under the config the ledger was written by.
            recovered += 1;
            units.push(recover(&dir).unwrap_or_else(|e| {
                eprintln!("recover {}: {e}", dir.display());
                std::process::exit(1);
            }));
        } else {
            let mut store = fresh(durability);
            attach(&mut store, &dir).unwrap_or_else(|e| {
                eprintln!("attach {}: {e}", dir.display());
                std::process::exit(1);
            });
            units.push(store);
        }
    }
    if data_dir.is_some() {
        // The engine clamp must not rewind past the pre-crash clock: seed
        // it with the furthest any recovered unit has advanced.
        for unit in &units {
            config.initial_clock = config.initial_clock.max(unit.clock());
        }
        println!("durable: {recovered} job(s) recovered from ledger");
    }
    if threads == 0 {
        threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        eprintln!("--threads 0: resolved to {threads} available core(s)");
    }
    let service: Box<dyn Service + Send> = if threads > 1 {
        Box::new(ShardedExecutor::new(units, threads))
    } else {
        // A single shard still routes multi-job traffic correctly; with
        // one job, serve the store directly.
        let mut units = units;
        if units.len() == 1 {
            Box::new(units.pop().expect("one unit"))
        } else {
            Box::new(ShardedExecutor::new(units, 1))
        }
    };

    let server = NetServer::bind_to(addr.as_str(), service, config).unwrap_or_else(|e| {
        eprintln!("bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("listening on {}", server.local_addr());
    println!(
        "{} job(s), {} worker thread(s); kill the process to stop",
        jobs.max(1),
        threads.max(1)
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
