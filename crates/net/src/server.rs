//! The TCP front door: a threaded accept loop driving any
//! [`Service`] behind the wire protocol.
//!
//! # Threading model
//!
//! * **accept thread** — owns the listener; admits connections under the
//!   connection-limit semaphore. An over-limit connection receives one
//!   typed [`ApiError::Overloaded`] envelope and a graceful close (the
//!   socket is drained to EOF first, so the peer never observes a
//!   reset).
//! * **reader thread** (per connection) — reads frames, decodes request
//!   envelopes, stamps each with a per-connection sequence number, and
//!   forwards them to the engine. When the server-wide inflight cap is
//!   reached, the reader short-circuits a typed `Overloaded` rejection
//!   straight to the writer — through the same sequence-ordered merge,
//!   so pipelined responses still come back in submission order.
//! * **engine thread** — owns the `Service`. Drains the shared queue and
//!   groups consecutive envelopes that share an arrival stamp into one
//!   [`Service::submit_batch`] call (the arrival-window batcher). Batch
//!   submission is bit-for-bit equivalent to sequential submission (a
//!   property the workspace tests enforce on every `Service`), so how
//!   arrivals happen to coalesce under wall-clock timing cannot change
//!   any result byte.
//! * **writer thread** (per connection) — merges responses back into
//!   per-connection submission order by sequence number (the same
//!   ordered-merge discipline as the sharded executor) and writes
//!   frames.
//!
//! The hot path is channels and atomics only. The lone lock — the
//! connection registry, touched at connect/disconnect — is a
//! `parking_lot` *named* mutex, so the `lock-order` deadlock smoke
//! covers this plane too. Admission against both caps uses
//! compare-and-swap loops: the check and the commit are one atomic
//! operation, never a check-then-act race.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use flstore_core::api::{ApiError, Request, Response, Service};
use flstore_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::codec::{decode_request, encode_response};
use crate::wire::{read_frame, write_frame};

/// Tuning knobs for the front door.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections admitted past the accept loop. The
    /// `max_connections + 1`-th connection receives a typed
    /// [`ApiError::Overloaded`] envelope and a graceful close.
    pub max_connections: usize,
    /// Server-wide cap on decoded envelopes queued for the engine.
    /// Beyond it, new envelopes are rejected with `Overloaded` instead
    /// of queueing without bound.
    pub max_inflight: usize,
    /// Most envelopes the engine folds into one `submit_batch` call.
    pub max_batch: usize,
    /// The `retry_after_hint` carried by `Overloaded` rejections. Fixed
    /// by configuration (not load-derived) so rejection envelopes are
    /// byte-deterministic.
    pub retry_after_hint: SimDuration,
    /// Where the engine's monotonically clamped virtual clock starts. A
    /// recovered deployment seeds this with the replayed store's clock so
    /// a restart cannot rewind time the pre-crash server had already
    /// reached (docs/LEDGER.md §5).
    pub initial_clock: SimTime,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_inflight: 4096,
            max_batch: 64,
            retry_after_hint: SimDuration::from_millis(1),
            initial_clock: SimTime::ZERO,
        }
    }
}

/// Atomically claims one slot below `cap`: the check and the increment
/// are a single compare-and-swap, so concurrent claimants can never
/// overshoot the cap (no check-then-act window).
fn try_acquire(counter: &AtomicUsize, cap: usize) -> bool {
    // Relaxed: the counter carries the whole protocol — no memory is
    // published through it — and the CAS alone guarantees the cap is
    // never overshot; stronger orderings would buy nothing here.
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        if current >= cap {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(seen) => current = seen,
        }
    }
}

/// One decoded envelope in flight from a reader to the engine.
struct Job {
    seq: u64,
    now: SimTime,
    request: Request,
    reply: mpsc::Sender<(u64, Response)>,
}

/// A running TCP front door. Dropping the server shuts it down and joins
/// every thread.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Mutex<Vec<TcpStream>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` on background threads.
    ///
    /// ```
    /// use flstore_core::policy::TailoredPolicy;
    /// use flstore_core::store::{FlStore, FlStoreConfig};
    /// use flstore_fl::ids::JobId;
    /// use flstore_fl::job::FlJobConfig;
    /// use flstore_net::server::{NetServer, ServerConfig};
    ///
    /// let cfg = FlJobConfig::quick_test(JobId::new(1));
    /// let store = FlStore::new(
    ///     FlStoreConfig::for_model(&cfg.model),
    ///     Box::new(TailoredPolicy::new()),
    ///     cfg.job,
    ///     cfg.model,
    /// );
    /// let server = NetServer::bind(Box::new(store), ServerConfig::default()).unwrap();
    /// assert_ne!(server.local_addr().port(), 0);
    /// server.shutdown();
    /// ```
    pub fn bind(
        service: Box<dyn Service + Send>,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_to("127.0.0.1:0", service, config)
    }

    /// Like [`NetServer::bind`], binding an explicit address.
    pub fn bind_to(
        addr: impl ToSocketAddrs,
        service: Box<dyn Service + Send>,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Mutex::named(Vec::new(), "net.conn_registry"));
        let handles = Arc::new(Mutex::named(Vec::new(), "net.conn_handles"));
        let inflight = Arc::new(AtomicUsize::new(0));
        let connections = Arc::new(AtomicUsize::new(0));
        let (engine_tx, engine_rx) = mpsc::channel::<Job>();

        let engine = std::thread::Builder::new()
            .name("net-engine".into())
            .spawn({
                let inflight = inflight.clone();
                let max_batch = config.max_batch.max(1);
                let initial_clock = config.initial_clock;
                move || engine_loop(service, engine_rx, inflight, max_batch, initial_clock)
            })?;

        let accept = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn({
                let shutdown = shutdown.clone();
                let registry = registry.clone();
                let handles = handles.clone();
                let config = config.clone();
                move || {
                    accept_loop(
                        listener,
                        engine_tx,
                        config,
                        shutdown,
                        registry,
                        handles,
                        connections,
                        inflight,
                    )
                }
            })?;

        Ok(NetServer {
            addr,
            shutdown,
            registry,
            handles,
            accept: Some(accept),
            engine: Some(engine),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every connection, and joins all threads.
    /// In-flight envelopes finish; their responses are flushed before
    /// the writers exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // AcqRel, not SeqCst: Release publishes everything before the stop
        // to the accept thread's Acquire load, and the Acquire half makes
        // the swap's idempotence check race-free; no site needs a single
        // total order across *other* atomics.
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock every connection reader; readers exiting drop the last
        // engine senders, which stops the engine in turn.
        for stream in self.registry.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let joins: Vec<_> = self.handles.lock().drain(..).collect();
        for h in joins {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    engine_tx: mpsc::Sender<Job>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Mutex<Vec<TcpStream>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    connections: Arc<AtomicUsize>,
    inflight: Arc<AtomicUsize>,
) {
    for stream in listener.incoming() {
        // Acquire pairs with the Release half of the shutdown swap: once
        // the flag reads true, everything `stop()` did before setting it
        // is visible here.
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if !try_acquire(&connections, config.max_connections.max(1)) {
            reject_connection(stream, config.retry_after_hint);
            continue;
        }
        let Ok(read_half) = stream.try_clone() else {
            // Relaxed: releasing a slot publishes no memory — connection
            // teardown synchronizes via its channels and mutexes.
            connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        let Ok(registered) = stream.try_clone() else {
            // Relaxed: same slot-release as above, no memory published.
            connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        registry.lock().push(registered);

        let (writer_tx, writer_rx) = mpsc::channel::<(u64, Response)>();
        let writer = std::thread::Builder::new()
            .name("net-writer".into())
            .spawn(move || writer_loop(stream, writer_rx));
        let reader = std::thread::Builder::new()
            .name("net-reader".into())
            .spawn({
                let engine_tx = engine_tx.clone();
                let inflight = inflight.clone();
                let connections = connections.clone();
                let config = config.clone();
                move || {
                    reader_loop(read_half, engine_tx, writer_tx, inflight, &config);
                    // Relaxed: slot release only; the reader's work is
                    // already synchronized through the engine channel.
                    connections.fetch_sub(1, Ordering::Relaxed);
                }
            });
        let mut handles = handles.lock();
        if let Ok(h) = writer {
            handles.push(h);
        }
        if let Ok(h) = reader {
            handles.push(h);
        }
    }
}

/// Turns away an over-limit connection with one typed `Overloaded`
/// envelope and a graceful close: half-close our write side, then drain
/// the peer's pending bytes to EOF so the kernel never answers queued
/// data on a closed socket with an RST.
fn reject_connection(mut stream: TcpStream, retry_after_hint: SimDuration) {
    let response = Response::Rejected(ApiError::Overloaded { retry_after_hint });
    let (tag, payload) = encode_response(&response);
    let _ = write_frame(&mut stream, tag, &payload);
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

fn reader_loop(
    stream: TcpStream,
    engine_tx: mpsc::Sender<Job>,
    writer_tx: mpsc::Sender<(u64, Response)>,
    inflight: Arc<AtomicUsize>,
    config: &ServerConfig,
) {
    let mut reader = BufReader::new(stream);
    let mut seq = 0u64;
    loop {
        let (tag, payload) = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean EOF, a malformed frame, or a socket error all end the
            // connection; the codec's typed errors keep this panic-free.
            Ok(None) | Err(_) => return,
        };
        let (now, request) = match decode_request(tag, &payload) {
            Ok(decoded) => decoded,
            Err(_) => return,
        };
        let this_seq = seq;
        seq += 1;
        if try_acquire(&inflight, config.max_inflight.max(1)) {
            let job = Job {
                seq: this_seq,
                now,
                request,
                reply: writer_tx.clone(),
            };
            if engine_tx.send(job).is_err() {
                return;
            }
        } else {
            // Backpressure as a typed envelope, routed through the same
            // sequence-ordered merge as engine responses.
            let rejection = Response::Rejected(ApiError::Overloaded {
                retry_after_hint: config.retry_after_hint,
            });
            if writer_tx.send((this_seq, rejection)).is_err() {
                return;
            }
        }
    }
}

fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<(u64, Response)>) {
    let mut writer = BufWriter::new(stream);
    let mut next_seq = 0u64;
    // The submission-order merge: responses can arrive ahead of turn
    // (reader-side rejections overtaking engine work); hold them until
    // their sequence number is up.
    let mut held: BTreeMap<u64, Response> = BTreeMap::new();
    while let Ok((seq, response)) = rx.recv() {
        held.insert(seq, response);
        while let Some(response) = held.remove(&next_seq) {
            let (tag, payload) = encode_response(&response);
            if write_frame(&mut writer, tag, &payload).is_err() {
                return;
            }
            next_seq += 1;
        }
        if held.is_empty() && writer.flush().is_err() {
            return;
        }
    }
    // Channel closed: the reader saw EOF (or an error) and the engine has
    // replied to everything it admitted. Flush and half-close our write
    // side so a client that half-closed after pipelining sees a clean EOF
    // (the connection-registry clone would otherwise hold the socket open
    // until server shutdown).
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(Shutdown::Write);
}

fn engine_loop(
    mut service: Box<dyn Service + Send>,
    rx: mpsc::Receiver<Job>,
    inflight: Arc<AtomicUsize>,
    max_batch: usize,
    initial_clock: SimTime,
) {
    // The virtual clock is clamped monotonic across envelopes: a stamp
    // arriving out of order (a slow connection racing a fast one) can
    // never rewind the service's notion of time. A recovered deployment
    // starts the clamp at the replayed store's clock, so a restart is
    // time-transparent too.
    let mut clock = initial_clock;
    while let Ok(first) = rx.recv() {
        // Arrival-window batcher: drain whatever else has already
        // arrived, up to max_batch, without waiting.
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Group consecutive same-stamp envelopes into one batched
        // submission. Batch ≡ sequential bit-for-bit for every Service,
        // so the (timing-dependent) grouping cannot change result bytes.
        let mut start = 0;
        while start < jobs.len() {
            let mut end = start + 1;
            while end < jobs.len() && jobs[end].now == jobs[start].now {
                end += 1;
            }
            clock = clock.max(jobs[start].now);
            let group = &jobs[start..end];
            let requests: Vec<Request> = group.iter().map(|j| j.request.clone()).collect();
            let responses = service.submit_batch(clock, &requests);
            // Relaxed: the in-flight gauge only bounds admission; the
            // responses themselves flow through the reply channels, which
            // carry the necessary ordering.
            inflight.fetch_sub(group.len(), Ordering::Relaxed);
            for (job, response) in group.iter().zip(responses) {
                // A closed connection just drops its responses.
                let _ = job.reply.send((job.seq, response));
            }
            start = end;
        }
    }
}
