//! Property tests: the codec is canonical. For every envelope the
//! protocol can carry, encode→decode→encode is byte-exact, and the
//! worked hex examples in `docs/WIRE.md` §7 are asserted literally.

use proptest::prelude::*;

use flstore_cloud::blob::StoreError;
use flstore_cloud::compute::WorkUnits;
use flstore_core::api::{ApiError, Request, Response, StatsReport};
use flstore_core::quota::{QuotaPolicy, QuotaUsage, TenantQuota};
use flstore_core::store::{IngestReceipt, ServedRequest};
use flstore_fl::aggregate::AggregateModel;
use flstore_fl::hyperparams::HyperParams;
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::{MetaKey, MetaKind};
use flstore_fl::metrics::{ClientRoundInfo, RoundMetrics};
use flstore_fl::update::{ModelUpdate, UpdateMetrics};
use flstore_fl::weights::WeightVector;
use flstore_net::codec::{
    decode_request, decode_response, encode_request, encode_response, MISSING_INPUT_WHATS,
};
use flstore_net::wire::{read_frame, write_frame};
use flstore_serverless::function::{FunctionError, FunctionId};
use flstore_serverless::platform::PlatformError;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::latency::LatencyBreakdown;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::outputs::{
    ClusteringOutput, CosineOutput, DebuggingOutput, FilteringOutput, IncentivesOutput,
    InferenceOutput, PersonalizationOutput, ReputationOutput, SchedClusterOutput, SchedPerfOutput,
    WorkloadOutput,
};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::run::{WorkloadError, WorkloadOutcome};
use flstore_workloads::service::RequestOutcome;
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

/// A tiny deterministic value mill: every field of a sampled envelope
/// derives from one proptest-drawn seed, so the strategies stay simple
/// while the structures exercise every field.
struct Mill(u64);

impl Mill {
    fn u(&mut self) -> u64 {
        // SplitMix64 step — deterministic, full-period.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn u32(&mut self) -> u32 {
        (self.u() & 0xffff_ffff) as u32
    }
    fn small(&mut self, n: u64) -> u64 {
        self.u() % n
    }
    fn f64(&mut self) -> f64 {
        // Finite, mixed sign.
        (self.u() % 2_000_000) as f64 / 1000.0 - 1000.0
    }
    fn pos_f64(&mut self) -> f64 {
        (self.u() % 1_000_000) as f64 / 1000.0
    }
    fn f32(&mut self) -> f32 {
        self.f64() as f32
    }
    fn boolean(&mut self) -> bool {
        self.u() & 1 == 1
    }
    fn client(&mut self) -> ClientId {
        ClientId::new(self.u32())
    }
    fn round(&mut self) -> Round {
        Round::new(self.u32())
    }
    fn kind(&mut self) -> WorkloadKind {
        WorkloadKind::ALL[self.small(WorkloadKind::ALL.len() as u64) as usize]
    }
    fn weights(&mut self) -> WeightVector {
        let n = self.small(6) as usize;
        WeightVector::from_vec((0..n).map(|_| self.f32()).collect())
    }
    fn client_f64s(&mut self) -> Vec<(ClientId, f64)> {
        let n = self.small(4) as usize;
        (0..n).map(|_| (self.client(), self.f64())).collect()
    }
    fn client_usizes(&mut self) -> Vec<(ClientId, usize)> {
        let n = self.small(4) as usize;
        (0..n)
            .map(|_| (self.client(), self.small(64) as usize))
            .collect()
    }
    fn clients(&mut self) -> Vec<ClientId> {
        let n = self.small(4) as usize;
        (0..n).map(|_| self.client()).collect()
    }
    fn round_f64s(&mut self) -> Vec<(Round, f64)> {
        let n = self.small(4) as usize;
        (0..n).map(|_| (self.round(), self.f64())).collect()
    }

    fn update(&mut self) -> ModelUpdate {
        ModelUpdate {
            job: JobId::new(self.u32()),
            client: self.client(),
            round: self.round(),
            weights: self.weights(),
            metrics: UpdateMetrics {
                local_loss: self.f64(),
                local_accuracy: self.f64(),
                train_time_s: self.f64(),
                upload_time_s: self.f64(),
                num_samples: self.u32(),
                staleness: self.u32(),
            },
            ground_truth_malicious: self.boolean(),
        }
    }

    fn record(&mut self) -> RoundRecord {
        let updates = (0..self.small(3)).map(|_| self.update()).collect();
        let clients = (0..self.small(3))
            .map(|_| ClientRoundInfo {
                client: self.client(),
                available: self.boolean(),
                participated: self.boolean(),
                completed: self.boolean(),
                compute_speed: self.f64(),
                uplink_mbps: self.f64(),
                reliability: self.f64(),
                payout_balance: self.f64(),
                participation_count: self.u32(),
                last_loss: self.f64(),
            })
            .collect();
        RoundRecord {
            round: self.round(),
            hyperparams: HyperParams {
                round: self.round(),
                learning_rate: self.f64(),
                batch_size: self.u32(),
                local_epochs: self.u32(),
                momentum: self.f64(),
                weight_decay: self.f64(),
                server_lr: self.f64(),
                sample_fraction: self.f64(),
            },
            updates,
            aggregate: AggregateModel {
                job: JobId::new(self.u32()),
                round: self.round(),
                weights: self.weights(),
                loss: self.f64(),
                accuracy: self.f64(),
                num_clients: self.u32(),
            },
            metrics: RoundMetrics {
                round: self.round(),
                global_loss: self.f64(),
                global_accuracy: self.f64(),
                training_round_secs: self.f64(),
                clients,
            },
        }
    }

    fn workload_request(&mut self) -> WorkloadRequest {
        let kind = self.kind();
        // The P3 invariant the decoder enforces: across-rounds kinds
        // always carry a target client.
        let client = if kind.policy_class() == PolicyClass::P3AcrossRounds || self.boolean() {
            Some(self.client())
        } else {
            None
        };
        WorkloadRequest {
            id: RequestId::new(self.u()),
            kind,
            job: JobId::new(self.u32()),
            round: self.round(),
            client,
            window: self.u32(),
        }
    }

    fn request(&mut self, pick: u8) -> Request {
        match pick % 4 {
            0 => Request::Ingest {
                job: JobId::new(self.u32()),
                record: std::sync::Arc::new(self.record()),
            },
            1 => Request::Serve(self.workload_request()),
            2 => Request::Evict(MetaKey {
                job: JobId::new(self.u32()),
                round: self.round(),
                client: if self.boolean() {
                    Some(self.client())
                } else {
                    None
                },
                kind: match self.small(4) {
                    0 => MetaKind::ClientUpdate,
                    1 => MetaKind::Aggregate,
                    2 => MetaKind::HyperParams,
                    _ => MetaKind::RoundMetrics,
                },
            }),
            _ => Request::Stats,
        }
    }

    fn output(&mut self, pick: u8) -> WorkloadOutput {
        match pick % 10 {
            0 => WorkloadOutput::Cosine(CosineOutput {
                per_client: self.client_f64s(),
                mean: self.f64(),
                min: self.f64(),
            }),
            1 => WorkloadOutput::Filtering(FilteringOutput {
                flagged: self.clients(),
                scores: self.client_f64s(),
            }),
            2 => WorkloadOutput::Clustering(ClusteringOutput {
                assignments: self.client_usizes(),
                k: self.small(8) as usize,
                inertia: self.pos_f64(),
            }),
            3 => WorkloadOutput::Personalization(PersonalizationOutput {
                groups: self.client_usizes(),
                group_accuracy: (0..self.small(4)).map(|_| self.f64()).collect(),
            }),
            4 => WorkloadOutput::SchedCluster(SchedClusterOutput {
                tiers: self.client_usizes(),
                selected_tier: self.small(4) as usize,
                selected: self.clients(),
            }),
            5 => WorkloadOutput::SchedPerf(SchedPerfOutput {
                utilities: self.client_f64s(),
                selected: self.clients(),
            }),
            6 => WorkloadOutput::Reputation(ReputationOutput {
                client: self.client(),
                history: self.round_f64s(),
                reputation: self.f64(),
            }),
            7 => WorkloadOutput::Debugging(DebuggingOutput {
                client: self.client(),
                per_round: self.round_f64s(),
                faulty: self.boolean(),
            }),
            8 => WorkloadOutput::Incentives(IncentivesOutput {
                payouts: self.client_f64s(),
                budget: self.f64(),
            }),
            _ => WorkloadOutput::Inference(InferenceOutput {
                batch: self.small(256) as usize,
                mean_score: self.f64(),
            }),
        }
    }

    fn served(&mut self, pick: u8) -> ServedRequest {
        ServedRequest {
            outcome: WorkloadOutcome {
                output: self.output(pick),
                work: WorkUnits::from_ref_seconds(self.pos_f64()),
                result_bytes: ByteSize::from_bytes(self.u() % (1 << 40)),
            },
            measured: RequestOutcome {
                request: RequestId::new(self.u()),
                kind: self.kind(),
                arrived: SimTime::from_micros(self.u() % (1 << 50)),
                finished: SimTime::from_micros(self.u() % (1 << 50)),
                latency: LatencyBreakdown {
                    routing: SimDuration::from_micros(self.u() % (1 << 40)),
                    queueing: SimDuration::from_micros(self.u() % (1 << 40)),
                    communication: SimDuration::from_micros(self.u() % (1 << 40)),
                    computation: SimDuration::from_micros(self.u() % (1 << 40)),
                },
                cost: CostBreakdown {
                    compute: Cost::from_dollars(self.pos_f64()),
                    storage: Cost::from_dollars(self.pos_f64()),
                    transfer: Cost::from_dollars(self.pos_f64()),
                    requests: Cost::from_dollars(self.pos_f64()),
                    infra: Cost::from_dollars(self.pos_f64()),
                },
                cache_hits: self.small(1 << 20) as usize,
                cache_misses: self.small(1 << 20) as usize,
                recovered_from_fault: self.boolean(),
            },
        }
    }

    fn api_error(&mut self, pick: u8) -> ApiError {
        match pick % 9 {
            0 => ApiError::UnknownJob {
                job: JobId::new(self.u32()),
            },
            1 => ApiError::QuotaExceeded {
                job: JobId::new(self.u32()),
                budget: ByteSize::from_bytes(self.u() % (1 << 40)),
                denied: self.small(1 << 20) as usize,
            },
            2 => ApiError::NoData {
                request: RequestId::new(self.u()),
            },
            3 => ApiError::Store(StoreError::NotFound(flstore_cloud::blob::ObjectKey::new(
                format!("job/{}/round/{}", self.u32(), self.u32()),
            ))),
            4 => ApiError::Workload(WorkloadError::MissingInput {
                kind: self.kind(),
                what: MISSING_INPUT_WHATS[self.small(MISSING_INPUT_WHATS.len() as u64) as usize],
            }),
            5 => ApiError::Platform(PlatformError::UnknownFunction(FunctionId::from_raw(
                self.u(),
            ))),
            6 => ApiError::Platform(PlatformError::Function(FunctionError::OutOfMemory {
                id: FunctionId::from_raw(self.u()),
                need: ByteSize::from_bytes(self.u() % (1 << 40)),
                free: ByteSize::from_bytes(self.u() % (1 << 40)),
            })),
            7 => ApiError::Overloaded {
                retry_after_hint: SimDuration::from_micros(self.u() % (1 << 40)),
            },
            _ => ApiError::Relocated {
                job: JobId::new(self.u32()),
                retry_after_hint: SimDuration::from_micros(self.u() % (1 << 40)),
            },
        }
    }

    fn response(&mut self, pick: u8) -> Response {
        match pick % 5 {
            0 => Response::Ingested(IngestReceipt {
                cached: self.small(1 << 20) as usize,
                evicted: self.small(1 << 20) as usize,
                backed_up: self.small(1 << 20) as usize,
                quota_denied: self.small(1 << 20) as usize,
            }),
            1 => Response::Served(Box::new(self.served(pick / 5))),
            2 => Response::Evicted {
                was_cached: self.boolean(),
            },
            3 => {
                let quota = (0..self.small(3))
                    .map(|_| QuotaUsage {
                        job: JobId::new(self.u32()),
                        resident: ByteSize::from_bytes(self.u() % (1 << 40)),
                        quota: if self.boolean() {
                            Some(TenantQuota {
                                bytes: ByteSize::from_bytes(self.u() % (1 << 40)),
                                policy: if self.boolean() {
                                    QuotaPolicy::Strict
                                } else {
                                    QuotaPolicy::Elastic
                                },
                            })
                        } else {
                            None
                        },
                    })
                    .collect();
                Response::Stats(StatsReport {
                    label: format!("store-{}", self.small(100)),
                    tenants: self.small(64) as usize,
                    served: self.small(1 << 20) as usize,
                    cache_hits: self.u() % (1 << 40),
                    cache_misses: self.u() % (1 << 40),
                    hit_rate: self.pos_f64() / 1e6,
                    faults: self.u() % (1 << 20),
                    spilled_objects: self.u() % (1 << 30),
                    spilled_bytes: ByteSize::from_bytes(self.u() % (1 << 40)),
                    spill_faults: self.u() % (1 << 30),
                    quota,
                })
            }
            _ => Response::Rejected(self.api_error(pick / 5)),
        }
    }
}

proptest! {
    #[test]
    fn request_round_trip_is_byte_exact(seed in 0u64..1_000_000, pick in 0u8..64) {
        let mut mill = Mill(seed);
        let now = SimTime::from_micros(mill.u() % (1 << 50));
        let request = mill.request(pick);
        let (tag, payload) = encode_request(now, &request);
        let (now2, decoded) = decode_request(tag, &payload).expect("valid payload decodes");
        prop_assert_eq!(now, now2);
        let (tag2, payload2) = encode_request(now2, &decoded);
        prop_assert_eq!(tag, tag2);
        prop_assert_eq!(payload, payload2);
    }

    #[test]
    fn response_round_trip_is_byte_exact(seed in 0u64..1_000_000, pick in 0u8..64) {
        let mut mill = Mill(seed);
        let response = mill.response(pick);
        let (tag, payload) = encode_response(&response);
        let decoded = decode_response(tag, &payload).expect("valid payload decodes");
        let (tag2, payload2) = encode_response(&decoded);
        prop_assert_eq!(tag, tag2);
        prop_assert_eq!(payload, payload2);
    }

    #[test]
    fn framing_round_trips_over_a_buffer(seed in 0u64..1_000_000, pick in 0u8..64) {
        let mut mill = Mill(seed);
        let now = SimTime::from_micros(mill.u() % (1 << 50));
        let (tag, payload) = encode_request(now, &mill.request(pick));
        let mut buf = Vec::new();
        write_frame(&mut buf, tag, &payload).expect("vec write");
        let mut cursor = buf.as_slice();
        let (tag2, payload2) = read_frame(&mut cursor)
            .expect("well-formed frame")
            .expect("not EOF");
        prop_assert_eq!(tag, tag2);
        prop_assert_eq!(payload, payload2);
        prop_assert_eq!(read_frame(&mut cursor).expect("clean EOF"), None);
    }
}

/// The worked hex examples in `docs/WIRE.md` §7, byte for byte.
#[test]
fn wire_md_worked_examples() {
    let (tag, payload) = encode_request(SimTime::from_micros(5000), &Request::Stats);
    let mut frame = Vec::new();
    write_frame(&mut frame, tag, &payload).expect("vec write");
    assert_eq!(frame, [0x02, 0x04, 0x02, 0x88, 0x27]);

    let (tag, payload) = encode_response(&Response::Rejected(ApiError::Overloaded {
        retry_after_hint: SimDuration::from_micros(1000),
    }));
    let mut frame = Vec::new();
    write_frame(&mut frame, tag, &payload).expect("vec write");
    assert_eq!(frame, [0x02, 0x85, 0x03, 0x06, 0xe8, 0x07]);

    let (tag, payload) = encode_response(&Response::Rejected(ApiError::Relocated {
        job: JobId::new(1),
        retry_after_hint: SimDuration::from_micros(1000),
    }));
    let mut frame = Vec::new();
    write_frame(&mut frame, tag, &payload).expect("vec write");
    assert_eq!(frame, [0x02, 0x85, 0x04, 0x07, 0x01, 0xe8, 0x07]);
}
