//! Socket integration: a real TCP round trip against the threaded front
//! door, asserting per-connection submission order under a 4-shard
//! executor, typed in-flight backpressure, and reset-free connection
//! limiting.

use flstore_core::api::{ApiError, Request, Response, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_net::client::NetClient;
use flstore_net::codec::encode_response;
use flstore_net::server::{NetServer, ServerConfig};
use flstore_net::wire::WireError;
use flstore_sim::time::SimTime;
use flstore_trace::driver::{materialize_schedule, TraceConfig};

fn store(job: u32) -> FlStore {
    let cfg = FlJobConfig::quick_test(JobId::new(job));
    FlStore::new(
        FlStoreConfig::for_model(&cfg.model),
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    )
}

fn schedule() -> Vec<(SimTime, Request)> {
    let job = FlJobConfig::quick_test(JobId::new(1));
    materialize_schedule(&job, &TraceConfig::smoke(23))
}

/// Pipelined responses over one connection arrive in submission order
/// and — served by a 4-shard executor — match a sequential in-process
/// drive of the identical schedule byte for byte.
#[test]
fn pipelined_responses_keep_submission_order_across_shards() {
    let schedule = schedule();

    // Ground truth: the same schedule through the same deployment,
    // submitted sequentially in-process.
    let mut reference: Box<dyn Service + Send> = Box::new(ShardedExecutor::new(vec![store(1)], 4));
    let expected: Vec<(u8, Vec<u8>)> = schedule
        .iter()
        .map(|(now, request)| encode_response(&reference.submit(*now, request.clone())))
        .collect();

    let server = NetServer::bind(
        Box::new(ShardedExecutor::new(vec![store(1)], 4)),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut client = NetClient::connect(&addr).expect("connect");
    for (now, request) in &schedule {
        client.send(*now, request).expect("pipelined send");
    }
    client.finish_sending().expect("half-close");
    for (i, expected_bytes) in expected.iter().enumerate() {
        let response = client
            .recv()
            .unwrap_or_else(|e| panic!("response {i}: {e}"));
        assert_eq!(
            &encode_response(&response),
            expected_bytes,
            "response {i} out of submission order or diverged from sequential serving"
        );
    }
    // Nothing extra on the wire.
    assert_eq!(
        client.recv().expect_err("stream ends"),
        WireError::Truncated
    );
    server.shutdown();
}

/// Requests past `max_inflight` are answered with typed Overloaded
/// envelopes in their submission-order slots; every request gets
/// exactly one response and the connection survives.
#[test]
fn inflight_overflow_is_typed_and_ordered() {
    let server = NetServer::bind(
        Box::new(store(1)),
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut client = NetClient::connect(&addr).expect("connect");
    let burst = 64usize;
    for i in 0..burst {
        client
            .send(SimTime::from_micros(i as u64), &Request::Stats)
            .expect("send");
    }
    let mut stats = 0usize;
    let mut overloaded = 0usize;
    for i in 0..burst {
        match client
            .recv()
            .unwrap_or_else(|e| panic!("response {i}: {e}"))
        {
            Response::Stats(_) => stats += 1,
            Response::Rejected(ApiError::Overloaded { .. }) => overloaded += 1,
            other => panic!("unexpected response {i}: {other:?}"),
        }
    }
    assert_eq!(
        stats + overloaded,
        burst,
        "every request answered exactly once"
    );
    assert!(stats >= 1, "at least the first request is admitted");

    // The connection is still usable after rejections.
    let response = client
        .call(SimTime::from_micros(burst as u64), &Request::Stats)
        .expect("post-burst call");
    assert!(matches!(
        response,
        Response::Stats(_) | Response::Rejected(ApiError::Overloaded { .. })
    ));
    server.shutdown();
}

/// Connections past `max_connections` receive one typed Overloaded
/// envelope and a clean EOF — never a reset.
#[test]
fn connection_limit_rejects_cleanly() {
    let server = NetServer::bind(
        Box::new(store(1)),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // First connection is admitted and served.
    let mut admitted = NetClient::connect(&addr).expect("connect");
    match admitted.call(SimTime::ZERO, &Request::Stats) {
        Ok(Response::Stats(_)) => {}
        other => panic!("admitted connection must be served, got {other:?}"),
    }

    // While it is held open, further connections get the typed envelope.
    for attempt in 0..3 {
        let mut rejected = NetClient::connect(&addr).expect("TCP accept still succeeds");
        match rejected.recv() {
            Ok(Response::Rejected(ApiError::Overloaded { retry_after_hint })) => {
                assert!(retry_after_hint.as_micros() > 0, "hint is populated");
            }
            other => panic!("attempt {attempt}: expected typed Overloaded, got {other:?}"),
        }
        // After the envelope: clean EOF, not a reset. A reset would
        // surface as WireError::Io(ConnectionReset).
        assert_eq!(
            rejected.recv().expect_err("server half-closed"),
            WireError::Truncated,
            "attempt {attempt}: over-limit close must be clean"
        );
    }
    drop(admitted);
    server.shutdown();
}
