//! Malformed-frame fuzzing: hostile bytes of every shape produce typed
//! [`WireError`]s — never a panic, never an allocation blow-up.

use proptest::prelude::*;

use flstore_core::api::Request;
use flstore_net::codec::{decode_request, decode_response, encode_request};
use flstore_net::wire::{
    read_frame, write_frame, WireError, MAX_FRAME_LEN, TAG_EVICT, TAG_INGEST, TAG_SERVE, TAG_STATS,
    WIRE_VERSION,
};
use flstore_sim::time::SimTime;

fn stats_frame() -> Vec<u8> {
    let (tag, payload) = encode_request(SimTime::from_micros(5000), &Request::Stats);
    let mut frame = Vec::new();
    write_frame(&mut frame, tag, &payload).expect("vec write");
    frame
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    let frame = stats_frame();
    for cut in 1..frame.len() {
        let mut cursor = &frame[..cut];
        let err = read_frame(&mut cursor).expect_err("truncated frame must fail");
        assert_eq!(err, WireError::Truncated, "cut at {cut}");
    }
    // Zero bytes is a clean close, not an error.
    let mut cursor: &[u8] = &[];
    assert_eq!(read_frame(&mut cursor).expect("clean EOF"), None);
}

#[test]
fn bad_version_and_unknown_tag_are_typed() {
    let mut frame = stats_frame();
    frame[0] = WIRE_VERSION + 1;
    let mut cursor = frame.as_slice();
    assert_eq!(
        read_frame(&mut cursor).expect_err("bad version"),
        WireError::BadVersion(WIRE_VERSION + 1)
    );

    let mut frame = stats_frame();
    frame[1] = 0x7f; // not in the FRAMES inventory
    let mut cursor = frame.as_slice();
    assert_eq!(
        read_frame(&mut cursor).expect_err("unknown tag"),
        WireError::UnknownTag(0x7f)
    );
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    // version, valid tag, then a varint length of 2^34 (> 64 MiB).
    let frame = [WIRE_VERSION, TAG_STATS, 0x80, 0x80, 0x80, 0x80, 0x40];
    let mut cursor = frame.as_slice();
    match read_frame(&mut cursor).expect_err("oversized length") {
        WireError::Oversized { declared, max } => {
            assert_eq!(declared, 1 << 34);
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn overlong_length_varint_is_rejected() {
    // Eleven continuation bytes can never terminate within the 10-byte
    // LEB128 budget for a u64.
    let mut frame = vec![WIRE_VERSION, TAG_STATS];
    frame.extend(std::iter::repeat_n(0x80u8, 10));
    frame.push(0x01);
    let mut cursor = frame.as_slice();
    assert_eq!(
        read_frame(&mut cursor).expect_err("overlong varint"),
        WireError::VarintOverflow
    );
}

#[test]
fn trailing_bytes_are_rejected() {
    let (tag, mut payload) = encode_request(SimTime::ZERO, &Request::Stats);
    payload.push(0xaa);
    assert_eq!(
        decode_request(tag, &payload).expect_err("trailing byte"),
        WireError::TrailingBytes { remaining: 1 }
    );
}

#[test]
fn p3_request_without_client_is_malformed() {
    // Hand-assemble a Serve payload: now, id, kind=Debugging (P3, tag
    // 2), job, round, client=None, window. The in-process constructor
    // asserts the invariant, so the decoder must reject it first.
    let payload = [
        0x00, // now
        0x01, // request id
        0x02, // kind tag: Debugging (P3 across rounds)
        0x01, // job
        0x05, // round
        0x00, // client: None
        0x04, // window
    ];
    match decode_request(TAG_SERVE, &payload) {
        Err(WireError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn hostile_scalar_bytes_are_malformed() {
    // A bool byte of 2 in an Evict key's client option.
    let payload = [0x00, 0x01, 0x05, 0x02, 0x00];
    assert!(matches!(
        decode_request(TAG_EVICT, &payload),
        Err(WireError::Malformed(_))
    ));
}

proptest! {
    /// Arbitrary garbage decodes to a typed error or a valid envelope —
    /// never a panic. (The decoder is total.)
    #[test]
    fn random_bytes_never_panic(
        tag in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let _ = decode_request(tag, &payload);
        let _ = decode_response(tag, &payload);
        let mut cursor = payload.as_slice();
        let _ = read_frame(&mut cursor);
    }

    /// Single-byte corruption of a real Ingest payload decodes to a
    /// typed error or a (different) valid envelope — never a panic,
    /// even though Ingest carries the deepest nested structures.
    #[test]
    fn corrupted_ingest_payload_never_panics(
        seed in 0u64..10_000,
        pos_pick in 0usize..4096,
        bit in 0u8..8,
    ) {
        let job = flstore_fl::job::FlJobConfig::quick_test(flstore_fl::ids::JobId::new(1));
        let record = flstore_fl::job::FlJobSim::new(job.clone())
            .next()
            .expect("one round");
        let request = Request::Ingest {
            job: job.job,
            record: std::sync::Arc::new(record),
        };
        let (tag, mut payload) = encode_request(SimTime::from_micros(seed), &request);
        let pos = pos_pick % payload.len();
        payload[pos] ^= 1 << bit;
        let _ = decode_request(tag, &payload);
        // Also feed the corrupted bytes to the response decoder: tags
        // disagree, so it must fail typed, and must not panic.
        let _ = decode_response(TAG_INGEST, &payload);
    }
}
