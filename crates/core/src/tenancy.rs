//! Multi-tenancy (paper Appendix A).
//!
//! The serverless paradigm isolates tenants by construction: each user (or
//! FL job) gets its own cache — its own functions, placement index, policy,
//! and persistent namespace — on one logical FLStore deployment.
//! [`MultiTenantStore`] routes rounds and requests to per-job [`FlStore`]
//! instances and aggregates billing, so operators see one system while
//! tenants cannot observe each other's data or interfere with each other's
//! caching policies.

use std::collections::BTreeMap;

use flstore_fl::ids::JobId;
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::MetaKey;
use flstore_fl::zoo::ModelArch;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::CostBreakdown;
use flstore_sim::time::SimTime;
use flstore_workloads::request::WorkloadRequest;

use crate::error::FlStoreError;
use crate::policy::{CachingPolicy, TailoredPolicy};
use crate::quota::{pressure_plan, QuotaUsage, TenantQuota};
use crate::store::{FlStore, FlStoreConfig, IngestReceipt, ServedRequest};

/// A multi-tenant FLStore front end: one isolated [`FlStore`] per job.
///
/// # Examples
///
/// ```
/// use flstore_core::tenancy::MultiTenantStore;
/// use flstore_core::store::FlStoreConfig;
/// use flstore_fl::ids::JobId;
/// use flstore_fl::zoo::ModelArch;
///
/// let mut front = MultiTenantStore::new(FlStoreConfig::for_model(&ModelArch::RESNET18));
/// front.register_job(JobId::new(1), ModelArch::RESNET18);
/// front.register_job(JobId::new(2), ModelArch::EFFICIENTNET_V2_S);
/// assert_eq!(front.tenant_count(), 2);
/// ```
#[derive(Debug)]
pub struct MultiTenantStore {
    template: FlStoreConfig,
    tenants: BTreeMap<JobId, FlStore>,
    /// Aggregate residency budget across all tenants; when exceeded, the
    /// pressure pass reclaims from over-budget *elastic* tenants. `None`
    /// disables cross-tenant pressure entirely.
    global_budget: Option<ByteSize>,
}

impl MultiTenantStore {
    /// Creates an empty front end; per-tenant deployments are derived from
    /// `template` (seeds are decorrelated per job).
    pub fn new(template: FlStoreConfig) -> Self {
        MultiTenantStore {
            template,
            tenants: BTreeMap::new(),
            global_budget: None,
        }
    }

    /// The aggregate residency budget, if cross-tenant pressure is armed.
    pub fn global_budget(&self) -> Option<ByteSize> {
        self.global_budget
    }

    /// Arms (or disarms, with `None`) the aggregate residency budget the
    /// pressure pass enforces at every system-wide stats probe.
    pub fn set_global_budget(&mut self, budget: Option<ByteSize>) {
        self.global_budget = budget;
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The configuration template per-tenant deployments derive from.
    pub fn template(&self) -> &FlStoreConfig {
        &self.template
    }

    /// Consumes the front end, yielding every tenant store in job order —
    /// the hand-off point for executors that distribute tenants across
    /// worker threads (each tenant is an isolated deployment, so ownership
    /// of a tenant is ownership of its whole serving state).
    pub fn into_tenants(self) -> Vec<(JobId, FlStore)> {
        self.tenants.into_iter().collect()
    }

    /// Adopts an existing deployment as the tenant for its own job
    /// (the inverse of [`MultiTenantStore::into_tenants`]).
    ///
    /// # Errors
    ///
    /// If the job is already registered the deployment is handed back
    /// untouched — nothing is dropped or replaced.
    // The large Err variant IS the point: the rejected deployment (cache,
    // ledger, platform — state that must not be silently dropped) returns
    // to the caller by value, exactly as `into_tenants` handed it out.
    #[allow(clippy::result_large_err)]
    pub fn adopt(&mut self, store: FlStore) -> Result<(), FlStore> {
        let job = store.catalog().job();
        if self.tenants.contains_key(&job) {
            return Err(store);
        }
        self.tenants.insert(job, store);
        Ok(())
    }

    /// Registered job ids, in order.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.tenants.keys().copied()
    }

    /// Registers a tenant job with the default tailored policy and the
    /// template's quota (if any). Replaces nothing if the job already
    /// exists (returns false).
    pub fn register_job(&mut self, job: JobId, model: ModelArch) -> bool {
        let quota = self.template.quota;
        self.register_job_configured(job, model, Box::new(TailoredPolicy::new()), quota)
    }

    /// Registers a tenant with a custom caching policy — each tenant may
    /// tune caching to its own workloads (paper Appendix A). The quota
    /// follows the template.
    pub fn register_job_with_policy(
        &mut self,
        job: JobId,
        model: ModelArch,
        policy: Box<dyn CachingPolicy>,
    ) -> bool {
        let quota = self.template.quota;
        self.register_job_configured(job, model, policy, quota)
    }

    /// Registers a tenant with its own memory budget (overriding the
    /// template's; `None` leaves the tenant unbounded) and the default
    /// tailored policy.
    pub fn register_job_with_quota(
        &mut self,
        job: JobId,
        model: ModelArch,
        quota: Option<TenantQuota>,
    ) -> bool {
        self.register_job_configured(job, model, Box::new(TailoredPolicy::new()), quota)
    }

    /// Full-control registration: custom caching policy and per-tenant
    /// quota.
    pub fn register_job_configured(
        &mut self,
        job: JobId,
        model: ModelArch,
        policy: Box<dyn CachingPolicy>,
        quota: Option<TenantQuota>,
    ) -> bool {
        if self.tenants.contains_key(&job) {
            return false;
        }
        let mut cfg = self.template.clone();
        // Decorrelate platform randomness across tenants.
        cfg.seed ^= 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(job.as_u32()) + 1);
        // Function sizing follows each tenant's model, as in single-tenant
        // deployments.
        cfg.function_config = FlStoreConfig::for_model(&model).function_config;
        cfg.quota = quota;
        self.tenants
            .insert(job, FlStore::new(cfg, policy, job, model));
        true
    }

    /// Borrows a tenant's store.
    pub fn tenant(&self, job: JobId) -> Option<&FlStore> {
        self.tenants.get(&job)
    }

    /// Mutably borrows a tenant's store (the front-door routing hook).
    pub fn tenant_mut(&mut self, job: JobId) -> Option<&mut FlStore> {
        self.tenants.get_mut(&job)
    }

    /// Iterates over every tenant store, in job order.
    pub fn tenants(&self) -> impl Iterator<Item = &FlStore> {
        self.tenants.values()
    }

    /// Mutably iterates over every tenant store, in job order.
    pub fn tenants_mut(&mut self) -> impl Iterator<Item = &mut FlStore> {
        self.tenants.values_mut()
    }

    /// Ingests a round into its job's tenant.
    ///
    /// # Errors
    ///
    /// Returns [`FlStoreError::UnknownJob`] if the round belongs to an
    /// unregistered job — an admission failure carrying the offending job,
    /// exactly what the typed front door reports, never a synthesized
    /// request id.
    pub fn ingest_round(
        &mut self,
        now: SimTime,
        job: JobId,
        record: &RoundRecord,
    ) -> Result<IngestReceipt, FlStoreError> {
        match self.tenants.get_mut(&job) {
            Some(store) => Ok(store.ingest_round(now, record)),
            None => Err(FlStoreError::UnknownJob { job }),
        }
    }

    /// Routes a request to its job's tenant.
    ///
    /// # Errors
    ///
    /// Returns [`FlStoreError::UnknownJob`] for unregistered jobs (the
    /// same admission semantics as the typed front door), or whatever the
    /// tenant store returns.
    pub fn serve(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
    ) -> Result<ServedRequest, FlStoreError> {
        match self.tenants.get_mut(&request.job) {
            Some(store) => store.serve(now, request),
            None => Err(FlStoreError::UnknownJob { job: request.job }),
        }
    }

    /// Aggregate cost across tenants over the window ending at `now`.
    pub fn total_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.tenants.values_mut().map(|s| s.total_cost(now)).sum()
    }

    /// Per-tenant quota occupancy rows, in job order.
    pub fn quota_usages(&self) -> Vec<QuotaUsage> {
        self.tenants().map(|s| s.quota_usage()).collect()
    }

    /// Runs one deterministic cross-tenant pressure pass: when the
    /// aggregate resident front exceeds the global budget, the
    /// most-over-budget *elastic* tenants shed their own policy victims
    /// (computed by [`pressure_plan`], applied in plan order) until the
    /// excess is reclaimed or no elastic overage remains. Returns the full
    /// `(job, key)` victim sequence — identical run-to-run for identical
    /// traffic, which is what keeps the figure harness byte-stable.
    ///
    /// No-op (and empty) without a global budget.
    pub fn pressure_pass(&mut self) -> Vec<(JobId, MetaKey)> {
        let Some(global) = self.global_budget else {
            return Vec::new();
        };
        let plan = pressure_plan(&self.quota_usages(), global);
        let mut evicted = Vec::new();
        for (job, need) in plan {
            if let Some(store) = self.tenants.get_mut(&job) {
                for key in store.reclaim(need) {
                    evicted.push((job, key));
                }
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
    use flstore_sim::time::SimDuration;
    use flstore_workloads::request::RequestId;
    use flstore_workloads::taxonomy::WorkloadKind;

    fn template() -> FlStoreConfig {
        FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            ..FlStoreConfig::for_model(&ModelArch::RESNET18)
        }
    }

    fn run_job(front: &mut MultiTenantStore, job: JobId) -> flstore_fl::ids::Round {
        let cfg = FlJobConfig {
            rounds: 5,
            ..FlJobConfig::quick_test(job)
        };
        front.register_job(job, cfg.model);
        let mut now = SimTime::ZERO;
        let mut last = flstore_fl::ids::Round::ZERO;
        for record in FlJobSim::new(cfg) {
            front.ingest_round(now, job, &record).expect("registered");
            last = record.round;
            now += SimDuration::from_secs(60);
        }
        last
    }

    #[test]
    fn tenants_are_isolated() {
        let mut front = MultiTenantStore::new(template());
        let last1 = run_job(&mut front, JobId::new(1));
        let last2 = run_job(&mut front, JobId::new(2));

        // Each tenant serves its own job's data.
        for (job, round) in [(JobId::new(1), last1), (JobId::new(2), last2)] {
            let req = WorkloadRequest::new(
                RequestId::new(job.as_u32() as u64),
                WorkloadKind::MaliciousFiltering,
                job,
                round,
                None,
            );
            let served = front
                .serve(SimTime::from_secs(3600), &req)
                .expect("servable");
            assert_eq!(served.measured.cache_misses, 0);
        }

        // One tenant's cache holds only its own objects.
        let t1 = front.tenant(JobId::new(1)).expect("registered");
        for key in t1.engine().keys() {
            assert_eq!(
                key.job,
                JobId::new(1),
                "foreign object in tenant cache: {key}"
            );
        }
        // Tenants do not share functions.
        assert!(t1.platform().instance_count() > 0);
    }

    #[test]
    fn into_tenants_and_adopt_round_trip() {
        let mut front = MultiTenantStore::new(template());
        let last1 = run_job(&mut front, JobId::new(1));
        run_job(&mut front, JobId::new(2));
        let tmpl = front.template().clone();

        // Split the front end into owned deployments (the executor
        // hand-off) and rebuild an identical front from the parts.
        let tenants = front.into_tenants();
        assert_eq!(
            tenants.iter().map(|(j, _)| *j).collect::<Vec<_>>(),
            vec![JobId::new(1), JobId::new(2)]
        );
        let mut rebuilt = MultiTenantStore::new(tmpl);
        for (job, store) in tenants {
            assert_eq!(store.catalog().job(), job);
            rebuilt.adopt(store).expect("jobs are distinct");
        }
        assert_eq!(rebuilt.tenant_count(), 2);

        // The rebuilt front serves exactly what the original did.
        let req = WorkloadRequest::new(
            RequestId::new(9),
            WorkloadKind::MaliciousFiltering,
            JobId::new(1),
            last1,
            None,
        );
        let served = rebuilt
            .serve(SimTime::from_secs(3600), &req)
            .expect("tenant state survived the round trip");
        assert_eq!(served.measured.cache_misses, 0);

        // Adopting a duplicate hands the deployment back untouched.
        let extra = {
            let mut solo = MultiTenantStore::new(template());
            run_job(&mut solo, JobId::new(1));
            solo.into_tenants().remove(0).1
        };
        let extra_served = extra.ledger().len();
        let returned = rebuilt.adopt(extra).expect_err("job 1 already registered");
        assert_eq!(returned.catalog().job(), JobId::new(1));
        assert_eq!(returned.ledger().len(), extra_served);
        assert_eq!(rebuilt.tenant_count(), 2);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut front = MultiTenantStore::new(template());
        assert!(front.register_job(JobId::new(1), ModelArch::RESNET18));
        assert!(!front.register_job(JobId::new(1), ModelArch::SWIN_V2_TINY));
        assert_eq!(front.tenant_count(), 1);
        assert_eq!(front.jobs().collect::<Vec<_>>(), vec![JobId::new(1)]);
    }

    #[test]
    fn unregistered_job_is_an_error() {
        let mut front = MultiTenantStore::new(template());
        let req = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::Inference,
            JobId::new(42),
            flstore_fl::ids::Round::ZERO,
            None,
        );
        assert_eq!(
            front.serve(SimTime::ZERO, &req).unwrap_err(),
            FlStoreError::UnknownJob {
                job: JobId::new(42)
            }
        );
        // The ingest path reports the same honest admission failure — and
        // never a synthesized request id.
        let cfg = FlJobConfig::quick_test(JobId::new(42));
        let record = FlJobSim::new(cfg).next().expect("one round");
        assert_eq!(
            front
                .ingest_round(SimTime::ZERO, JobId::new(42), &record)
                .unwrap_err(),
            FlStoreError::UnknownJob {
                job: JobId::new(42)
            }
        );
    }

    #[test]
    fn total_cost_sums_tenants() {
        let mut front = MultiTenantStore::new(template());
        run_job(&mut front, JobId::new(1));
        run_job(&mut front, JobId::new(2));
        let end = SimTime::from_secs(7200);
        let total = front.total_cost(end);
        let t1 = {
            let mut solo = MultiTenantStore::new(template());
            run_job(&mut solo, JobId::new(1));
            solo.total_cost(end)
        };
        assert!(total.total() > t1.total(), "two tenants cost more than one");
    }

    #[test]
    fn function_sizing_follows_tenant_model() {
        let mut front = MultiTenantStore::new(template());
        front.register_job(JobId::new(1), ModelArch::MOBILENET_V3_SMALL);
        front.register_job(JobId::new(2), ModelArch::SWIN_V2_TINY);
        // Ingest one round each so functions spawn.
        for job in [JobId::new(1), JobId::new(2)] {
            let model = if job == JobId::new(1) {
                ModelArch::MOBILENET_V3_SMALL
            } else {
                ModelArch::SWIN_V2_TINY
            };
            let cfg = FlJobConfig {
                rounds: 1,
                model,
                ..FlJobConfig::quick_test(job)
            };
            let record = FlJobSim::new(cfg).next().expect("one round");
            front
                .ingest_round(SimTime::ZERO, job, &record)
                .expect("registered");
        }
        let small = front.tenant(JobId::new(1)).expect("t1");
        let large = front.tenant(JobId::new(2)).expect("t2");
        let small_mem = small
            .platform()
            .instance(small.platform().instance_ids()[0])
            .expect("spawned")
            .config()
            .memory;
        let large_mem = large
            .platform()
            .instance(large.platform().instance_ids()[0])
            .expect("spawned")
            .config()
            .memory;
        assert!(large_mem > small_mem, "Swin tenant gets bigger functions");
    }
}
