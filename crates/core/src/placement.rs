//! The placement boundary: one replica-repair algorithm for every
//! serving topology.
//!
//! FLStore keeps cached objects replicated across holders — serverless
//! function instances inside a single [`FlStore`](crate::store::FlStore),
//! or whole store nodes inside a `flstore-cluster` deployment. When a
//! holder is lost (platform reclamation, simulated node kill), the same
//! repair discipline applies regardless of the layer:
//!
//! 1. enumerate the placement units the lost holder carried, in a
//!    deterministic (sorted) order,
//! 2. drop the holder from the placement index,
//! 3. for each affected unit, copy from the first surviving replica back
//!    up to the target factor — or record the unit as orphaned when no
//!    survivor remains (the next layer down is the fallback).
//!
//! [`PlacementMap`] is the trait boundary that lets
//! [`repair_after_loss`] implement those steps once. The single-store
//! path (`FlStore::handle_reclaimed`, where holders are
//! [`FunctionId`](flstore_serverless::function::FunctionId)s and units
//! are [`MetaKey`](flstore_fl::metadata::MetaKey)s) is the 1-node case;
//! the cluster path (holders are store nodes, units are whole jobs)
//! reuses the identical control flow, so failover/re-replication
//! semantics cannot drift between the layers.

use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

use std::fmt::Debug;

/// A replicated placement index that can lose a holder and repair from
/// survivors. See the [module docs](self) for the shared repair
/// discipline this abstracts.
pub trait PlacementMap {
    /// Something that holds replicas: a function instance in the
    /// single-store case, a store node in the cluster case.
    type Holder: Copy + Ord + Debug;
    /// The unit of placement and repair: a [`MetaKey`] per-object in the
    /// single-store case, a whole job in the cluster case.
    ///
    /// [`MetaKey`]: flstore_fl::metadata::MetaKey
    type Unit: Ord + Clone + Debug;

    /// Every unit with a replica on `holder`. Order does not matter —
    /// [`repair_after_loss`] sorts before repairing so placement never
    /// depends on hash-map iteration order.
    fn units_on(&self, holder: Self::Holder) -> Vec<Self::Unit>;

    /// Removes `holder` from the placement index. Units left with zero
    /// replicas stay indexed as orphaned until repaired or dropped by the
    /// implementation's own bookkeeping.
    fn drop_holder(&mut self, holder: Self::Holder);

    /// The surviving replica holders of `unit`, best copy-source first.
    /// Empty when the unit is orphaned.
    fn survivors(&self, unit: &Self::Unit) -> Vec<Self::Holder>;

    /// Copies `unit` from `source` onto a replacement holder chosen by
    /// the implementation (the lost holder's ring in the single-store
    /// case, the lowest-index spare node in the cluster case), billing
    /// whatever the layer bills for repair traffic. Returns the bytes
    /// copied, or `None` when no replacement could take the unit (it
    /// stays at reduced redundancy; lower layers remain the fallback).
    fn replicate(
        &mut self,
        now: SimTime,
        unit: &Self::Unit,
        source: Self::Holder,
        lost: Self::Holder,
    ) -> Option<ByteSize>;
}

/// What a [`repair_after_loss`] pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Units copied back up from a survivor.
    pub repaired: usize,
    /// Units left with no replica (or no placement capacity): served from
    /// the fallback layer on next access.
    pub orphaned: usize,
    /// Total bytes moved by the repair copies.
    pub bytes_copied: ByteSize,
}

/// Repairs a [`PlacementMap`] after losing `lost`: drops the holder,
/// then re-replicates every affected unit from its first survivor, in
/// sorted unit order so repair placement is deterministic.
pub fn repair_after_loss<P: PlacementMap + ?Sized>(
    map: &mut P,
    now: SimTime,
    lost: P::Holder,
) -> RepairReport {
    let mut affected = map.units_on(lost);
    // Repair in unit order: units may come out of a hash map, and repair
    // placement (first-fit) must not depend on its iteration order.
    affected.sort_unstable();
    map.drop_holder(lost);
    let mut report = RepairReport::default();
    for unit in affected {
        let Some(source) = map.survivors(&unit).first().copied() else {
            report.orphaned += 1;
            continue;
        };
        match map.replicate(now, &unit, source, lost) {
            Some(bytes) => {
                report.repaired += 1;
                report.bytes_copied += bytes;
            }
            None => report.orphaned += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::BTreeMap;

    /// A toy map: unit → replica holders, with a fixed spare holder that
    /// accepts up to `spare_capacity` repairs.
    struct ToyMap {
        placements: BTreeMap<u32, Vec<u8>>,
        spare: u8,
        spare_capacity: usize,
        unit_bytes: u64,
    }

    impl PlacementMap for ToyMap {
        type Holder = u8;
        type Unit = u32;

        fn units_on(&self, holder: u8) -> Vec<u32> {
            self.placements
                .iter()
                .filter(|(_, holders)| holders.contains(&holder))
                .map(|(unit, _)| *unit)
                .collect()
        }

        fn drop_holder(&mut self, holder: u8) {
            for holders in self.placements.values_mut() {
                holders.retain(|h| *h != holder);
            }
        }

        fn survivors(&self, unit: &u32) -> Vec<u8> {
            self.placements.get(unit).cloned().unwrap_or_default()
        }

        fn replicate(
            &mut self,
            _now: SimTime,
            unit: &u32,
            _source: u8,
            _lost: u8,
        ) -> Option<ByteSize> {
            if self.spare_capacity == 0 {
                return None;
            }
            self.spare_capacity -= 1;
            let spare = self.spare;
            self.placements.entry(*unit).or_default().push(spare);
            Some(ByteSize::from_bytes(self.unit_bytes))
        }
    }

    fn toy() -> ToyMap {
        ToyMap {
            placements: BTreeMap::from([(1, vec![0, 1]), (2, vec![0]), (3, vec![1, 2])]),
            spare: 9,
            spare_capacity: usize::MAX,
            unit_bytes: 10,
        }
    }

    #[test]
    fn repairs_from_survivors_and_counts_orphans() {
        let mut map = toy();
        let report = repair_after_loss(&mut map, SimTime::ZERO, 0);
        // Unit 1 had survivor 1 → repaired; unit 2 had no survivor →
        // orphaned; unit 3 never referenced holder 0 → untouched.
        assert_eq!(report.repaired, 1);
        assert_eq!(report.orphaned, 1);
        assert_eq!(report.bytes_copied, ByteSize::from_bytes(10));
        assert_eq!(map.placements[&1], vec![1, 9]);
        assert!(map.placements[&2].is_empty());
        assert_eq!(map.placements[&3], vec![1, 2]);
    }

    #[test]
    fn capacity_exhaustion_counts_as_orphaned() {
        let mut map = toy();
        map.placements.insert(4, vec![0, 2]);
        map.spare_capacity = 1;
        let report = repair_after_loss(&mut map, SimTime::ZERO, 0);
        // Units 1 and 4 both want repair; only one spare slot exists and
        // sorted order means unit 1 wins deterministically.
        assert_eq!(report.repaired, 1);
        assert_eq!(report.orphaned, 2); // unit 2 (no survivor) + unit 4 (no capacity)
        assert_eq!(map.placements[&1], vec![1, 9]);
        assert_eq!(map.placements[&4], vec![2]);
    }

    #[test]
    fn losing_an_unknown_holder_is_a_no_op() {
        let mut map = toy();
        let report = repair_after_loss(&mut map, SimTime::ZERO, 7);
        assert_eq!(report, RepairReport::default());
        assert_eq!(map.placements.len(), 3);
    }
}
