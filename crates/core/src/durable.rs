//! The durability seam: what the store logs, spills, and snapshots.
//!
//! `flstore-core` stays free of file I/O. Instead the store exposes two
//! narrow traits that a durability backend (the `flstore-durability`
//! crate) implements against real disks:
//!
//! * [`RecordSink`] — receives every state-mutating envelope the store
//!   executes ([`LedgerEvent`]), in execution order, *before* the mutation
//!   runs (write-ahead discipline). A sink that persists these events can
//!   replay them through the same public methods and arrive at a
//!   bit-identical store.
//! * [`SpillBackend`] — the cold tier. Quota/capacity pressure victims
//!   hand their encoded bytes here instead of being dropped; a later miss
//!   faults them back without touching the (slow, billed) object store.
//!
//! Both hooks are optional (`None` by default) and carry **zero behavior
//! change when absent**: the store's envelope execution, costs, and
//! ledger are identical with and without a sink attached, and identical
//! with spill disabled — properties the batch-equivalence suite pins.
//!
//! [`StateDigest`] is the compact integrity fingerprint a sink embeds in
//! snapshot records so recovery can verify replay landed on the same
//! state the pre-crash store had.

use std::fmt;

use serde::{Deserialize, Serialize};

use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::MetaKey;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::CostBreakdown;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::WorkloadRequest;

/// Durability knobs carried by `FlStoreConfig`.
///
/// The defaults (`DurabilityConfig::DISABLED`) turn every feature off:
/// no ledger is written, nothing spills, and the store behaves exactly
/// as it did before the durability plane existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Group-commit width: flush + sync the ledger after this many
    /// appended records. `1` syncs every record (most durable, slowest);
    /// larger values batch the fsync.
    pub flush_every: u32,
    /// Seal the active ledger segment into a snapshot-delimited segment
    /// after this many records. `0` disables automatic sealing (segments
    /// are sealed only on explicit request).
    pub snapshot_every: u32,
    /// Whether pressure victims spill their encoded bytes to the cold
    /// tier instead of being dropped.
    pub spill: bool,
    /// Modeled latency of faulting one spilled object back from local
    /// disk — charged per object on the serve path, well under the
    /// object-store round trip it replaces.
    pub spill_read_latency: SimDuration,
}

impl DurabilityConfig {
    /// Everything off: no ledger, no spill. The store behaves exactly as
    /// an undurable one.
    pub const DISABLED: DurabilityConfig = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 0,
        spill: false,
        spill_read_latency: SimDuration::from_micros(150),
    };
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig::DISABLED
    }
}

/// One state-mutating envelope, as the store is about to execute it.
///
/// The variants mirror the store's public mutating surface: every way
/// state can change arrives through exactly one of these, so a sink that
/// persists them all can reconstruct the store by replaying them in
/// order through the same public methods.
#[derive(Debug)]
pub enum LedgerEvent<'a> {
    /// `FlStore::ingest_round(now, record)`.
    Ingest {
        /// Ingest time.
        now: SimTime,
        /// The round being ingested.
        record: &'a RoundRecord,
    },
    /// `FlStore::serve(now, request)` — serves mutate cache state
    /// (recency, frequency, miss-path admissions), so they are part of
    /// the replayed history.
    Serve {
        /// Serve time.
        now: SimTime,
        /// The request served.
        request: &'a WorkloadRequest,
    },
    /// `FlStore::serve_batch(now, requests)` — one record for the whole
    /// batch, preserving the exact batch shape (fault attribution is
    /// batch-scoped).
    ServeBatch {
        /// Batch serve time.
        now: SimTime,
        /// The requests in batch order.
        requests: &'a [WorkloadRequest],
    },
    /// `FlStore::evict(key)` — an explicit eviction envelope.
    Evict {
        /// The evicted key.
        key: &'a MetaKey,
    },
    /// `FlStore::reclaim(need)` — an externally requested reclamation
    /// (the cross-tenant pressure pass, the executor's reclaim RPC).
    /// Internal reclaims triggered by admission are *not* logged: they
    /// are deterministic consequences of the envelopes above.
    Reclaim {
        /// Bytes the caller asked to shed.
        need: ByteSize,
    },
}

/// Compact integrity fingerprint of a store's durable state.
///
/// Embedded in snapshot (segment-seal) records; recovery recomputes it
/// after replaying each segment and refuses to proceed on mismatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDigest {
    /// One line per cached key, sorted: key identity plus the policy-
    /// relevant metadata (sequence numbers, frequency, size, placement).
    pub rows: Vec<String>,
    /// Decoded-value-layer residency.
    pub resident: ByteSize,
    /// Requests served so far.
    pub served: usize,
    /// Function faults observed so far.
    pub faults: u64,
    /// Accrued background (storage at rest) cost.
    pub background_cost: CostBreakdown,
}

/// Receives the store's state-mutating envelopes, write-ahead.
///
/// The store calls [`RecordSink::append`] immediately *before* executing
/// each mutating envelope, asks [`RecordSink::should_seal`] after, and
/// hands over a fresh [`StateDigest`] when the sink wants to seal the
/// active segment. Implementations own their flush/sync cadence.
pub trait RecordSink: Send + fmt::Debug {
    /// Persist one event. Called before the mutation executes.
    fn append(&mut self, event: LedgerEvent<'_>);
    /// Whether the active segment has grown enough to seal.
    fn should_seal(&self) -> bool;
    /// Seal the active segment, stamping it with the store's current
    /// digest (computed *after* the last appended event executed).
    fn seal(&mut self, digest: &StateDigest);
    /// Flush and sync any buffered records now.
    fn flush(&mut self);
}

/// The cold tier: holds encoded bytes for pressure victims.
///
/// Keys are full `MetaKey`s; payloads are the victim's encoded bytes and
/// its logical (pre-framing) size, exactly what the cache needs to
/// re-admit the object on fault-back.
pub trait SpillBackend: Send + fmt::Debug {
    /// Store a victim's encoded payload. Overwrites any prior spill of
    /// the same key.
    fn spill(&mut self, key: &MetaKey, payload: &[u8], logical: ByteSize);
    /// Fetch a spilled payload back, removing it from the tier.
    /// Returns the payload and its logical size.
    fn fetch(&mut self, key: &MetaKey) -> Option<(Vec<u8>, ByteSize)>;
    /// Drop a spilled entry without reading it (the object became
    /// obsolete — it must not be faulted back).
    fn discard(&mut self, key: &MetaKey);
    /// `(objects currently spilled, logical bytes currently spilled)`.
    fn stats(&self) -> (u64, ByteSize);
}
