//! Per-tenant memory quotas and the cross-tenant pressure plane (paper
//! Appendix A: multi-tenancy *with* resource governance).
//!
//! A [`TenantQuota`] bounds how much cache residency one tenant's
//! deployment may hold — the sum of its logical cached bytes and its
//! decoded-value-layer residency (`FlStore::resident_bytes`). Two
//! enforcement disciplines exist:
//!
//! * [`QuotaPolicy::Strict`] — a hard bound enforced *inside* the tenant's
//!   own deployment: admission past the budget first evicts the tenant's
//!   own policy victims, and refuses the object if that cannot make room.
//!   A strict tenant never ends an operation over budget, and its
//!   evictions touch only its own keys.
//! * [`QuotaPolicy::Elastic`] — a soft bound: the tenant may overshoot,
//!   but when the *aggregate* front end exceeds its global budget, the
//!   cross-tenant pressure pass ([`pressure_plan`]) reclaims from the
//!   most-over-budget elastic tenants first.
//!
//! The pressure pass is deterministic by construction: the plan is a pure
//! function of the per-tenant [`QuotaUsage`] rows (ordered by overage,
//! ties broken on `JobId`), and each tenant's reclamation delegates to its
//! `CachingPolicy::victims`, which orders victims by full `MetaKey`. Two
//! runs over the same traffic produce identical victim sequences — the
//! property the figure harness's byte-diff gate relies on.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use flstore_fl::ids::JobId;
use flstore_sim::bytes::ByteSize;

/// How a tenant's budget is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuotaPolicy {
    /// Hard bound: never admit past the budget; shed own victims to make
    /// room, refuse what still cannot fit.
    Strict,
    /// Soft bound: admit freely; the cross-tenant pressure pass reclaims
    /// from over-budget elastic tenants when the global budget is hit.
    Elastic,
}

/// A per-tenant memory budget.
///
/// # Examples
///
/// ```
/// use flstore_core::quota::{QuotaPolicy, TenantQuota};
/// use flstore_sim::bytes::ByteSize;
///
/// let q = TenantQuota::strict(ByteSize::from_gb(2));
/// assert_eq!(q.policy, QuotaPolicy::Strict);
/// assert!(TenantQuota::elastic(ByteSize::from_gb(2)).bytes == q.bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Budgeted resident bytes (logical cached bytes + decoded-layer
    /// residency).
    pub bytes: ByteSize,
    /// Enforcement discipline.
    pub policy: QuotaPolicy,
}

impl TenantQuota {
    /// A hard budget.
    pub fn strict(bytes: ByteSize) -> Self {
        TenantQuota {
            bytes,
            policy: QuotaPolicy::Strict,
        }
    }

    /// A soft budget reclaimed under global pressure.
    pub fn elastic(bytes: ByteSize) -> Self {
        TenantQuota {
            bytes,
            policy: QuotaPolicy::Elastic,
        }
    }
}

/// One tenant's point-in-time quota occupancy (carried by
/// `Request::Stats` responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaUsage {
    /// The tenant.
    pub job: JobId,
    /// Resident bytes right now (logical cached + decoded layer).
    pub resident: ByteSize,
    /// The configured budget, if any.
    pub quota: Option<TenantQuota>,
}

impl QuotaUsage {
    /// How far an *elastic* tenant is over its budget (`ZERO` for strict,
    /// unquota'd, or within-budget tenants) — the quantity the pressure
    /// plan ranks tenants by.
    pub fn elastic_overage(&self) -> ByteSize {
        match self.quota {
            Some(q) if q.policy == QuotaPolicy::Elastic => self.resident.saturating_sub(q.bytes),
            _ => ByteSize::ZERO,
        }
    }
}

/// Atomic byte accounting with CAS admission.
///
/// The gate tracks a tenant's occupancy — committed resident bytes plus
/// outstanding admission reservations — in a single atomic, so the
/// admission check *is* the reservation: [`try_admit`] compares and
/// reserves in one compare-exchange, and a concurrent admitter can never
/// read a stale occupancy between its check and its charge (the TOCTOU
/// the split check-then-insert design would allow).
///
/// Byte-flow protocol:
///
/// * [`try_admit`]`(size, budget)` — CAS-reserve `size` iff
///   `occupancy + size <= budget`.
/// * [`charge`]`(size)` — bytes became resident; consumes a matching
///   reservation first so admitted bytes are never counted twice.
/// * [`credit`]`(size)` — resident bytes left (eviction, invalidation).
/// * [`settle`] — drop dangling reservations (an admitted object whose
///   placement found no ring never charges; settling restores the
///   invariant that occupancy equals residency between operations).
///
/// All orderings are `Relaxed`: the counters themselves carry the whole
/// protocol — no other memory is published through them (cache contents
/// are owned by the engine's key-shards and synchronized by `&mut`
/// access), so the RMW atomicity of each operation is sufficient and no
/// acquire/release edge is needed.
///
/// [`try_admit`]: AdmissionGate::try_admit
/// [`charge`]: AdmissionGate::charge
/// [`credit`]: AdmissionGate::credit
/// [`settle`]: AdmissionGate::settle
#[derive(Debug, Default)]
pub struct AdmissionGate {
    /// Committed resident bytes plus outstanding reservations.
    occupancy: AtomicU64,
    /// Outstanding reservations (subset of `occupancy`).
    reserved: AtomicU64,
}

impl AdmissionGate {
    /// An empty gate.
    pub fn new() -> Self {
        AdmissionGate::default()
    }

    /// Current occupancy: committed bytes plus outstanding reservations.
    pub fn occupancy(&self) -> ByteSize {
        // Relaxed: a point-in-time byte count guards no other memory.
        ByteSize::from_bytes(self.occupancy.load(Ordering::Relaxed))
    }

    /// Atomically reserves `size` iff it fits under `budget`.
    ///
    /// The reservation is held until a matching [`charge`](Self::charge)
    /// commits it or [`settle`](Self::settle) releases it.
    pub fn try_admit(&self, size: ByteSize, budget: ByteSize) -> bool {
        let size = size.as_bytes();
        let budget = budget.as_bytes();
        // Relaxed CAS: admission races only over these counters; the
        // RMW's atomicity alone rules out two admitters both fitting in
        // the same headroom.
        let admitted = self
            .occupancy
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |occ| {
                occ.checked_add(size).filter(|&next| next <= budget)
            })
            .is_ok();
        if admitted {
            self.reserved.fetch_add(size, Ordering::Relaxed);
        }
        admitted
    }

    /// Records `size` bytes becoming resident, consuming any outstanding
    /// reservation first so admitted-then-charged bytes count once.
    pub fn charge(&self, size: ByteSize) {
        let size = size.as_bytes();
        let mut consumed = 0;
        // Relaxed RMW: only the counter value is contended (see type docs).
        let _ = self
            .reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                consumed = r.min(size);
                Some(r - consumed)
            });
        self.occupancy.fetch_add(size - consumed, Ordering::Relaxed);
    }

    /// Records `size` resident bytes leaving (eviction, invalidation,
    /// overwrite of a previous entry).
    pub fn credit(&self, size: ByteSize) {
        // Relaxed: byte counter only; saturate rather than wrap if a
        // caller over-credits.
        let size = size.as_bytes();
        let _ = self
            .occupancy
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |occ| {
                Some(occ.saturating_sub(size))
            });
    }

    /// Releases every outstanding reservation, returning how many bytes
    /// were dangling. Zero between well-formed operations.
    pub fn settle(&self) -> ByteSize {
        // Relaxed swap: reconciliation over the counters themselves.
        let dangling = self.reserved.swap(0, Ordering::Relaxed);
        let _ = self
            .occupancy
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |occ| {
                Some(occ.saturating_sub(dangling))
            });
        ByteSize::from_bytes(dangling)
    }
}

impl Clone for AdmissionGate {
    fn clone(&self) -> Self {
        // Relaxed: cloning a quiescent gate (no concurrent admitters) for
        // store snapshots/recovery; counter values are the whole state.
        AdmissionGate {
            occupancy: AtomicU64::new(self.occupancy.load(Ordering::Relaxed)),
            reserved: AtomicU64::new(self.reserved.load(Ordering::Relaxed)),
        }
    }
}

/// Computes the deterministic cross-tenant reclamation plan: how many
/// bytes each elastic over-budget tenant must shed so the aggregate front
/// returns to `global_budget`.
///
/// The plan asks the most-over-budget tenants first (ties broken on
/// `JobId`, ascending) and never asks a tenant for more than its own
/// overage — strict tenants are already bounded by construction and
/// unquota'd tenants are exempt, so if the excess exceeds the elastic
/// overages the plan reclaims what it can and stops. Pure function of its
/// inputs: the same usages always produce the same plan, on every shard
/// layout and every run.
pub fn pressure_plan(usages: &[QuotaUsage], global_budget: ByteSize) -> Vec<(JobId, ByteSize)> {
    let total: ByteSize = usages.iter().map(|u| u.resident).sum();
    let mut excess = total.saturating_sub(global_budget);
    if excess == ByteSize::ZERO {
        return Vec::new();
    }
    let mut overs: Vec<(JobId, ByteSize)> = usages
        .iter()
        .map(|u| (u.job, u.elastic_overage()))
        .filter(|(_, overage)| *overage > ByteSize::ZERO)
        .collect();
    overs.sort_by(|(aj, ao), (bj, bo)| bo.cmp(ao).then(aj.cmp(bj)));
    let mut plan = Vec::new();
    for (job, overage) in overs {
        if excess == ByteSize::ZERO {
            break;
        }
        let take = overage.min(excess);
        plan.push((job, take));
        excess = excess.saturating_sub(take);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(job: u32, resident_mb: u64, quota: Option<TenantQuota>) -> QuotaUsage {
        QuotaUsage {
            job: JobId::new(job),
            resident: ByteSize::from_mb(resident_mb),
            quota,
        }
    }

    #[test]
    fn within_budget_plans_nothing() {
        let usages = [
            usage(1, 100, Some(TenantQuota::elastic(ByteSize::from_mb(50)))),
            usage(2, 100, None),
        ];
        assert!(pressure_plan(&usages, ByteSize::from_mb(500)).is_empty());
    }

    #[test]
    fn most_over_budget_tenant_is_asked_first() {
        let usages = [
            usage(1, 150, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
            usage(2, 300, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
            usage(3, 120, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
        ];
        // total 570, budget 400 → excess 170; overages: t2=200, t1=50, t3=20.
        let plan = pressure_plan(&usages, ByteSize::from_mb(400));
        assert_eq!(plan, vec![(JobId::new(2), ByteSize::from_mb(170))]);
    }

    #[test]
    fn excess_cascades_in_overage_then_job_order() {
        let usages = [
            usage(2, 200, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
            usage(1, 200, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
            usage(3, 180, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
        ];
        // total 580, budget 350 → excess 230; t1 and t2 tie at 100 (job
        // order breaks the tie), t3 holds 80.
        let plan = pressure_plan(&usages, ByteSize::from_mb(350));
        assert_eq!(
            plan,
            vec![
                (JobId::new(1), ByteSize::from_mb(100)),
                (JobId::new(2), ByteSize::from_mb(100)),
                (JobId::new(3), ByteSize::from_mb(30)),
            ]
        );
    }

    #[test]
    fn strict_and_unquotad_tenants_are_exempt() {
        let usages = [
            usage(1, 400, Some(TenantQuota::strict(ByteSize::from_mb(500)))),
            usage(2, 400, None),
            usage(3, 150, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
        ];
        // total 950, budget 100 → excess 850, but only t3's 50 MB overage
        // is reclaimable.
        let plan = pressure_plan(&usages, ByteSize::from_mb(100));
        assert_eq!(plan, vec![(JobId::new(3), ByteSize::from_mb(50))]);
    }

    #[test]
    fn gate_admission_reserves_and_charge_consumes() {
        let gate = AdmissionGate::new();
        let budget = ByteSize::from_mb(10);
        assert!(gate.try_admit(ByteSize::from_mb(6), budget));
        assert_eq!(gate.occupancy(), ByteSize::from_mb(6));
        // Second admission would overflow the budget: refused atomically.
        assert!(!gate.try_admit(ByteSize::from_mb(6), budget));
        gate.charge(ByteSize::from_mb(6));
        // Charge consumed the reservation — no double count.
        assert_eq!(gate.occupancy(), ByteSize::from_mb(6));
        assert_eq!(gate.settle(), ByteSize::ZERO);
        gate.credit(ByteSize::from_mb(6));
        assert_eq!(gate.occupancy(), ByteSize::ZERO);
    }

    #[test]
    fn gate_settle_releases_dangling_reservations() {
        let gate = AdmissionGate::new();
        let budget = ByteSize::from_mb(4);
        assert!(gate.try_admit(ByteSize::from_mb(3), budget));
        // Placement failed — the charge never arrives. Settling frees the
        // headroom again.
        assert_eq!(gate.settle(), ByteSize::from_mb(3));
        assert_eq!(gate.occupancy(), ByteSize::ZERO);
        assert!(gate.try_admit(ByteSize::from_mb(4), budget));
    }

    #[test]
    fn gate_uncharged_bytes_still_count_toward_budget() {
        let gate = AdmissionGate::new();
        // Bytes may become resident without admission (no quota set when
        // they arrived): charge without reservation.
        gate.charge(ByteSize::from_mb(2));
        assert_eq!(gate.occupancy(), ByteSize::from_mb(2));
        assert!(!gate.try_admit(ByteSize::from_mb(2), ByteSize::from_mb(3)));
        assert!(gate.try_admit(ByteSize::from_mb(1), ByteSize::from_mb(3)));
    }

    #[test]
    fn gate_admission_has_no_toctou_window() {
        // N threads race one slot's worth of headroom; exactly one wins.
        let gate = std::sync::Arc::new(AdmissionGate::new());
        let budget = ByteSize::from_mb(1);
        let admitted: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let gate = std::sync::Arc::clone(&gate);
                    s.spawn(move || gate.try_admit(ByteSize::from_mb(1), budget))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(admitted.iter().filter(|&&a| a).count(), 1);
        assert_eq!(gate.occupancy(), ByteSize::from_mb(1));
    }

    #[test]
    fn plan_is_a_pure_function() {
        let usages = [
            usage(4, 220, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
            usage(7, 180, Some(TenantQuota::elastic(ByteSize::from_mb(100)))),
        ];
        let a = pressure_plan(&usages, ByteSize::from_mb(250));
        let b = pressure_plan(&usages, ByteSize::from_mb(250));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
