//! The Cache Engine (paper §4.2), key-sharded for intra-job parallelism.
//!
//! Tracks where each metadata object lives across disaggregated function
//! memories — the paper's dictionary
//! `Tuple(Client, Round) → FunctionID`, generalized to replicated
//! placements and asynchronous availability:
//!
//! * each key maps to one function per replica ring;
//! * a prefetched object carries `available_at`, the instant its async
//!   fetch from the persistent store completes;
//! * per-key access metadata (insert/access sequence, frequency, size)
//!   feeds the reactive eviction policies;
//! * a [`DecodedCache`] rides alongside the placement index so a cached
//!   object is parsed from its blob at most once per lifetime — every
//!   mutation that drops or replaces a placement also drops the decoded
//!   handle, keeping the two layers coherent.
//!
//! # Key-sharding
//!
//! The engine partitions `locations`/`meta`/decoded residency into K
//! *key-shards* by [`key_shard_of`] — the same splitmix64 discipline the
//! executor uses to route jobs to workers, applied to the `MetaKey`
//! *within* a job. Each shard consolidates all three layers for its keys
//! in one exclusively-owned struct (no split `data`/`access_order`-style
//! locking — Snippet 3's contention finding), so serve work for disjoint
//! key-shards of a single hot tenant can proceed on different workers
//! while ingest/evict/reclaim stay owner-serialized.
//!
//! Every externally observable order is shard-count independent: `keys()`
//! sorts at the boundary, sequence numbers come from one engine-global
//! counter, and byte totals are integer sums — an engine with K = 8
//! answers bit-for-bit like K = 1.
//!
//! Byte accounting additionally mirrors into an [`AdmissionGate`] so
//! quota admission is one atomic compare-and-swap (reserve-on-check, no
//! TOCTOU window between the budget check and the placement).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use flstore_cloud::blob::Blob;
use flstore_fl::decoded::{DecodedCache, DecodedStats};
use flstore_fl::metadata::{MetaKey, MetaKind, SharedValue};
use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

use crate::quota::AdmissionGate;

/// Process-wide default key-shard count, consulted by
/// [`CacheEngine::new`] (and any config that leaves its shard count at 0).
/// Mirrors the bench harness's serving-threads knob: CLI front ends set
/// it once at startup.
static DEFAULT_KEY_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default key-shard count (clamped to ≥ 1).
pub fn set_default_key_shards(shards: usize) {
    // Relaxed: a startup-time config knob; readers only need the value,
    // no memory is published through it.
    DEFAULT_KEY_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// The process-wide default key-shard count.
pub fn default_key_shards() -> usize {
    // Relaxed: see `set_default_key_shards`.
    DEFAULT_KEY_SHARDS.load(Ordering::Relaxed)
}

/// Routes `key` to one of `shards` key-shards.
///
/// splitmix64 over the packed key fields — the same mixing discipline as
/// the executor's job router, so placement is uniform and stable across
/// runs, platforms, and shard counts (the map `key → shard` depends only
/// on `(key, shards)`).
pub fn key_shard_of(key: &MetaKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "engine always has at least one key-shard");
    let kind_tag: u64 = match key.kind {
        MetaKind::ClientUpdate => 1,
        MetaKind::Aggregate => 2,
        MetaKind::HyperParams => 3,
        MetaKind::RoundMetrics => 4,
    };
    // `client + 1` keeps `None` distinct from `ClientId(0)`.
    let client = key.client.map_or(0, |c| u64::from(c.as_u32()) + 1);
    let packed = (u64::from(key.job.as_u32()) << 32)
        ^ u64::from(key.round.as_u32())
        ^ client.rotate_left(20)
        ^ (kind_tag << 56);
    let mut h = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Per-key cache metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMeta {
    /// Logical size of the cached object.
    pub size: ByteSize,
    /// Monotonic sequence at insertion (FIFO order).
    pub inserted_seq: u64,
    /// Monotonic sequence at last access (LRU order).
    pub last_access_seq: u64,
    /// Access count (LFU order).
    pub frequency: u64,
    /// When the object becomes readable (async prefetch completion).
    pub available_at: SimTime,
}

/// One key-shard: the placement dictionaries and decoded layer for the
/// keys that hash here. All three layers live in one exclusively-owned
/// struct — a worker serving this shard touches nothing another shard
/// owns.
#[derive(Debug, Clone, Default)]
struct EngineShard {
    locations: HashMap<MetaKey, Vec<FunctionId>>,
    meta: HashMap<MetaKey, CacheMeta>,
    decoded: DecodedCache,
}

/// Location and recency index over the serverless cache.
///
/// # Examples
///
/// ```
/// use flstore_core::engine::CacheEngine;
/// use flstore_fl::metadata::MetaKey;
/// use flstore_fl::ids::{ClientId, JobId, Round};
/// use flstore_serverless::function::FunctionId;
/// use flstore_sim::bytes::ByteSize;
/// use flstore_sim::time::SimTime;
///
/// let mut engine = CacheEngine::new();
/// let key = MetaKey::update(JobId::new(1), Round::new(3), ClientId::new(7));
/// engine.record(key, vec![FunctionId::from_raw(0)], ByteSize::from_mb(80), SimTime::ZERO);
/// assert!(engine.contains(&key));
/// assert_eq!(engine.locations(&key).unwrap(), &[FunctionId::from_raw(0)]);
/// ```
#[derive(Debug, Clone)]
pub struct CacheEngine {
    shards: Vec<EngineShard>,
    next_seq: u64,
    /// Running sum of tracked logical bytes, maintained incrementally so
    /// [`CacheEngine::bytes_tracked`] is O(1) — quota checks read it on
    /// every admission.
    tracked: ByteSize,
    /// Atomic mirror of `tracked` + decoded residency, giving quota
    /// admission a single-CAS reserve (see [`AdmissionGate`]).
    gate: AdmissionGate,
}

impl Default for CacheEngine {
    fn default() -> Self {
        CacheEngine::new()
    }
}

impl CacheEngine {
    /// Creates an empty engine with the process-default key-shard count.
    pub fn new() -> Self {
        CacheEngine::with_key_shards(default_key_shards())
    }

    /// Creates an empty engine with `shards` key-shards (clamped to ≥ 1).
    pub fn with_key_shards(shards: usize) -> Self {
        CacheEngine {
            shards: (0..shards.max(1)).map(|_| EngineShard::default()).collect(),
            next_seq: 0,
            tracked: ByteSize::ZERO,
            gate: AdmissionGate::new(),
        }
    }

    /// Number of key-shards the engine partitions state into.
    pub fn key_shards(&self) -> usize {
        self.shards.len()
    }

    /// The key-shard `key` routes to.
    pub fn shard_of(&self, key: &MetaKey) -> usize {
        key_shard_of(key, self.shards.len())
    }

    fn shard(&self, key: &MetaKey) -> &EngineShard {
        &self.shards[key_shard_of(key, self.shards.len())]
    }

    fn shard_mut(&mut self, key: &MetaKey) -> &mut EngineShard {
        let ix = key_shard_of(key, self.shards.len());
        &mut self.shards[ix]
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.locations.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.locations.is_empty())
    }

    /// Whether `key` is cached (on any replica).
    pub fn contains(&self, key: &MetaKey) -> bool {
        self.shard(key).locations.contains_key(key)
    }

    /// Replica locations of `key` (one entry per ring that holds it).
    pub fn locations(&self, key: &MetaKey) -> Option<&[FunctionId]> {
        self.shard(key).locations.get(key).map(|v| v.as_slice())
    }

    /// Cache metadata of `key`.
    pub fn meta(&self, key: &MetaKey) -> Option<&CacheMeta> {
        self.shard(key).meta.get(key)
    }

    /// Iterates over all cached keys, in sorted key order. The backing
    /// maps are hash-ordered *and* shard-partitioned; exposing either
    /// order here would leak iteration nondeterminism (and the shard
    /// count) into every consumer — eviction scans, reclaim handling,
    /// durability digests — so the engine pays the sort once at the
    /// boundary.
    pub fn keys(&self) -> impl Iterator<Item = &MetaKey> {
        // flstore: allow(unordered_iter, collected across shards and sorted immediately below)
        let mut keys: Vec<&MetaKey> = self
            .shards
            .iter()
            .flat_map(|s| s.locations.keys())
            .collect();
        keys.sort_unstable();
        keys.into_iter()
    }

    /// Total logical bytes tracked (one replica's worth). O(1): the sum
    /// is maintained across `record`/`remove`/`drop_replica`.
    pub fn bytes_tracked(&self) -> ByteSize {
        self.tracked
    }

    /// The atomic admission gate mirroring this engine's resident bytes.
    /// Quota enforcement reserves against it with one CAS.
    pub fn admission(&self) -> &AdmissionGate {
        &self.gate
    }

    /// Runs a decoded-layer mutation on `key`'s shard, mirroring any
    /// residency change into the gate.
    fn with_decoded<R>(&mut self, key: &MetaKey, f: impl FnOnce(&mut DecodedCache) -> R) -> R {
        let ix = key_shard_of(key, self.shards.len());
        let decoded = &mut self.shards[ix].decoded;
        let before = decoded.resident_bytes();
        let out = f(decoded);
        let after = decoded.resident_bytes();
        if after >= before {
            self.gate.charge(after.saturating_sub(before));
        } else {
            self.gate.credit(before.saturating_sub(after));
        }
        out
    }

    /// Decoded-layer read: the shared handle for `key` if its shard holds
    /// one (bumps the shard's hit counter).
    pub fn decoded_get(&mut self, key: &MetaKey) -> Option<SharedValue> {
        // `get` can drop an entry on byte-identity mismatch, so route it
        // through the residency mirror too.
        self.with_decoded(key, |d| d.get(key))
    }

    /// Decoded-layer read-or-parse: returns the cached handle when `blob`
    /// matches byte-for-byte, otherwise parses and caches.
    pub fn decoded_get_or_decode(&mut self, key: &MetaKey, blob: &Blob) -> Option<SharedValue> {
        self.with_decoded(key, |d| d.get_or_decode(key, blob))
    }

    /// Seeds `key`'s shard with a producer-decoded value (ingest-time:
    /// zero-parse).
    pub fn decoded_seed(&mut self, key: MetaKey, blob: &Blob, value: SharedValue) {
        self.with_decoded(&key, |d| d.seed(key, blob, value));
    }

    /// Decoded-layer residency across all key-shards.
    pub fn decoded_resident_bytes(&self) -> ByteSize {
        self.shards.iter().map(|s| s.decoded.resident_bytes()).sum()
    }

    /// Number of decoded handles held across all key-shards.
    pub fn decoded_len(&self) -> usize {
        self.shards.iter().map(|s| s.decoded.len()).sum()
    }

    /// Decoded-layer operation counters, summed across key-shards — each
    /// key's events land in exactly one shard, so the totals are
    /// shard-count independent.
    pub fn decoded_stats(&self) -> DecodedStats {
        let mut total = DecodedStats::default();
        for s in &self.shards {
            let st = s.decoded.stats();
            total.hits += st.hits;
            total.decodes += st.decodes;
            total.seeded += st.seeded;
            total.invalidations += st.invalidations;
        }
        total
    }

    /// Registers a (replicated) placement. `available_at` is the instant the
    /// object becomes readable — `now` for synchronously placed data, later
    /// for async prefetches.
    pub fn record(
        &mut self,
        key: MetaKey,
        replicas: Vec<FunctionId>,
        size: ByteSize,
        available_at: SimTime,
    ) {
        let seq = self.bump();
        // A (re-)placement may carry different bytes than the decode we
        // hold; the caller re-seeds after recording if it has the value.
        self.with_decoded(&key, |d| d.invalidate(&key));
        let shard = self.shard_mut(&key);
        shard.locations.insert(key, replicas);
        let displaced = shard.meta.insert(
            key,
            CacheMeta {
                size,
                inserted_seq: seq,
                last_access_seq: seq,
                frequency: 0,
                available_at,
            },
        );
        self.tracked += size;
        // The gate consumes the admission reservation (if any) here, so
        // admitted-then-placed bytes count exactly once.
        self.gate.charge(size);
        if let Some(old) = displaced {
            self.tracked = self.tracked.saturating_sub(old.size);
            self.gate.credit(old.size);
        }
    }

    /// Marks an access to `key`, updating recency/frequency. Returns the
    /// updated metadata, or `None` if the key is not cached.
    pub fn touch(&mut self, key: &MetaKey) -> Option<CacheMeta> {
        let seq = self.bump();
        let meta = self.shard_mut(key).meta.get_mut(key)?;
        meta.last_access_seq = seq;
        meta.frequency += 1;
        Some(*meta)
    }

    /// Removes a key entirely. Returns its former locations.
    pub fn remove(&mut self, key: &MetaKey) -> Option<Vec<FunctionId>> {
        self.with_decoded(key, |d| d.invalidate(key));
        let shard = self.shard_mut(key);
        let removed_meta = shard.meta.remove(key);
        let removed = shard.locations.remove(key);
        if let Some(old) = removed_meta {
            self.tracked = self.tracked.saturating_sub(old.size);
            self.gate.credit(old.size);
        }
        removed
    }

    /// Drops a single failed replica from every placement that referenced
    /// it; keys left with zero replicas are removed and returned (their
    /// data now only exists in the persistent store).
    pub fn drop_replica(&mut self, failed: FunctionId) -> Vec<MetaKey> {
        let mut orphaned = Vec::new();
        for shard in self.shards.iter_mut() {
            // flstore: allow(unordered_iter, every placement is visited exactly once and the collected keys are sorted below)
            for (key, replicas) in shard.locations.iter_mut() {
                replicas.retain(|f| *f != failed);
                if replicas.is_empty() {
                    orphaned.push(*key);
                }
            }
        }
        // Neither hash order nor shard order may leak out through the
        // return value: callers re-replicate / log these keys in the
        // order given.
        orphaned.sort_unstable();
        for key in &orphaned {
            self.remove(key);
        }
        orphaned
    }

    /// Adds a repaired replica location for `key` (after re-replication).
    pub fn add_replica(&mut self, key: &MetaKey, replica: FunctionId) -> bool {
        if let Some(replicas) = self.shard_mut(key).locations.get_mut(key) {
            if !replicas.contains(&replica) {
                replicas.push(replica);
            }
            true
        } else {
            false
        }
    }

    /// Estimated resident memory of the engine, for the paper's overhead
    /// analysis (§5.5) and for capacity/quota decisions: the placement
    /// dictionaries *plus* the decoded-value layer's residency — the
    /// `Arc<MetaValue>` handles PR 2 added are real memory and must be
    /// visible to anything budgeting this engine.
    pub fn estimated_memory(&self) -> ByteSize {
        // MetaKey ≈ 24 B payload; CacheMeta = 40 B; Vec<FunctionId> ≈ 24 B
        // header + 8 B/replica; two hash-map entries ≈ 2 × 48 B overhead.
        let per_entry = 24 + 40 + 24 + 2 * 48;
        let entries: usize = self.shards.iter().map(|s| s.locations.len()).sum();
        // flstore: allow(unordered_iter, integer sum over replica counts is order-independent)
        let replicas: usize = self
            .shards
            .iter()
            .flat_map(|s| s.locations.values())
            .map(|v| 8 * v.len())
            .sum();
        ByteSize::from_bytes((entries * per_entry + replicas) as u64)
            + self.decoded_resident_bytes()
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::ids::{ClientId, JobId, Round};

    fn key(round: u32, client: u32) -> MetaKey {
        MetaKey::update(JobId::new(1), Round::new(round), ClientId::new(client))
    }

    fn fid(i: u64) -> FunctionId {
        FunctionId::from_raw(i)
    }

    #[test]
    fn record_touch_remove_lifecycle() {
        let mut e = CacheEngine::new();
        let k = key(1, 2);
        e.record(
            k,
            vec![fid(0), fid(1)],
            ByteSize::from_mb(80),
            SimTime::ZERO,
        );
        assert_eq!(e.len(), 1);
        let before = *e.meta(&k).expect("recorded");
        let after = e.touch(&k).expect("cached");
        assert!(after.last_access_seq > before.last_access_seq);
        assert_eq!(after.frequency, 1);
        assert_eq!(e.remove(&k), Some(vec![fid(0), fid(1)]));
        assert!(e.is_empty());
        assert!(e.touch(&k).is_none());
    }

    #[test]
    fn drop_replica_cleans_up() {
        let mut e = CacheEngine::new();
        let a = key(1, 1);
        let b = key(1, 2);
        e.record(
            a,
            vec![fid(0), fid(1)],
            ByteSize::from_mb(10),
            SimTime::ZERO,
        );
        e.record(b, vec![fid(0)], ByteSize::from_mb(10), SimTime::ZERO);
        let orphaned = e.drop_replica(fid(0));
        assert_eq!(orphaned, vec![b]);
        assert!(e.contains(&a));
        assert_eq!(e.locations(&a).expect("a cached"), &[fid(1)]);
        assert!(!e.contains(&b));
    }

    #[test]
    fn add_replica_repairs() {
        let mut e = CacheEngine::new();
        let a = key(2, 1);
        e.record(a, vec![fid(1)], ByteSize::from_mb(10), SimTime::ZERO);
        assert!(e.add_replica(&a, fid(2)));
        assert_eq!(e.locations(&a).expect("cached").len(), 2);
        // Idempotent.
        assert!(e.add_replica(&a, fid(2)));
        assert_eq!(e.locations(&a).expect("cached").len(), 2);
        assert!(!e.add_replica(&key(9, 9), fid(2)));
    }

    #[test]
    fn availability_tracks_prefetch() {
        let mut e = CacheEngine::new();
        let k = key(3, 1);
        let ready = SimTime::from_secs(100);
        e.record(k, vec![fid(0)], ByteSize::from_mb(10), ready);
        assert_eq!(e.meta(&k).expect("cached").available_at, ready);
    }

    #[test]
    fn memory_estimate_scales_with_entries() {
        let mut e = CacheEngine::new();
        for i in 0..1000 {
            e.record(key(i, i), vec![fid(0)], ByteSize::from_mb(1), SimTime::ZERO);
        }
        let est = e.estimated_memory();
        // Paper §5.5: Cache Engine ≈ 0.6 MB at 1000 concurrent requests.
        assert!(est > ByteSize::from_kb(100), "{est}");
        assert!(est < ByteSize::from_mb(2), "{est}");
    }

    #[test]
    fn placement_mutations_keep_decoded_layer_coherent() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);
        let k = key(1, 1);

        let mut e = CacheEngine::new();
        e.record(k, vec![fid(0), fid(1)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_seed(k, &blob, value.clone().into_shared());
        assert!(e.decoded_get(&k).is_some());

        // Removing the placement drops the decoded handle.
        e.remove(&k);
        assert!(e.decoded_get(&k).is_none());

        // Re-recording (overwrite) also invalidates a stale handle.
        e.record(k, vec![fid(0), fid(1)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_seed(k, &blob, value.into_shared());
        e.record(k, vec![fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        assert!(e.decoded_get(&k).is_none());

        // A surviving replica keeps the decode; orphaning drops it.
        let other = key(2, 2);
        e.record(k, vec![fid(1), fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_seed(k, &blob, MetaValue::from_blob(&blob).unwrap().into_shared());
        e.record(other, vec![fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_seed(
            other,
            &blob,
            MetaValue::from_blob(&blob).unwrap().into_shared(),
        );
        e.drop_replica(fid(2));
        assert!(e.decoded_get(&k).is_some(), "replica on fid(1) survives");
        assert!(e.decoded_get(&other).is_none(), "orphaned key re-decodes");
    }

    #[test]
    fn memory_estimate_sees_the_decoded_layer_and_shrinks_on_eviction() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let mut e = CacheEngine::new();
        let k = key(1, 1);
        e.record(k, vec![fid(0)], ByteSize::from_mb(1), SimTime::ZERO);
        let index_only = e.estimated_memory();

        // Seeding a decoded handle grows the estimate: Arc<MetaValue>
        // residency is part of any capacity decision.
        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);
        e.decoded_seed(k, &blob, value.into_shared());
        let with_decoded = e.estimated_memory();
        assert!(with_decoded > index_only, "{with_decoded} vs {index_only}");
        assert_eq!(
            with_decoded,
            index_only + e.decoded_resident_bytes(),
            "decoded residency folds into the estimate exactly"
        );

        // Eviction releases both layers.
        e.remove(&k);
        assert_eq!(e.estimated_memory(), ByteSize::ZERO);
    }

    #[test]
    fn bytes_tracked_sums_sizes() {
        let mut e = CacheEngine::new();
        e.record(
            key(0, 0),
            vec![fid(0)],
            ByteSize::from_mb(80),
            SimTime::ZERO,
        );
        e.record(
            key(0, 1),
            vec![fid(0)],
            ByteSize::from_mb(20),
            SimTime::ZERO,
        );
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(100));
        // The running total follows overwrites, removals, and orphaning.
        e.record(
            key(0, 0),
            vec![fid(1)],
            ByteSize::from_mb(30),
            SimTime::ZERO,
        );
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(50));
        e.remove(&key(0, 1));
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(30));
        e.drop_replica(fid(1));
        assert_eq!(e.bytes_tracked(), ByteSize::ZERO);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for r in 0..50u32 {
                for c in 0..8u32 {
                    let k = key(r, c);
                    let s = key_shard_of(&k, shards);
                    assert!(s < shards);
                    assert_eq!(s, key_shard_of(&k, shards), "routing must be pure");
                }
            }
        }
        // One shard degenerates to the unsharded engine.
        assert_eq!(key_shard_of(&key(7, 7), 1), 0);
    }

    #[test]
    fn routing_spreads_one_job_across_shards() {
        // The whole point of key-sharding: a single job's keys land on
        // every shard, so one hot tenant can use all workers.
        let shards = 4;
        let mut hit = vec![false; shards];
        for r in 0..32u32 {
            for c in 0..8u32 {
                hit[key_shard_of(&key(r, c), shards)] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "some shard never used: {hit:?}");
    }

    /// The observable engine state must not depend on the shard count —
    /// the property every equivalence gate in the workspace leans on.
    #[test]
    fn shard_count_is_unobservable() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);

        let run = |shards: usize| {
            let mut e = CacheEngine::with_key_shards(shards);
            for r in 0..12u32 {
                for c in 0..4u32 {
                    e.record(
                        key(r, c),
                        vec![fid(u64::from(r % 3))],
                        ByteSize::from_kb(u64::from(100 + c)),
                        SimTime::ZERO,
                    );
                    e.decoded_seed(key(r, c), &blob, value.clone().into_shared());
                }
            }
            for c in 0..4u32 {
                e.touch(&key(3, c));
                e.decoded_get(&key(5, c));
            }
            e.remove(&key(2, 1));
            e.drop_replica(fid(1));
            let keys: Vec<MetaKey> = e.keys().copied().collect();
            let metas: Vec<(MetaKey, CacheMeta)> =
                keys.iter().map(|k| (*k, *e.meta(k).unwrap())).collect();
            (
                keys,
                metas,
                e.bytes_tracked(),
                e.decoded_resident_bytes(),
                e.decoded_stats(),
                e.len(),
                e.estimated_memory(),
            )
        };

        let baseline = run(1);
        for shards in [2usize, 4, 8] {
            assert_eq!(run(shards), baseline, "K = {shards} observable drift");
        }
    }

    #[test]
    fn gate_mirrors_resident_bytes() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);

        let mut e = CacheEngine::with_key_shards(4);
        let resident = |e: &CacheEngine| e.bytes_tracked() + e.decoded_resident_bytes();
        for r in 0..8u32 {
            e.record(
                key(r, 0),
                vec![fid(0)],
                ByteSize::from_kb(64),
                SimTime::ZERO,
            );
            e.decoded_seed(key(r, 0), &blob, value.clone().into_shared());
            assert_eq!(e.admission().occupancy(), resident(&e));
        }
        // Overwrite, remove, orphan: the mirror follows every path.
        e.record(
            key(0, 0),
            vec![fid(1)],
            ByteSize::from_kb(32),
            SimTime::ZERO,
        );
        assert_eq!(e.admission().occupancy(), resident(&e));
        e.remove(&key(1, 0));
        assert_eq!(e.admission().occupancy(), resident(&e));
        e.drop_replica(fid(1));
        assert_eq!(e.admission().occupancy(), resident(&e));
    }
}
