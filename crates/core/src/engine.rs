//! The Cache Engine (paper §4.2).
//!
//! Tracks where each metadata object lives across disaggregated function
//! memories — the paper's dictionary
//! `Tuple(Client, Round) → FunctionID`, generalized to replicated
//! placements and asynchronous availability:
//!
//! * each key maps to one function per replica ring;
//! * a prefetched object carries `available_at`, the instant its async
//!   fetch from the persistent store completes;
//! * per-key access metadata (insert/access sequence, frequency, size)
//!   feeds the reactive eviction policies;
//! * a [`DecodedCache`] rides alongside the placement index so a cached
//!   object is parsed from its blob at most once per lifetime — every
//!   mutation that drops or replaces a placement also drops the decoded
//!   handle, keeping the two layers coherent.

use std::collections::HashMap;

use flstore_fl::decoded::DecodedCache;
use flstore_fl::metadata::MetaKey;
use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

/// Per-key cache metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMeta {
    /// Logical size of the cached object.
    pub size: ByteSize,
    /// Monotonic sequence at insertion (FIFO order).
    pub inserted_seq: u64,
    /// Monotonic sequence at last access (LRU order).
    pub last_access_seq: u64,
    /// Access count (LFU order).
    pub frequency: u64,
    /// When the object becomes readable (async prefetch completion).
    pub available_at: SimTime,
}

/// Location and recency index over the serverless cache.
///
/// # Examples
///
/// ```
/// use flstore_core::engine::CacheEngine;
/// use flstore_fl::metadata::MetaKey;
/// use flstore_fl::ids::{ClientId, JobId, Round};
/// use flstore_serverless::function::FunctionId;
/// use flstore_sim::bytes::ByteSize;
/// use flstore_sim::time::SimTime;
///
/// let mut engine = CacheEngine::new();
/// let key = MetaKey::update(JobId::new(1), Round::new(3), ClientId::new(7));
/// engine.record(key, vec![FunctionId::from_raw(0)], ByteSize::from_mb(80), SimTime::ZERO);
/// assert!(engine.contains(&key));
/// assert_eq!(engine.locations(&key).unwrap(), &[FunctionId::from_raw(0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheEngine {
    locations: HashMap<MetaKey, Vec<FunctionId>>,
    meta: HashMap<MetaKey, CacheMeta>,
    decoded: DecodedCache,
    next_seq: u64,
    /// Running sum of tracked logical bytes, maintained incrementally so
    /// [`CacheEngine::bytes_tracked`] is O(1) — quota checks read it on
    /// every admission.
    tracked: ByteSize,
}

impl CacheEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        CacheEngine::default()
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Whether `key` is cached (on any replica).
    pub fn contains(&self, key: &MetaKey) -> bool {
        self.locations.contains_key(key)
    }

    /// Replica locations of `key` (one entry per ring that holds it).
    pub fn locations(&self, key: &MetaKey) -> Option<&[FunctionId]> {
        self.locations.get(key).map(|v| v.as_slice())
    }

    /// Cache metadata of `key`.
    pub fn meta(&self, key: &MetaKey) -> Option<&CacheMeta> {
        self.meta.get(key)
    }

    /// The decoded-value layer (read-only view, e.g. for stats).
    pub fn decoded(&self) -> &DecodedCache {
        &self.decoded
    }

    /// The decoded-value layer. Serve paths use it to turn blob reads into
    /// `Arc` clones; placement mutations (`record`, `remove`,
    /// `drop_replica`) keep it coherent automatically.
    pub fn decoded_mut(&mut self) -> &mut DecodedCache {
        &mut self.decoded
    }

    /// Iterates over all cached keys, in sorted key order. The backing map
    /// is hash-ordered; exposing that order here would leak iteration
    /// nondeterminism into every consumer (eviction scans, reclaim
    /// handling), so the engine pays the sort once at the boundary.
    pub fn keys(&self) -> impl Iterator<Item = &MetaKey> {
        let mut keys: Vec<&MetaKey> = self.locations.keys().collect();
        keys.sort_unstable();
        keys.into_iter()
    }

    /// Total logical bytes tracked (one replica's worth). O(1): the sum
    /// is maintained across `record`/`remove`/`drop_replica`.
    pub fn bytes_tracked(&self) -> ByteSize {
        self.tracked
    }

    /// Registers a (replicated) placement. `available_at` is the instant the
    /// object becomes readable — `now` for synchronously placed data, later
    /// for async prefetches.
    pub fn record(
        &mut self,
        key: MetaKey,
        replicas: Vec<FunctionId>,
        size: ByteSize,
        available_at: SimTime,
    ) {
        let seq = self.bump();
        // A (re-)placement may carry different bytes than the decode we
        // hold; the caller re-seeds after recording if it has the value.
        self.decoded.invalidate(&key);
        self.locations.insert(key, replicas);
        self.tracked += size;
        if let Some(old) = self.meta.insert(
            key,
            CacheMeta {
                size,
                inserted_seq: seq,
                last_access_seq: seq,
                frequency: 0,
                available_at,
            },
        ) {
            self.tracked = self.tracked.saturating_sub(old.size);
        }
    }

    /// Marks an access to `key`, updating recency/frequency. Returns the
    /// updated metadata, or `None` if the key is not cached.
    pub fn touch(&mut self, key: &MetaKey) -> Option<CacheMeta> {
        let seq = self.bump();
        let meta = self.meta.get_mut(key)?;
        meta.last_access_seq = seq;
        meta.frequency += 1;
        Some(*meta)
    }

    /// Removes a key entirely. Returns its former locations.
    pub fn remove(&mut self, key: &MetaKey) -> Option<Vec<FunctionId>> {
        self.decoded.invalidate(key);
        if let Some(old) = self.meta.remove(key) {
            self.tracked = self.tracked.saturating_sub(old.size);
        }
        self.locations.remove(key)
    }

    /// Drops a single failed replica from every placement that referenced
    /// it; keys left with zero replicas are removed and returned (their
    /// data now only exists in the persistent store).
    pub fn drop_replica(&mut self, failed: FunctionId) -> Vec<MetaKey> {
        let mut orphaned = Vec::new();
        // flstore: allow(unordered_iter, every placement is visited exactly once and the collected keys are sorted below)
        for (key, replicas) in self.locations.iter_mut() {
            replicas.retain(|f| *f != failed);
            if replicas.is_empty() {
                orphaned.push(*key);
            }
        }
        // Hash order must not leak out through the return value: callers
        // re-replicate / log these keys in the order given.
        orphaned.sort_unstable();
        for key in &orphaned {
            self.remove(key);
        }
        orphaned
    }

    /// Adds a repaired replica location for `key` (after re-replication).
    pub fn add_replica(&mut self, key: &MetaKey, replica: FunctionId) -> bool {
        if let Some(replicas) = self.locations.get_mut(key) {
            if !replicas.contains(&replica) {
                replicas.push(replica);
            }
            true
        } else {
            false
        }
    }

    /// Estimated resident memory of the engine, for the paper's overhead
    /// analysis (§5.5) and for capacity/quota decisions: the placement
    /// dictionaries *plus* the decoded-value layer's residency — the
    /// `Arc<MetaValue>` handles PR 2 added are real memory and must be
    /// visible to anything budgeting this engine.
    pub fn estimated_memory(&self) -> ByteSize {
        // MetaKey ≈ 24 B payload; CacheMeta = 40 B; Vec<FunctionId> ≈ 24 B
        // header + 8 B/replica; two hash-map entries ≈ 2 × 48 B overhead.
        let per_entry = 24 + 40 + 24 + 2 * 48;
        let replicas: usize = self.locations.values().map(|v| 8 * v.len()).sum();
        ByteSize::from_bytes((self.locations.len() * per_entry + replicas) as u64)
            + self.decoded.resident_bytes()
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::ids::{ClientId, JobId, Round};

    fn key(round: u32, client: u32) -> MetaKey {
        MetaKey::update(JobId::new(1), Round::new(round), ClientId::new(client))
    }

    fn fid(i: u64) -> FunctionId {
        FunctionId::from_raw(i)
    }

    #[test]
    fn record_touch_remove_lifecycle() {
        let mut e = CacheEngine::new();
        let k = key(1, 2);
        e.record(
            k,
            vec![fid(0), fid(1)],
            ByteSize::from_mb(80),
            SimTime::ZERO,
        );
        assert_eq!(e.len(), 1);
        let before = *e.meta(&k).expect("recorded");
        let after = e.touch(&k).expect("cached");
        assert!(after.last_access_seq > before.last_access_seq);
        assert_eq!(after.frequency, 1);
        assert_eq!(e.remove(&k), Some(vec![fid(0), fid(1)]));
        assert!(e.is_empty());
        assert!(e.touch(&k).is_none());
    }

    #[test]
    fn drop_replica_cleans_up() {
        let mut e = CacheEngine::new();
        let a = key(1, 1);
        let b = key(1, 2);
        e.record(
            a,
            vec![fid(0), fid(1)],
            ByteSize::from_mb(10),
            SimTime::ZERO,
        );
        e.record(b, vec![fid(0)], ByteSize::from_mb(10), SimTime::ZERO);
        let orphaned = e.drop_replica(fid(0));
        assert_eq!(orphaned, vec![b]);
        assert!(e.contains(&a));
        assert_eq!(e.locations(&a).expect("a cached"), &[fid(1)]);
        assert!(!e.contains(&b));
    }

    #[test]
    fn add_replica_repairs() {
        let mut e = CacheEngine::new();
        let a = key(2, 1);
        e.record(a, vec![fid(1)], ByteSize::from_mb(10), SimTime::ZERO);
        assert!(e.add_replica(&a, fid(2)));
        assert_eq!(e.locations(&a).expect("cached").len(), 2);
        // Idempotent.
        assert!(e.add_replica(&a, fid(2)));
        assert_eq!(e.locations(&a).expect("cached").len(), 2);
        assert!(!e.add_replica(&key(9, 9), fid(2)));
    }

    #[test]
    fn availability_tracks_prefetch() {
        let mut e = CacheEngine::new();
        let k = key(3, 1);
        let ready = SimTime::from_secs(100);
        e.record(k, vec![fid(0)], ByteSize::from_mb(10), ready);
        assert_eq!(e.meta(&k).expect("cached").available_at, ready);
    }

    #[test]
    fn memory_estimate_scales_with_entries() {
        let mut e = CacheEngine::new();
        for i in 0..1000 {
            e.record(key(i, i), vec![fid(0)], ByteSize::from_mb(1), SimTime::ZERO);
        }
        let est = e.estimated_memory();
        // Paper §5.5: Cache Engine ≈ 0.6 MB at 1000 concurrent requests.
        assert!(est > ByteSize::from_kb(100), "{est}");
        assert!(est < ByteSize::from_mb(2), "{est}");
    }

    #[test]
    fn placement_mutations_keep_decoded_layer_coherent() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);
        let k = key(1, 1);

        let mut e = CacheEngine::new();
        e.record(k, vec![fid(0), fid(1)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_mut().seed(k, &blob, value.clone().into_shared());
        assert!(e.decoded_mut().get(&k).is_some());

        // Removing the placement drops the decoded handle.
        e.remove(&k);
        assert!(e.decoded_mut().get(&k).is_none());

        // Re-recording (overwrite) also invalidates a stale handle.
        e.record(k, vec![fid(0), fid(1)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_mut().seed(k, &blob, value.into_shared());
        e.record(k, vec![fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        assert!(e.decoded_mut().get(&k).is_none());

        // A surviving replica keeps the decode; orphaning drops it.
        let other = key(2, 2);
        e.record(k, vec![fid(1), fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_mut()
            .seed(k, &blob, MetaValue::from_blob(&blob).unwrap().into_shared());
        e.record(other, vec![fid(2)], ByteSize::from_mb(1), SimTime::ZERO);
        e.decoded_mut().seed(
            other,
            &blob,
            MetaValue::from_blob(&blob).unwrap().into_shared(),
        );
        e.drop_replica(fid(2));
        assert!(
            e.decoded_mut().get(&k).is_some(),
            "replica on fid(1) survives"
        );
        assert!(
            e.decoded_mut().get(&other).is_none(),
            "orphaned key re-decodes"
        );
    }

    #[test]
    fn memory_estimate_sees_the_decoded_layer_and_shrinks_on_eviction() {
        use flstore_fl::hyperparams::HyperParams;
        use flstore_fl::metadata::MetaValue;
        use flstore_fl::zoo::ModelArch;

        let mut e = CacheEngine::new();
        let k = key(1, 1);
        e.record(k, vec![fid(0)], ByteSize::from_mb(1), SimTime::ZERO);
        let index_only = e.estimated_memory();

        // Seeding a decoded handle grows the estimate: Arc<MetaValue>
        // residency is part of any capacity decision.
        let value = MetaValue::Hyper(HyperParams::schedule(Round::new(1), 10, 0.2));
        let blob = value.to_blob(&ModelArch::RESNET18);
        e.decoded_mut().seed(k, &blob, value.into_shared());
        let with_decoded = e.estimated_memory();
        assert!(with_decoded > index_only, "{with_decoded} vs {index_only}");
        assert_eq!(
            with_decoded,
            index_only + e.decoded().resident_bytes(),
            "decoded residency folds into the estimate exactly"
        );

        // Eviction releases both layers.
        e.remove(&k);
        assert_eq!(e.estimated_memory(), ByteSize::ZERO);
    }

    #[test]
    fn bytes_tracked_sums_sizes() {
        let mut e = CacheEngine::new();
        e.record(
            key(0, 0),
            vec![fid(0)],
            ByteSize::from_mb(80),
            SimTime::ZERO,
        );
        e.record(
            key(0, 1),
            vec![fid(0)],
            ByteSize::from_mb(20),
            SimTime::ZERO,
        );
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(100));
        // The running total follows overwrites, removals, and orphaning.
        e.record(
            key(0, 0),
            vec![fid(1)],
            ByteSize::from_mb(30),
            SimTime::ZERO,
        );
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(50));
        e.remove(&key(0, 1));
        assert_eq!(e.bytes_tracked(), ByteSize::from_mb(30));
        e.drop_replica(fid(1));
        assert_eq!(e.bytes_tracked(), ByteSize::ZERO);
    }
}
