//! `flstore_api` — the unified request/response front door.
//!
//! Every serving architecture in this workspace — [`FlStore`], the
//! aggregator baselines, and the multi-tenant front end — sits behind one
//! typed surface: requests arrive as [`Request`] envelopes, responses
//! leave as [`Response`] envelopes, and failures are first-class
//! [`ApiError`] values instead of `Option`-erased `None`s. The surface is
//! batched from the start ([`Service::submit_batch`]), the way
//! request-plane batching amortizes fixed per-request work in serving
//! systems, so executors can exploit shared work across a batch without
//! changing any caller.
//!
//! Admission runs before execution: an envelope routed to a system that
//! does not own its [`JobId`] is rejected with [`ApiError::UnknownJob`]
//! and has *no side effects* — multi-tenant routing and single-tenant
//! serving share one front door and one rejection semantics.
//!
//! # Examples
//!
//! ```
//! use flstore_core::api::{Request, Response, Service};
//! use flstore_core::policy::TailoredPolicy;
//! use flstore_core::store::{FlStore, FlStoreConfig};
//! use flstore_fl::ids::JobId;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_sim::time::SimTime;
//!
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let mut store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! let record = FlJobSim::new(cfg.clone()).next().expect("rounds");
//! let response = store.submit(
//!     SimTime::ZERO,
//!     Request::Ingest { job: cfg.job, record: std::sync::Arc::new(record) },
//! );
//! assert!(matches!(response, Response::Ingested(r) if r.cached > 0));
//! // A foreign job is rejected at admission, with no side effects.
//! let foreign = flstore_fl::metadata::MetaKey::aggregate(
//!     JobId::new(99),
//!     flstore_fl::ids::Round::ZERO,
//! );
//! let rejected = store.submit(SimTime::ZERO, Request::Evict(foreign));
//! assert!(!rejected.is_ok());
//! // The same door answers telemetry.
//! let response = store.submit(SimTime::ZERO, Request::Stats);
//! assert!(matches!(response, Response::Stats(_)));
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use flstore_cloud::blob::StoreError;
use flstore_fl::ids::JobId;
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::MetaKey;
use flstore_serverless::platform::PlatformError;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::run::WorkloadError;
use flstore_workloads::service::ServiceLedger;

use crate::error::FlStoreError;
use crate::quota::{QuotaPolicy, QuotaUsage};
use crate::store::{FlStore, PendingServe, ServedRequest};
use crate::tenancy::MultiTenantStore;

/// One typed request envelope submitted to a serving system.
#[derive(Debug, Clone)]
pub enum Request {
    /// Ingest one training round's metadata for `job`. The record is
    /// shared (`Arc`), so building and cloning envelopes never deep-copies
    /// the round's per-client update blobs.
    Ingest {
        /// The producing job (the tenant the record routes to).
        job: JobId,
        /// The completed round.
        record: Arc<RoundRecord>,
    },
    /// Serve one non-training workload request (routes by its `job`).
    Serve(WorkloadRequest),
    /// Evict one object from every cache layer; the persistent copy
    /// remains the fallback (routes by the key's `job`).
    Evict(MetaKey),
    /// Report serving statistics.
    Stats,
}

impl Request {
    /// The job this envelope routes to; `None` for system-wide envelopes
    /// ([`Request::Stats`]).
    pub fn job(&self) -> Option<JobId> {
        match self {
            Request::Ingest { job, .. } => Some(*job),
            Request::Serve(request) => Some(request.job),
            Request::Evict(key) => Some(key.job),
            Request::Stats => None,
        }
    }
}

/// The typed response to one [`Request`] envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The round was ingested.
    Ingested(crate::store::IngestReceipt),
    /// The workload was served (boxed: served requests carry the full
    /// outcome and measurement, much larger than the other variants).
    Served(Box<ServedRequest>),
    /// The eviction was processed; `was_cached` reports whether the key
    /// was actually held in cache.
    Evicted {
        /// Whether the key was cached before the eviction.
        was_cached: bool,
    },
    /// Serving statistics at submission time.
    Stats(StatsReport),
    /// The envelope was rejected — at admission or during execution.
    Rejected(ApiError),
}

impl Response {
    /// The served request, if this response carries one.
    pub fn served(&self) -> Option<&ServedRequest> {
        match self {
            Response::Served(served) => Some(served),
            _ => None,
        }
    }

    /// The rejection, if this response carries one.
    pub fn error(&self) -> Option<&ApiError> {
        match self {
            Response::Rejected(e) => Some(e),
            _ => None,
        }
    }

    /// True when the envelope was processed (not rejected).
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Rejected(_))
    }
}

/// A typed front-door failure. Nothing is erased: admission rejections,
/// missing data, store/platform/workload failures each keep their cause.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The envelope routed to a job this system does not own (admission
    /// rejection; the envelope had no side effects).
    UnknownJob {
        /// The job the envelope named.
        job: JobId,
    },
    /// A strict per-tenant quota refused part of the envelope's working
    /// set. For an `Ingest`, durability is preserved (the round is backed
    /// up to the persistent store) but `denied` policy-hot objects were
    /// not admitted to the cache — the envelope reports the shortfall
    /// honestly instead of claiming a full ingest.
    QuotaExceeded {
        /// The over-budget tenant.
        job: JobId,
        /// The tenant's configured budget.
        budget: ByteSize,
        /// Objects refused admission by the quota gate.
        denied: usize,
    },
    /// No ingested round satisfies the request.
    NoData {
        /// The offending request.
        request: RequestId,
    },
    /// Persistent-store failure (missing backup object).
    Store(StoreError),
    /// The workload rejected its inputs.
    Workload(WorkloadError),
    /// Serverless platform failure.
    Platform(PlatformError),
    /// The serving plane is saturated and refused the envelope *before*
    /// admission: nothing was executed, and retrying after the hint is
    /// safe. This is how backpressure surfaces at the network front door
    /// (`flstore-net`) — a typed envelope instead of a dropped frame or a
    /// connection reset.
    ///
    /// ```
    /// use flstore_core::api::ApiError;
    /// use flstore_sim::time::SimDuration;
    ///
    /// let err = ApiError::Overloaded { retry_after_hint: SimDuration::from_millis(5) };
    /// assert_eq!(err.to_string(), "overloaded: retry after 5000us");
    /// ```
    Overloaded {
        /// How long the client should wait before retrying. A hint, not a
        /// contract: servers pick a fixed configured value so rejection
        /// envelopes stay byte-deterministic under load.
        retry_after_hint: SimDuration,
    },
    /// The replica currently fronting this job is unreachable (killed or
    /// partitioned) and the cluster has not finished failing over yet.
    /// Nothing was executed; the envelope is safe to retry, and by the
    /// hinted time the failover window has usually promoted a surviving
    /// replica. This is the cluster plane's typed redirect — a client that
    /// retries within its budget survives a node loss without a dropped
    /// frame or a connection reset.
    ///
    /// ```
    /// use flstore_core::api::ApiError;
    /// use flstore_fl::ids::JobId;
    /// use flstore_sim::time::SimDuration;
    ///
    /// let err = ApiError::Relocated {
    ///     job: JobId::new(7),
    ///     retry_after_hint: SimDuration::from_millis(5),
    /// };
    /// assert_eq!(err.to_string(), "relocated: job-7 is failing over; retry after 5000us");
    /// ```
    Relocated {
        /// The job whose replica set is mid-failover.
        job: JobId,
        /// How long the client should wait before retrying. Like
        /// [`ApiError::Overloaded`], a fixed configured value so redirect
        /// envelopes stay byte-deterministic under churn.
        retry_after_hint: SimDuration,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::UnknownJob { job } => {
                write!(f, "no tenant serves {job}")
            }
            ApiError::QuotaExceeded {
                job,
                budget,
                denied,
            } => {
                write!(
                    f,
                    "{job} over its {budget} strict quota: {denied} object(s) refused admission"
                )
            }
            ApiError::NoData { request } => {
                write!(f, "no ingested data satisfies {request}")
            }
            ApiError::Store(e) => write!(f, "persistent store: {e}"),
            ApiError::Workload(e) => write!(f, "workload: {e}"),
            ApiError::Platform(e) => write!(f, "platform: {e}"),
            ApiError::Overloaded { retry_after_hint } => {
                write!(
                    f,
                    "overloaded: retry after {}us",
                    retry_after_hint.as_micros()
                )
            }
            ApiError::Relocated {
                job,
                retry_after_hint,
            } => {
                write!(
                    f,
                    "relocated: {job} is failing over; retry after {}us",
                    retry_after_hint.as_micros()
                )
            }
        }
    }
}

impl Error for ApiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApiError::UnknownJob { .. }
            | ApiError::QuotaExceeded { .. }
            | ApiError::NoData { .. }
            | ApiError::Overloaded { .. }
            | ApiError::Relocated { .. } => None,
            ApiError::Store(e) => Some(e),
            ApiError::Workload(e) => Some(e),
            ApiError::Platform(e) => Some(e),
        }
    }
}

impl From<FlStoreError> for ApiError {
    fn from(e: FlStoreError) -> Self {
        match e {
            FlStoreError::UnknownJob { job } => ApiError::UnknownJob { job },
            FlStoreError::NoData { request } => ApiError::NoData { request },
            FlStoreError::Store(e) => ApiError::Store(e),
            FlStoreError::Workload(e) => ApiError::Workload(e),
            FlStoreError::Platform(e) => ApiError::Platform(e),
        }
    }
}

/// A point-in-time serving summary (the [`Request::Stats`] response).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Architecture label.
    pub label: String,
    /// Tenants behind this front door (1 for single-tenant systems).
    pub tenants: usize,
    /// Requests served so far.
    pub served: usize,
    /// Total needed objects found in cache.
    pub cache_hits: u64,
    /// Total needed objects fetched from the persistent store.
    pub cache_misses: u64,
    /// Overall hit rate in `[0, 1]` (1.0 when nothing was needed).
    pub hit_rate: f64,
    /// Replica reclamations observed (0 for systems without a serverless
    /// cache).
    pub faults: u64,
    /// Objects currently resident in the disk-spill cold tier (0 without
    /// a durability plane).
    pub spilled_objects: u64,
    /// Logical bytes currently resident in the cold tier.
    pub spilled_bytes: ByteSize,
    /// Spilled objects faulted back from disk on the serve path so far.
    pub spill_faults: u64,
    /// Per-tenant quota occupancy, in job order (empty for systems that do
    /// not account residency, e.g. the aggregator baselines). Reported
    /// *after* any cross-tenant pressure pass the stats probe triggered.
    pub quota: Vec<QuotaUsage>,
}

impl StatsReport {
    /// Builds a single-tenant report from a serving ledger (no quota
    /// occupancy rows; callers that account residency attach their own).
    pub fn from_ledger(label: String, ledger: &ServiceLedger, faults: u64) -> Self {
        StatsReport {
            label,
            tenants: 1,
            served: ledger.len(),
            cache_hits: ledger.hits(),
            cache_misses: ledger.misses(),
            hit_rate: ledger.hit_rate(),
            faults,
            spilled_objects: 0,
            spilled_bytes: ByteSize::ZERO,
            spill_faults: 0,
            quota: Vec::new(),
        }
    }
}

/// Anything that serves FL non-training traffic behind the typed front
/// door: FLStore, the aggregator baselines, the multi-tenant front end —
/// and every future sharded or concurrent executor.
pub trait Service {
    /// Architecture label for reports.
    fn label(&self) -> String;

    /// Submits one envelope at `now`. Admission failures and execution
    /// failures both surface as [`Response::Rejected`]; rejected
    /// envelopes have no side effects beyond what their partial execution
    /// already committed.
    fn submit(&mut self, now: SimTime, request: Request) -> Response;

    /// Submits a batch of envelopes that share one arrival instant,
    /// returning one response per envelope in order. Executors override
    /// this to amortize fixed per-request work across the batch; the
    /// default processes envelopes sequentially, and every implementation
    /// must keep a batch of one identical to [`Service::submit`].
    fn submit_batch(&mut self, now: SimTime, requests: &[Request]) -> Vec<Response> {
        requests
            .iter()
            .map(|request| self.submit(now, request.clone()))
            .collect()
    }

    /// Total cost over the window ending at `now` (requests + background +
    /// always-on infrastructure + storage).
    fn window_cost(&mut self, now: SimTime) -> CostBreakdown;

    /// Always-on infrastructure cost alone over the window ending at `now`
    /// (used to amortize per-request costs the way the paper does).
    fn infra_cost(&mut self, now: SimTime) -> Cost;
}

fn serve_response(result: Result<ServedRequest, FlStoreError>) -> Response {
    match result {
        Ok(served) => Response::Served(Box::new(served)),
        Err(e) => Response::Rejected(e.into()),
    }
}

/// One envelope's response, possibly with its kernel compute still
/// pending.
///
/// Everything except a successful `Serve` resolves immediately
/// (`Ready`); a successful serve may instead hand back the
/// [`PendingServe`] whose bookkeeping is committed but whose pure kernel
/// any worker can [`finish`](DeferredResponse::finish) — the unit of
/// work the executor's steal plane moves across threads.
#[derive(Debug)]
pub enum DeferredResponse {
    /// Fully resolved.
    Ready(Response),
    /// Bookkeeping done; kernel compute pending.
    Pending(PendingServe),
}

impl DeferredResponse {
    /// Resolves to the final [`Response`], running the kernel if pending.
    pub fn finish(self) -> Response {
        match self {
            DeferredResponse::Ready(response) => response,
            DeferredResponse::Pending(pending) => Response::Served(Box::new(pending.finish())),
        }
    }
}

impl FlStore {
    /// [`Service::submit_batch`] with successful serves left as pending
    /// kernel computes.
    ///
    /// All shared-state effects (ingest, eviction, cache mutation,
    /// tracker, ledger) commit here, on the calling thread, in
    /// submission order; each [`DeferredResponse::Pending`] slot is pure
    /// and `Send`. Finishing every slot in order yields exactly the
    /// `submit_batch` responses — `submit_batch` *is* that composition,
    /// so the two cannot drift.
    pub fn submit_batch_deferred(
        &mut self,
        now: SimTime,
        requests: &[Request],
    ) -> Vec<DeferredResponse> {
        let own = self.catalog().job();
        let mut responses: Vec<Option<DeferredResponse>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        let mut i = 0;
        while i < requests.len() {
            // Collect the run of consecutive Serve envelopes starting here.
            let mut run: Vec<WorkloadRequest> = Vec::new();
            let mut slots: Vec<usize> = Vec::new();
            while let Some(Request::Serve(request)) = requests.get(i) {
                if request.job == own {
                    run.push(*request);
                    slots.push(i);
                } else {
                    responses[i] = Some(DeferredResponse::Ready(Response::Rejected(
                        ApiError::UnknownJob { job: request.job },
                    )));
                }
                i += 1;
            }
            if !run.is_empty() {
                for (slot, result) in slots.into_iter().zip(self.serve_batch_deferred(now, &run)) {
                    responses[slot] = Some(match result {
                        Ok(pending) => DeferredResponse::Pending(pending),
                        Err(e) => DeferredResponse::Ready(Response::Rejected(e.into())),
                    });
                }
            }
            if let Some(request) = requests.get(i) {
                responses[i] = Some(DeferredResponse::Ready(self.submit(now, request.clone())));
                i += 1;
            }
        }
        responses
            .into_iter()
            .map(|r| r.expect("every envelope slot is filled"))
            .collect()
    }
}

impl Service for FlStore {
    fn label(&self) -> String {
        self.policy_name().to_string()
    }

    fn submit(&mut self, now: SimTime, request: Request) -> Response {
        let own = self.catalog().job();
        if let Some(job) = request.job() {
            if job != own {
                return Response::Rejected(ApiError::UnknownJob { job });
            }
        }
        match request {
            Request::Ingest { record, .. } => {
                let receipt = self.ingest_round(now, &record);
                // A strict tenant reports a hot set it could not admit as a
                // typed rejection, not a silently short receipt. Partial
                // execution stands (the round is durably backed up).
                if receipt.quota_denied > 0 {
                    if let Some(quota) = self.quota() {
                        if quota.policy == QuotaPolicy::Strict {
                            return Response::Rejected(ApiError::QuotaExceeded {
                                job: own,
                                budget: quota.bytes,
                                denied: receipt.quota_denied,
                            });
                        }
                    }
                }
                Response::Ingested(receipt)
            }
            Request::Serve(request) => serve_response(self.serve(now, &request)),
            Request::Evict(key) => Response::Evicted {
                was_cached: self.evict(&key),
            },
            Request::Stats => {
                let mut report = StatsReport::from_ledger(
                    Service::label(self),
                    self.ledger(),
                    self.faults_observed(),
                );
                let (spilled_objects, spilled_bytes) = self.spill_stats();
                report.spilled_objects = spilled_objects;
                report.spilled_bytes = spilled_bytes;
                report.spill_faults = self.spill_faults();
                report.quota = vec![self.quota_usage()];
                Response::Stats(report)
            }
        }
    }

    /// Runs of consecutive admitted `Serve` envelopes go through
    /// [`FlStore::serve_batch_deferred`], paying the liveness/refresh
    /// pass once per run; other envelopes (and admission rejections,
    /// which have no side effects) are processed in submission order.
    /// Deferred kernels are finished inline, in order — the parallel
    /// executor calls [`FlStore::submit_batch_deferred`] itself and
    /// spreads the finishes across workers instead.
    fn submit_batch(&mut self, now: SimTime, requests: &[Request]) -> Vec<Response> {
        self.submit_batch_deferred(now, requests)
            .into_iter()
            .map(DeferredResponse::finish)
            .collect()
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        // FLStore has no dedicated always-on servers; its standing cost is
        // the keep-alive pings.
        let _ = now;
        self.platform().billing().keepalive_cost
    }
}

impl Service for MultiTenantStore {
    fn label(&self) -> String {
        format!("FLStore-MT({})", self.tenant_count())
    }

    fn submit(&mut self, now: SimTime, request: Request) -> Response {
        match request.job() {
            Some(job) => match self.tenant_mut(job) {
                Some(store) => store.submit(now, request),
                None => Response::Rejected(ApiError::UnknownJob { job }),
            },
            // System-wide envelopes aggregate over every tenant. They are
            // also the pressure plane's deterministic trigger point: when a
            // global budget is set, over-budget elastic tenants shed their
            // policy victims here, before occupancy is reported — the same
            // barrier semantics the sharded executor gives Stats envelopes,
            // so both planes stay bit-for-bit equivalent.
            None => {
                self.pressure_pass();
                Response::Stats(self.stats_report())
            }
        }
    }

    /// Runs of consecutive `Serve` envelopes bound for the *same tenant*
    /// are forwarded as one sub-batch, so per-tenant executors amortize
    /// across them; everything else routes envelope by envelope.
    fn submit_batch(&mut self, now: SimTime, requests: &[Request]) -> Vec<Response> {
        let mut responses: Vec<Response> = Vec::with_capacity(requests.len());
        let mut i = 0;
        while i < requests.len() {
            let Request::Serve(first) = &requests[i] else {
                responses.push(self.submit(now, requests[i].clone()));
                i += 1;
                continue;
            };
            let job = first.job;
            let mut run: Vec<Request> = Vec::new();
            while let Some(Request::Serve(request)) = requests.get(i) {
                if request.job != job {
                    break;
                }
                run.push(Request::Serve(*request));
                i += 1;
            }
            match self.tenant_mut(job) {
                Some(store) => responses.extend(store.submit_batch(now, &run)),
                None => responses.extend(
                    run.iter()
                        .map(|_| Response::Rejected(ApiError::UnknownJob { job })),
                ),
            }
        }
        responses
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        self.tenants_mut()
            .map(|store| Service::infra_cost(store, now))
            .sum()
    }
}

impl MultiTenantStore {
    /// Aggregated serving statistics across every tenant.
    pub fn stats_report(&self) -> StatsReport {
        let mut report = StatsReport {
            label: format!("FLStore-MT({})", self.tenant_count()),
            tenants: self.tenant_count(),
            served: 0,
            cache_hits: 0,
            cache_misses: 0,
            hit_rate: 1.0,
            faults: 0,
            spilled_objects: 0,
            spilled_bytes: ByteSize::ZERO,
            spill_faults: 0,
            quota: Vec::new(),
        };
        for store in self.tenants() {
            report.served += store.ledger().len();
            report.cache_hits += store.ledger().hits();
            report.cache_misses += store.ledger().misses();
            report.faults += store.faults_observed();
            let (spilled_objects, spilled_bytes) = store.spill_stats();
            report.spilled_objects += spilled_objects;
            report.spilled_bytes += spilled_bytes;
            report.spill_faults += store.spill_faults();
            report.quota.push(store.quota_usage());
        }
        let touched = report.cache_hits + report.cache_misses;
        if touched > 0 {
            report.hit_rate = report.cache_hits as f64 / touched as f64;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TailoredPolicy;
    use crate::store::FlStoreConfig;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_fl::zoo::ModelArch;
    use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
    use flstore_sim::time::SimDuration;
    use flstore_workloads::taxonomy::WorkloadKind;

    fn quiet_config(model: &ModelArch) -> FlStoreConfig {
        FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            ..FlStoreConfig::for_model(model)
        }
    }

    fn loaded_store(rounds: u32) -> (FlStore, FlJobConfig, Vec<RoundRecord>) {
        let cfg = FlJobConfig {
            rounds,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut store = FlStore::new(
            quiet_config(&cfg.model),
            Box::new(TailoredPolicy::new()),
            cfg.job,
            cfg.model,
        );
        let records: Vec<RoundRecord> = FlJobSim::new(cfg.clone()).collect();
        let mut now = SimTime::ZERO;
        for r in &records {
            store.submit(
                now,
                Request::Ingest {
                    job: cfg.job,
                    record: Arc::new(r.clone()),
                },
            );
            now += SimDuration::from_secs(60);
        }
        (store, cfg, records)
    }

    fn p2(id: u64, job: JobId, round: flstore_fl::ids::Round) -> WorkloadRequest {
        WorkloadRequest::new(
            RequestId::new(id),
            WorkloadKind::MaliciousFiltering,
            job,
            round,
            None,
        )
    }

    #[test]
    fn front_door_serves_and_reports_stats() {
        let (mut store, cfg, records) = loaded_store(5);
        let now = SimTime::from_secs(3600);
        let round = records.last().expect("rounds").round;
        let response = store.submit(now, Request::Serve(p2(1, cfg.job, round)));
        let served = response.served().expect("served");
        assert_eq!(served.measured.cache_misses, 0);

        let Response::Stats(stats) = store.submit(now, Request::Stats) else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.served, 1);
        assert_eq!(stats.tenants, 1);
        assert!(stats.hit_rate > 0.99);
    }

    #[test]
    fn admission_rejects_foreign_jobs_without_side_effects() {
        let (mut store, _, records) = loaded_store(3);
        let now = SimTime::from_secs(3600);
        let round = records.last().expect("rounds").round;
        let foreign = JobId::new(99);
        let response = store.submit(now, Request::Serve(p2(1, foreign, round)));
        assert_eq!(
            response.error(),
            Some(&ApiError::UnknownJob { job: foreign })
        );
        assert!(store.ledger().is_empty(), "rejection must not be ledgered");

        let evict = store.submit(now, Request::Evict(MetaKey::aggregate(foreign, round)));
        assert!(!evict.is_ok());
    }

    #[test]
    fn evict_envelope_reports_cache_state() {
        let (mut store, cfg, records) = loaded_store(3);
        let round = records.last().expect("rounds").round;
        let key = MetaKey::aggregate(cfg.job, round);
        let now = SimTime::from_secs(3600);
        assert_eq!(
            store.submit(now, Request::Evict(key)),
            Response::Evicted { was_cached: true }
        );
        assert_eq!(
            store.submit(now, Request::Evict(key)),
            Response::Evicted { was_cached: false }
        );
    }

    #[test]
    fn batch_of_one_matches_submit() {
        let (mut a, cfg, records) = loaded_store(6);
        let (mut b, _, _) = loaded_store(6);
        let now = SimTime::from_secs(7200);
        let round = records.last().expect("rounds").round;
        let request = Request::Serve(p2(7, cfg.job, round));
        let batched = a.submit_batch(now, std::slice::from_ref(&request));
        let single = b.submit(now, request);
        assert_eq!(batched, vec![single]);
        assert_eq!(a.ledger().outcomes, b.ledger().outcomes);
    }

    #[test]
    fn strict_quota_rejects_ingest_honestly_and_keeps_durability() {
        use crate::quota::TenantQuota;
        use flstore_sim::bytes::ByteSize;

        let cfg = FlJobConfig {
            rounds: 2,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        // A budget smaller than a single update: nothing hot can ever be
        // admitted.
        let store_cfg = FlStoreConfig {
            quota: Some(TenantQuota::strict(ByteSize::from_mb(1))),
            ..quiet_config(&cfg.model)
        };
        let mut store = FlStore::new(
            store_cfg,
            Box::new(TailoredPolicy::new()),
            cfg.job,
            cfg.model,
        );
        let record = FlJobSim::new(cfg.clone()).next().expect("rounds");
        let response = store.submit(
            SimTime::ZERO,
            Request::Ingest {
                job: cfg.job,
                record: Arc::new(record.clone()),
            },
        );
        let Response::Rejected(ApiError::QuotaExceeded {
            job,
            budget,
            denied,
        }) = response
        else {
            panic!("a starved strict tenant reports QuotaExceeded, got {response:?}");
        };
        assert_eq!(job, cfg.job);
        assert_eq!(budget, ByteSize::from_mb(1));
        assert!(denied > 0);
        // Partial execution is honest: durability happened, residency not.
        assert!(store.resident_bytes() <= budget);
        assert!(store.persistent().contains(
            &flstore_fl::metadata::MetaKey::aggregate(cfg.job, record.round).object_key()
        ));

        // Serving still works — misses fall back to the persistent store.
        let serve = store.submit(
            SimTime::from_secs(3600),
            Request::Serve(p2(1, cfg.job, record.round)),
        );
        let served = serve.served().expect("pass-through serving");
        assert!(served.measured.cache_misses > 0);
        assert!(store.resident_bytes() <= budget, "serving never overshoots");
    }

    #[test]
    fn stats_carry_per_tenant_quota_occupancy() {
        use crate::quota::{QuotaPolicy, TenantQuota};
        use flstore_sim::bytes::ByteSize;

        let mut front = MultiTenantStore::new(quiet_config(&ModelArch::RESNET18));
        let budget = ByteSize::from_gb(4);
        front.register_job_with_quota(
            JobId::new(1),
            ModelArch::RESNET18,
            Some(TenantQuota::elastic(budget)),
        );
        front.register_job(JobId::new(2), ModelArch::RESNET18);
        for job in [JobId::new(1), JobId::new(2)] {
            let cfg = FlJobConfig {
                rounds: 2,
                ..FlJobConfig::quick_test(job)
            };
            for (i, record) in FlJobSim::new(cfg).enumerate() {
                front.submit(
                    SimTime::from_secs(60 * i as u64),
                    Request::Ingest {
                        job,
                        record: Arc::new(record),
                    },
                );
            }
        }
        let Response::Stats(stats) = front.submit(SimTime::from_secs(3600), Request::Stats) else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.quota.len(), 2, "one occupancy row per tenant");
        assert_eq!(stats.quota[0].job, JobId::new(1));
        assert_eq!(stats.quota[0].quota, Some(TenantQuota::elastic(budget)));
        assert_eq!(
            stats.quota[0].quota.expect("set").policy,
            QuotaPolicy::Elastic
        );
        assert!(
            stats.quota[0].resident > ByteSize::ZERO,
            "rounds are resident"
        );
        assert_eq!(stats.quota[1].job, JobId::new(2));
        assert_eq!(stats.quota[1].quota, None, "tenant 2 is unbounded");
    }

    #[test]
    fn global_pressure_reclaims_from_elastic_tenants_at_stats() {
        use crate::quota::TenantQuota;
        use flstore_sim::bytes::ByteSize;

        let mut front = MultiTenantStore::new(quiet_config(&ModelArch::RESNET18));
        let cfg1 = FlJobConfig {
            rounds: 4,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        // One elastic tenant with a tiny soft budget; ingest overshoots it
        // freely until the global budget forces the pressure pass.
        let soft = ByteSize::from_mb(50);
        front.register_job_with_quota(cfg1.job, cfg1.model, Some(TenantQuota::elastic(soft)));
        let mut now = SimTime::ZERO;
        for record in FlJobSim::new(cfg1.clone()) {
            front.submit(
                now,
                Request::Ingest {
                    job: cfg1.job,
                    record: Arc::new(record),
                },
            );
            now += SimDuration::from_secs(60);
        }
        let before = front.quota_usages()[0].resident;
        assert!(before > soft, "elastic tenants may overshoot their budget");

        // No global budget: stats do not reclaim.
        front.submit(now, Request::Stats);
        assert_eq!(front.quota_usages()[0].resident, before);

        // Arm a global budget below current residency: the stats barrier
        // sheds the elastic overage, down to (at most) the soft budget.
        front.set_global_budget(Some(ByteSize::from_mb(80)));
        let Response::Stats(stats) = front.submit(now, Request::Stats) else {
            panic!("stats envelope answers with stats");
        };
        let after = stats.quota[0].resident;
        assert!(after < before, "pressure reclaimed: {after} vs {before}");
        assert!(
            after <= soft.max(ByteSize::from_mb(80)),
            "residency returns toward the budget: {after}"
        );
    }

    #[test]
    fn multi_tenant_front_door_routes_by_job() {
        let mut front = MultiTenantStore::new(quiet_config(&ModelArch::RESNET18));
        let cfg1 = FlJobConfig {
            rounds: 3,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let cfg2 = FlJobConfig {
            rounds: 3,
            ..FlJobConfig::quick_test(JobId::new(2))
        };
        front.register_job(cfg1.job, cfg1.model);
        front.register_job(cfg2.job, cfg2.model);
        let mut last = std::collections::HashMap::new();
        for cfg in [&cfg1, &cfg2] {
            let mut now = SimTime::ZERO;
            for record in FlJobSim::new(cfg.clone()) {
                last.insert(cfg.job, record.round);
                front.submit(
                    now,
                    Request::Ingest {
                        job: cfg.job,
                        record: Arc::new(record),
                    },
                );
                now += SimDuration::from_secs(60);
            }
        }
        let now = SimTime::from_secs(3600);
        // One batch interleaving both tenants plus a stats envelope.
        let batch = vec![
            Request::Serve(p2(1, cfg1.job, last[&cfg1.job])),
            Request::Serve(p2(2, cfg2.job, last[&cfg2.job])),
            Request::Serve(p2(3, cfg2.job, last[&cfg2.job])),
            Request::Serve(p2(4, JobId::new(9), flstore_fl::ids::Round::ZERO)),
            Request::Stats,
        ];
        let responses = front.submit_batch(now, &batch);
        assert_eq!(responses.len(), batch.len());
        assert!(responses[0].served().is_some());
        assert!(responses[1].served().is_some());
        assert!(responses[2].served().is_some());
        assert_eq!(
            responses[3].error(),
            Some(&ApiError::UnknownJob { job: JobId::new(9) })
        );
        let Response::Stats(stats) = &responses[4] else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.tenants, 2);
        assert_eq!(stats.served, 3);
    }
}
