//! # flstore-core — FLStore: serverless storage + compute for FL non-training workloads
//!
//! The paper's primary contribution: a caching framework that unifies the
//! data and compute planes on serverless functions, with caching policies
//! tailored to the iterative access patterns of federated learning.
//!
//! * [`api`] — the `flstore_api` front door: typed [`Request`]/[`Response`]
//!   envelopes, admission, and the batched [`Service`] trait every serving
//!   architecture implements.
//! * [`engine`] — the Cache Engine: `(client, round) → function` placement
//!   index with replication and async-prefetch availability.
//! * [`tracker`] — the Request Tracker: `request → ([functions], status)`.
//! * [`policy`] — tailored (P1–P4), reactive (LRU/FIFO/LFU/Random), and
//!   static-ablation caching policies.
//! * [`store`] — [`FlStore`]: ingest rounds, serve requests
//!   with locality-aware execution, replicate, fail over, re-fetch.
//! * [`placement`] — the [`PlacementMap`]
//!   boundary: one replica-repair implementation shared by the
//!   single-store path (function loss) and the `flstore-cluster` path
//!   (node loss).
//! * [`tenancy`] — [`MultiTenantStore`]: isolated
//!   per-job caches on one deployment (paper Appendix A).
//! * [`quota`] — per-tenant memory budgets and the deterministic
//!   cross-tenant pressure plane (Appendix A resource governance).
//! * [`durable`] — the durability seam: the write-ahead [`RecordSink`] and
//!   cold-tier [`SpillBackend`] traits the `flstore-durability` crate
//!   implements against real disks.
//! * [`metrics`] — per-request outcomes and experiment ledgers (shared
//!   with the baselines via `flstore-workloads`).
//! * [`error`] — error types.
//!
//! ## Quickstart
//!
//! ```
//! use flstore_core::policy::TailoredPolicy;
//! use flstore_core::store::{FlStore, FlStoreConfig};
//! use flstore_fl::ids::JobId;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_sim::time::{SimDuration, SimTime};
//! use flstore_workloads::request::{RequestId, WorkloadRequest};
//! use flstore_workloads::taxonomy::WorkloadKind;
//!
//! // Train a small job, ingesting each round into FLStore.
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let mut store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! let mut now = SimTime::ZERO;
//! let mut last_round = None;
//! for record in FlJobSim::new(cfg.clone()) {
//!     store.ingest_round(now, &record);
//!     last_round = Some(record.round);
//!     now += SimDuration::from_secs(60);
//! }
//! // Serve a malicious-filtering request for the latest round — a hit.
//! let request = WorkloadRequest::new(
//!     RequestId::new(1),
//!     WorkloadKind::MaliciousFiltering,
//!     cfg.job,
//!     last_round.unwrap(),
//!     None,
//! );
//! let served = store.serve(now, &request).expect("servable");
//! assert_eq!(served.measured.cache_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod durable;
pub mod engine;
pub mod error;
pub mod placement;
pub mod policy;
pub mod quota;
pub mod store;
pub mod tenancy;
pub mod tracker;

/// Per-request outcomes and experiment ledgers (re-exported from
/// `flstore-workloads::service`).
pub mod metrics {
    pub use flstore_workloads::service::{RequestOutcome, ServiceLedger};
}

pub use api::{ApiError, Request, Response, Service, StatsReport};
pub use durable::{DurabilityConfig, LedgerEvent, RecordSink, SpillBackend, StateDigest};
pub use engine::CacheEngine;
pub use error::FlStoreError;
pub use flstore_workloads::service::{RequestOutcome, ServiceLedger};
pub use placement::{repair_after_loss, PlacementMap, RepairReport};
pub use policy::{
    CachingPolicy, EvictionDiscipline, PolicyActions, ReactivePolicy, StaticPolicy, TailoredPolicy,
};
pub use quota::{QuotaPolicy, QuotaUsage, TenantQuota};
pub use store::{FlStore, FlStoreConfig, IngestReceipt, ServedRequest};
pub use tenancy::MultiTenantStore;
pub use tracker::RequestTracker;

// Thread-ownership audit: serving state crosses thread boundaries by
// ownership transfer (whole deployments move onto executor workers), the
// tracker is shared behind its internal `RwLock`, and envelopes travel
// over channels. These bounds are what the sharded execution plane relies
// on; breaking any of them (an `Rc`, a `RefCell`, a non-`Send` policy) is
// a compile error here rather than deep inside an executor.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<store::FlStore>();
    assert_send::<tenancy::MultiTenantStore>();
    assert_send::<Box<dyn policy::CachingPolicy>>();
    assert_send_sync::<tracker::RequestTracker>();
    assert_send_sync::<api::Request>();
    assert_send_sync::<api::Response>();
};
