//! Caching policies (paper §4.4, Table 1).
//!
//! The policy decides, at each ingest and each request, which metadata is
//! *hot* (kept in function memory), which should be *prefetched*
//! asynchronously from the persistent store, and which is *cold* (evicted —
//! safely, because every object is write-through persisted).
//!
//! * [`TailoredPolicy`] — FLStore's contribution: exploits the iterative,
//!   predictable access patterns of FL (P1–P4 classes) to keep exactly the
//!   data imminent requests will touch.
//! * [`ReactivePolicy`] — classic LRU / FIFO / LFU / Random disciplines that
//!   only cache what was already accessed. FL's forward-marching access
//!   pattern almost never revisits an object, so these achieve ≈0% hit
//!   rates (paper Table 2).
//! * [`StaticPolicy`] — a tailored policy frozen to one class regardless of
//!   the workload (the FLStore-Static ablation, Fig. 18).

use std::collections::VecDeque;
use std::fmt;

use flstore_fl::ids::{ClientId, Round};
use flstore_fl::metadata::{MetaKey, MetaKind};
use flstore_sim::bytes::ByteSize;
use flstore_sim::rng::DetRng;
use flstore_workloads::request::{JobCatalog, WorkloadRequest};
use flstore_workloads::taxonomy::PolicyClass;

use crate::engine::CacheEngine;

/// What a policy wants done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyActions {
    /// Newly ingested keys to cache now (hot classification).
    pub cache: Vec<MetaKey>,
    /// Keys to fetch asynchronously from the persistent store.
    pub prefetch: Vec<MetaKey>,
    /// Cached keys that are no longer needed.
    pub evict: Vec<MetaKey>,
}

impl PolicyActions {
    /// No actions.
    pub fn none() -> Self {
        PolicyActions::default()
    }
}

/// A caching policy driving the FLStore cache.
///
/// Policies are `Send`: an [`FlStore`](crate::store::FlStore) (which owns
/// its policy as a boxed trait object) must be movable onto an executor's
/// worker thread, so the whole deployment — policy included — crosses
/// thread boundaries by ownership transfer.
pub trait CachingPolicy: fmt::Debug + Send {
    /// Human-readable name (figure labels use it).
    fn name(&self) -> &'static str;

    /// Classifies a newly ingested round's keys into hot (cache) and cold,
    /// and names victims made obsolete by the new round.
    fn on_ingest(
        &mut self,
        ingested: &[MetaKey],
        catalog: &JobCatalog,
        engine: &CacheEngine,
    ) -> PolicyActions;

    /// Reacts to an incoming request: prefetches data imminent requests
    /// will need and evicts data the request train has moved past.
    fn on_request(
        &mut self,
        request: &WorkloadRequest,
        catalog: &JobCatalog,
        engine: &CacheEngine,
    ) -> PolicyActions;

    /// Whether objects fetched on a miss should be inserted into the cache.
    fn cache_on_miss(&self) -> bool;

    /// Chooses victims to free at least `need` bytes under capacity
    /// pressure. Implementations order victims by their discipline.
    fn victims(&mut self, need: ByteSize, engine: &CacheEngine) -> Vec<MetaKey>;
}

// ---------------------------------------------------------------------------
// Tailored (FLStore) policy
// ---------------------------------------------------------------------------

/// FLStore's workload-tailored policy.
#[derive(Debug, Clone)]
pub struct TailoredPolicy {
    /// Full-round working set: keep updates/aggregates of this many most
    /// recent rounds (current round + the pre-cached next one, paper Fig. 6).
    pub keep_rounds: u32,
    /// P4 window: metrics/hyperparameters of the last `R` rounds (paper
    /// default 10).
    pub p4_window: u32,
    /// P3 window kept for tracked clients.
    pub p3_window: u32,
    /// Clients currently tracked by across-round workloads (bounded FIFO).
    tracked: VecDeque<ClientId>,
    /// Maximum tracked clients.
    tracked_cap: usize,
}

impl Default for TailoredPolicy {
    fn default() -> Self {
        TailoredPolicy {
            keep_rounds: 2,
            p4_window: 10,
            p3_window: 4,
            tracked: VecDeque::new(),
            tracked_cap: 32,
        }
    }
}

impl TailoredPolicy {
    /// Creates the default tailored policy.
    pub fn new() -> Self {
        TailoredPolicy::default()
    }

    fn is_tracked(&self, client: ClientId) -> bool {
        self.tracked.contains(&client)
    }

    fn track(&mut self, client: ClientId) {
        if self.is_tracked(client) {
            return;
        }
        if self.tracked.len() >= self.tracked_cap {
            self.tracked.pop_front();
        }
        self.tracked.push_back(client);
    }

    fn round_is_stale(&self, key_round: Round, latest: Round, keep: u32) -> bool {
        key_round.as_u32() + keep <= latest.as_u32()
    }

    fn evictions_for_latest(&self, latest: Round, engine: &CacheEngine) -> Vec<MetaKey> {
        engine
            .keys()
            .filter(|k| match k.kind {
                MetaKind::ClientUpdate => {
                    let stale = self.round_is_stale(k.round, latest, self.keep_rounds);
                    let protected = k
                        .client
                        .map(|c| {
                            self.is_tracked(c)
                                && !self.round_is_stale(k.round, latest, self.p3_window)
                        })
                        .unwrap_or(false);
                    stale && !protected
                }
                MetaKind::Aggregate => {
                    // Aggregates are small relative to a full round but P3
                    // traces need them across the tracked window.
                    let keep = if self.tracked.is_empty() {
                        self.keep_rounds
                    } else {
                        self.p3_window.max(self.keep_rounds)
                    };
                    self.round_is_stale(k.round, latest, keep)
                }
                MetaKind::HyperParams | MetaKind::RoundMetrics => {
                    self.round_is_stale(k.round, latest, self.p4_window)
                }
            })
            .copied()
            .collect()
    }
}

impl CachingPolicy for TailoredPolicy {
    fn name(&self) -> &'static str {
        "FLStore"
    }

    fn on_ingest(
        &mut self,
        ingested: &[MetaKey],
        _catalog: &JobCatalog,
        engine: &CacheEngine,
    ) -> PolicyActions {
        // Every class of fresh metadata is hot: the latest round serves P1
        // (aggregate), P2 (all updates), P3 (tracked clients' newest
        // updates arrive here — the paper's "pre-caching round i+1"), and
        // P4 (metrics/hyperparameters).
        let cache = ingested.to_vec();
        let latest = ingested
            .iter()
            .map(|k| k.round)
            .max()
            .unwrap_or(Round::ZERO);
        let evict = self.evictions_for_latest(latest, engine);
        PolicyActions {
            cache,
            prefetch: Vec::new(),
            evict,
        }
    }

    fn on_request(
        &mut self,
        request: &WorkloadRequest,
        catalog: &JobCatalog,
        engine: &CacheEngine,
    ) -> PolicyActions {
        let mut actions = PolicyActions::none();
        match request.kind.policy_class() {
            PolicyClass::P3AcrossRounds => {
                let client = request
                    .client
                    .expect("P3 requests carry a client by construction");
                self.track(client);
                // Pre-cache the tracked client's window from the persistent
                // store (rounds the ingest train has already evicted).
                for key in catalog.data_needs(request) {
                    if !engine.contains(&key) {
                        actions.prefetch.push(key);
                    }
                }
            }
            PolicyClass::P2AllUpdatesInRound => {
                // The request train moves forward: everything strictly older
                // than the requested round (minus protections) is done with.
                if let Some(prev) = request.round.prev() {
                    let evict = self.evictions_for_latest(prev, engine);
                    actions.evict.extend(evict);
                }
            }
            PolicyClass::P1IndividualOrAggregate | PolicyClass::P4Metadata => {
                // Served from the standing hot set maintained at ingest.
            }
        }
        actions
    }

    fn cache_on_miss(&self) -> bool {
        true
    }

    fn victims(&mut self, need: ByteSize, engine: &CacheEngine) -> Vec<MetaKey> {
        // Capacity pressure (FLStore-limited): shed oldest rounds first,
        // small P4 records last.
        let mut candidates: Vec<(MetaKey, ByteSize, u32)> = engine
            .keys()
            .map(|k| {
                let size = engine.meta(k).map(|m| m.size).unwrap_or(ByteSize::ZERO);
                (*k, size, k.round.as_u32())
            })
            .collect();
        candidates.sort_by_key(|(k, _, round)| {
            let class_rank = match k.kind {
                MetaKind::ClientUpdate | MetaKind::Aggregate => 0u8,
                MetaKind::HyperParams | MetaKind::RoundMetrics => 1u8,
            };
            // The key itself breaks ties: candidates come out of a hash
            // map whose iteration order is arbitrary, and victim choice
            // must not depend on it.
            (class_rank, *round, *k)
        });
        let mut freed = ByteSize::ZERO;
        let mut victims = Vec::new();
        for (k, size, _) in candidates {
            if freed >= need {
                break;
            }
            freed += size;
            victims.push(k);
        }
        victims
    }
}

// ---------------------------------------------------------------------------
// Reactive (traditional) policies
// ---------------------------------------------------------------------------

/// The classic eviction discipline a [`ReactivePolicy`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionDiscipline {
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Least frequently used.
    Lfu,
    /// Uniformly random victims.
    Random,
}

impl EvictionDiscipline {
    /// Figure label ("FLStore-LRU", ...).
    pub fn label(self) -> &'static str {
        match self {
            EvictionDiscipline::Lru => "FLStore-LRU",
            EvictionDiscipline::Fifo => "FLStore-FIFO",
            EvictionDiscipline::Lfu => "FLStore-LFU",
            EvictionDiscipline::Random => "FLStore-Random",
        }
    }
}

/// A traditional cache-on-access policy: never prefetches, never classifies
/// ingested data as hot, evicts by its discipline under pressure.
#[derive(Debug, Clone)]
pub struct ReactivePolicy {
    discipline: EvictionDiscipline,
    rng: DetRng,
}

impl ReactivePolicy {
    /// Creates a reactive policy with the given discipline.
    pub fn new(discipline: EvictionDiscipline, seed: u64) -> Self {
        ReactivePolicy {
            discipline,
            rng: DetRng::stream(seed, "reactive-policy"),
        }
    }

    /// The discipline in use.
    pub fn discipline(&self) -> EvictionDiscipline {
        self.discipline
    }
}

impl CachingPolicy for ReactivePolicy {
    fn name(&self) -> &'static str {
        self.discipline.label()
    }

    fn on_ingest(
        &mut self,
        _ingested: &[MetaKey],
        _catalog: &JobCatalog,
        _engine: &CacheEngine,
    ) -> PolicyActions {
        // Reactive caches only observe demand; ingest is not demand.
        PolicyActions::none()
    }

    fn on_request(
        &mut self,
        _request: &WorkloadRequest,
        _catalog: &JobCatalog,
        _engine: &CacheEngine,
    ) -> PolicyActions {
        PolicyActions::none()
    }

    fn cache_on_miss(&self) -> bool {
        true
    }

    fn victims(&mut self, need: ByteSize, engine: &CacheEngine) -> Vec<MetaKey> {
        // Enumerate candidates in key order, not hash-map order: rank
        // assignment (the Random discipline draws one rank per key) and
        // tie-breaking must not depend on iteration order.
        let mut keys: Vec<MetaKey> = engine.keys().copied().collect();
        keys.sort_unstable();
        let mut candidates: Vec<(MetaKey, ByteSize, u64)> = keys
            .into_iter()
            .map(|k| {
                let meta = engine.meta(&k);
                let size = meta.map(|m| m.size).unwrap_or(ByteSize::ZERO);
                let rank = match (self.discipline, meta) {
                    (EvictionDiscipline::Lru, Some(m)) => m.last_access_seq,
                    (EvictionDiscipline::Fifo, Some(m)) => m.inserted_seq,
                    (EvictionDiscipline::Lfu, Some(m)) => m.frequency,
                    (EvictionDiscipline::Random, _) => self.rng.next_u64(),
                    (_, None) => 0,
                };
                (k, size, rank)
            })
            .collect();
        candidates.sort_by_key(|(k, _, rank)| (*rank, *k));
        let mut freed = ByteSize::ZERO;
        let mut victims = Vec::new();
        for (k, size, _) in candidates {
            if freed >= need {
                break;
            }
            freed += size;
            victims.push(k);
        }
        victims
    }
}

// ---------------------------------------------------------------------------
// Static ablation policy
// ---------------------------------------------------------------------------

/// A tailored policy frozen to a single class (the FLStore-Static ablation):
/// it keeps serving the class it was configured for even when the workload
/// changes, so requests from other classes miss.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    class: PolicyClass,
    inner: TailoredPolicy,
}

impl StaticPolicy {
    /// Creates a static policy frozen to `class`.
    pub fn new(class: PolicyClass) -> Self {
        StaticPolicy {
            class,
            inner: TailoredPolicy::new(),
        }
    }

    /// The frozen class.
    pub fn class(&self) -> PolicyClass {
        self.class
    }
}

impl CachingPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "FLStore-Static"
    }

    fn on_ingest(
        &mut self,
        ingested: &[MetaKey],
        _catalog: &JobCatalog,
        engine: &CacheEngine,
    ) -> PolicyActions {
        // Cache only the kinds the frozen class consumes.
        let cache: Vec<MetaKey> = ingested
            .iter()
            .filter(|k| match self.class {
                PolicyClass::P1IndividualOrAggregate => k.kind == MetaKind::Aggregate,
                PolicyClass::P2AllUpdatesInRound => {
                    matches!(k.kind, MetaKind::ClientUpdate | MetaKind::Aggregate)
                }
                PolicyClass::P3AcrossRounds => {
                    matches!(k.kind, MetaKind::ClientUpdate | MetaKind::Aggregate)
                }
                PolicyClass::P4Metadata => {
                    matches!(k.kind, MetaKind::HyperParams | MetaKind::RoundMetrics)
                }
            })
            .copied()
            .collect();
        let latest = ingested
            .iter()
            .map(|k| k.round)
            .max()
            .unwrap_or(Round::ZERO);
        let evict = self.inner.evictions_for_latest(latest, engine);
        PolicyActions {
            cache,
            prefetch: Vec::new(),
            evict,
        }
    }

    fn on_request(
        &mut self,
        _request: &WorkloadRequest,
        _catalog: &JobCatalog,
        _engine: &CacheEngine,
    ) -> PolicyActions {
        // Frozen: does not adapt to what is actually being requested.
        PolicyActions::none()
    }

    fn cache_on_miss(&self) -> bool {
        false // it "knows" what to cache; misses are served pass-through
    }

    fn victims(&mut self, need: ByteSize, engine: &CacheEngine) -> Vec<MetaKey> {
        self.inner.victims(need, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::ids::JobId;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_fl::metadata::round_blobs;
    use flstore_serverless::function::FunctionId;
    use flstore_sim::time::SimTime;
    use flstore_workloads::request::RequestId;
    use flstore_workloads::taxonomy::WorkloadKind;

    struct Fixture {
        catalog: JobCatalog,
        engine: CacheEngine,
        rounds: Vec<Vec<MetaKey>>,
        records: Vec<flstore_fl::job::RoundRecord>,
    }

    fn fixture(rounds: u32) -> Fixture {
        let cfg = FlJobConfig::quick_test(JobId::new(1));
        let mut catalog = JobCatalog::new(cfg.job, cfg.model);
        let records: Vec<_> = FlJobSim::new(cfg.clone()).take(rounds as usize).collect();
        let mut keys = Vec::new();
        for r in &records {
            catalog.observe_round(r);
            keys.push(
                round_blobs(r, cfg.job, &cfg.model)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect::<Vec<_>>(),
            );
        }
        Fixture {
            catalog,
            engine: CacheEngine::new(),
            rounds: keys,
            records,
        }
    }

    fn apply(engine: &mut CacheEngine, actions: &PolicyActions) {
        for k in &actions.cache {
            engine.record(
                *k,
                vec![FunctionId::from_raw(0)],
                ByteSize::from_mb(45),
                SimTime::ZERO,
            );
        }
        for k in &actions.evict {
            engine.remove(k);
        }
    }

    #[test]
    fn tailored_keeps_recent_rounds_hot() {
        let mut f = fixture(6);
        let mut policy = TailoredPolicy::new();
        for keys in f.rounds.clone() {
            let actions = policy.on_ingest(&keys, &f.catalog, &f.engine);
            assert_eq!(actions.cache.len(), keys.len(), "fresh data is all hot");
            apply(&mut f.engine, &actions);
        }
        // After 6 rounds with keep_rounds=2, only rounds 4 and 5 updates
        // should remain; metrics for the last 6 (< p4_window) all remain.
        for k in f.engine.keys() {
            match k.kind {
                MetaKind::ClientUpdate => assert!(k.round.as_u32() >= 4, "stale {k}"),
                MetaKind::Aggregate => assert!(k.round.as_u32() >= 4, "stale {k}"),
                _ => {}
            }
        }
        // The latest round's updates are cached (P2 requests will hit).
        let last_round = f.records[5].round;
        for u in &f.records[5].updates {
            assert!(f
                .engine
                .contains(&MetaKey::update(JobId::new(1), last_round, u.client)));
        }
    }

    #[test]
    fn tailored_tracks_p3_clients_and_prefetches() {
        let mut f = fixture(8);
        let mut policy = TailoredPolicy::new();
        for keys in f.rounds.clone() {
            let actions = policy.on_ingest(&keys, &f.catalog, &f.engine);
            apply(&mut f.engine, &actions);
        }
        let client = f.records[7].updates[0].client;
        let request = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::ReputationCalc,
            JobId::new(1),
            f.records[7].round,
            Some(client),
        );
        let actions = policy.on_request(&request, &f.catalog, &f.engine);
        // Rounds 4..5 were evicted by the ingest train, so the tracked
        // window needs prefetching for whatever the client participated in.
        for k in &actions.prefetch {
            assert!(!f.engine.contains(k));
            assert!(k.round.as_u32() >= 4);
        }
        // Tracking protects the client's updates from the next eviction.
        let keys8 = &f.rounds[7];
        let next = policy.on_ingest(keys8, &f.catalog, &f.engine);
        for k in &next.evict {
            if k.kind == MetaKind::ClientUpdate {
                assert_ne!(k.client, Some(client), "tracked client evicted: {k}");
            }
        }
    }

    #[test]
    fn reactive_policies_never_prefetch_or_classify() {
        let mut f = fixture(3);
        for discipline in [
            EvictionDiscipline::Lru,
            EvictionDiscipline::Fifo,
            EvictionDiscipline::Lfu,
            EvictionDiscipline::Random,
        ] {
            let mut policy = ReactivePolicy::new(discipline, 7);
            let actions = policy.on_ingest(&f.rounds[0], &f.catalog, &f.engine);
            assert_eq!(actions, PolicyActions::none());
            let request = WorkloadRequest::new(
                RequestId::new(1),
                WorkloadKind::Clustering,
                JobId::new(1),
                f.records[0].round,
                None,
            );
            let actions = policy.on_request(&request, &f.catalog, &f.engine);
            assert_eq!(actions, PolicyActions::none());
            assert!(policy.cache_on_miss());
        }
        // Disciplines pick different victims given distinct orderings.
        for keys in f.rounds.iter() {
            for k in keys {
                f.engine.record(
                    *k,
                    vec![FunctionId::from_raw(0)],
                    ByteSize::from_mb(10),
                    SimTime::ZERO,
                );
            }
        }
        // Touch round 0 after all inserts so it is most-recently-used.
        for k in &f.rounds[0] {
            f.engine.touch(k);
        }
        let mut lru = ReactivePolicy::new(EvictionDiscipline::Lru, 7);
        let victims = lru.victims(ByteSize::from_mb(10), &f.engine);
        assert_eq!(victims.len(), 1);
        // LRU victim must not be from the touched round 0.
        assert_ne!(victims[0].round, f.records[0].round);
    }

    #[test]
    fn fifo_evicts_insertion_order() {
        let f = fixture(2);
        let mut engine = CacheEngine::new();
        for (i, keys) in f.rounds.iter().enumerate() {
            for k in keys {
                engine.record(
                    *k,
                    vec![FunctionId::from_raw(0)],
                    ByteSize::from_mb(10),
                    SimTime::ZERO,
                );
            }
            let _ = i;
        }
        let mut fifo = ReactivePolicy::new(EvictionDiscipline::Fifo, 1);
        let victims = fifo.victims(ByteSize::from_mb(25), &engine);
        assert_eq!(victims.len(), 3);
        assert!(victims.iter().all(|k| k.round == f.records[0].round));
    }

    #[test]
    fn static_policy_caches_only_its_class() {
        let mut f = fixture(2);
        let mut policy = StaticPolicy::new(PolicyClass::P1IndividualOrAggregate);
        let actions = policy.on_ingest(&f.rounds[0], &f.catalog, &f.engine);
        assert!(actions.cache.iter().all(|k| k.kind == MetaKind::Aggregate));
        assert_eq!(actions.cache.len(), 1);
        apply(&mut f.engine, &actions);
        // A P2 request gets no adaptation.
        let request = WorkloadRequest::new(
            RequestId::new(2),
            WorkloadKind::MaliciousFiltering,
            JobId::new(1),
            f.records[0].round,
            None,
        );
        let actions = policy.on_request(&request, &f.catalog, &f.engine);
        assert_eq!(actions, PolicyActions::none());
        assert!(!policy.cache_on_miss());
        assert_eq!(policy.class(), PolicyClass::P1IndividualOrAggregate);
    }

    #[test]
    fn tailored_victims_prefer_oldest_updates() {
        let f = fixture(3);
        let mut engine = CacheEngine::new();
        for keys in &f.rounds {
            for k in keys {
                engine.record(
                    *k,
                    vec![FunctionId::from_raw(0)],
                    ByteSize::from_mb(10),
                    SimTime::ZERO,
                );
            }
        }
        let mut policy = TailoredPolicy::new();
        let victims = policy.victims(ByteSize::from_mb(15), &engine);
        assert_eq!(victims.len(), 2);
        for v in &victims {
            assert_eq!(v.round, f.records[0].round);
            assert!(matches!(
                v.kind,
                MetaKind::ClientUpdate | MetaKind::Aggregate
            ));
        }
    }
}
