//! FLStore error types.

use std::error::Error;
use std::fmt;

use flstore_cloud::blob::StoreError;
use flstore_fl::ids::JobId;
use flstore_serverless::platform::PlatformError;
use flstore_workloads::request::RequestId;
use flstore_workloads::run::WorkloadError;

/// Failures while serving a non-training request.
#[derive(Debug, Clone, PartialEq)]
pub enum FlStoreError {
    /// The operation named a job no deployment serves (multi-tenant
    /// routing miss). This is an admission failure, not a data failure:
    /// it carries the offending job, never a synthesized request id.
    UnknownJob {
        /// The job nobody serves.
        job: JobId,
    },
    /// The catalog has no data for the requested round(s) — nothing was
    /// ever ingested there.
    NoData {
        /// The offending request.
        request: RequestId,
    },
    /// Persistent-store failure (missing backup object).
    Store(StoreError),
    /// The workload rejected its inputs.
    Workload(WorkloadError),
    /// Serverless platform failure.
    Platform(PlatformError),
}

impl fmt::Display for FlStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlStoreError::UnknownJob { job } => {
                write!(f, "no tenant serves {job}")
            }
            FlStoreError::NoData { request } => {
                write!(f, "no ingested data satisfies {request}")
            }
            FlStoreError::Store(e) => write!(f, "persistent store: {e}"),
            FlStoreError::Workload(e) => write!(f, "workload: {e}"),
            FlStoreError::Platform(e) => write!(f, "platform: {e}"),
        }
    }
}

impl Error for FlStoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlStoreError::UnknownJob { .. } | FlStoreError::NoData { .. } => None,
            FlStoreError::Store(e) => Some(e),
            FlStoreError::Workload(e) => Some(e),
            FlStoreError::Platform(e) => Some(e),
        }
    }
}

impl From<StoreError> for FlStoreError {
    fn from(e: StoreError) -> Self {
        FlStoreError::Store(e)
    }
}

impl From<WorkloadError> for FlStoreError {
    fn from(e: WorkloadError) -> Self {
        FlStoreError::Workload(e)
    }
}

impl From<PlatformError> for FlStoreError {
    fn from(e: PlatformError) -> Self {
        FlStoreError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FlStoreError::NoData {
            request: RequestId::new(3),
        };
        assert!(e.to_string().contains("req-3"));
        assert!(e.source().is_none());

        let e = FlStoreError::UnknownJob { job: JobId::new(9) };
        assert!(e.to_string().contains("job-9"));
        assert!(e.source().is_none());

        let e = FlStoreError::from(StoreError::NotFound(flstore_cloud::blob::ObjectKey::new(
            "k",
        )));
        assert!(e.to_string().contains("persistent store"));
        assert!(e.source().is_some());
    }
}
