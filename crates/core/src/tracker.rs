//! The Request Tracker (paper §4.3).
//!
//! Receives non-training requests, records which functions each was routed
//! to, and tracks completion — the paper's dictionary
//! `RequestID → Tuple(List[FunctionID], Status)`.
//!
//! The tracker is shared state between the client-facing front end and the
//! functions reporting progress, so it is internally synchronized
//! (`parking_lot::RwLock`) and cheap: the paper measures <0.19 MB for 1000
//! in-flight requests and sub-millisecond operations (§5.5), which the
//! overhead benchmarks reproduce.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_workloads::request::RequestId;

/// Routing record of one in-flight request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEntry {
    /// Functions the request was dispatched to.
    pub functions: Vec<FunctionId>,
    /// Whether all dispatched work completed.
    pub done: bool,
}

/// Thread-safe request routing/progress tracker.
///
/// # Examples
///
/// ```
/// use flstore_core::tracker::RequestTracker;
/// use flstore_workloads::request::RequestId;
/// use flstore_serverless::function::FunctionId;
///
/// let tracker = RequestTracker::new();
/// let id = RequestId::new(1);
/// tracker.dispatch(id, vec![FunctionId::from_raw(0)]);
/// assert!(!tracker.is_done(id).unwrap());
/// tracker.complete(id);
/// assert!(tracker.is_done(id).unwrap());
/// ```
#[derive(Debug)]
pub struct RequestTracker {
    entries: RwLock<HashMap<RequestId, RequestEntry>>,
    /// Mirror of the unfinished-entry count, so the hot-path gauge
    /// [`RequestTracker::in_flight`] never takes the map lock. Mutated
    /// only while holding the `entries` write lock, which already orders
    /// the updates — hence every access is Relaxed.
    open: AtomicUsize,
}

impl Default for RequestTracker {
    fn default() -> Self {
        RequestTracker::new()
    }
}

impl RequestTracker {
    /// Creates an empty tracker. The lock is named so the `lock-order`
    /// deadlock detector can identify it in witness stacks.
    pub fn new() -> Self {
        RequestTracker {
            entries: RwLock::named(HashMap::new(), "core.tracker.entries"),
            open: AtomicUsize::new(0),
        }
    }

    /// Records that `request` was routed to `functions`.
    pub fn dispatch(&self, request: RequestId, functions: Vec<FunctionId>) {
        let mut entries = self.entries.write();
        let prev = entries.insert(
            request,
            RequestEntry {
                functions,
                done: false,
            },
        );
        if !matches!(prev, Some(ref e) if !e.done) {
            // Relaxed: guarded by the write lock above; the atomic only
            // mirrors the count for lock-free reads.
            self.open.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds a function to an existing dispatch (failover re-routing).
    /// Returns false if the request is unknown.
    pub fn reroute(&self, request: RequestId, function: FunctionId) -> bool {
        let mut entries = self.entries.write();
        match entries.get_mut(&request) {
            Some(entry) => {
                if !entry.functions.contains(&function) {
                    entry.functions.push(function);
                }
                true
            }
            None => false,
        }
    }

    /// Marks a request complete. Returns false if unknown.
    pub fn complete(&self, request: RequestId) -> bool {
        let mut entries = self.entries.write();
        match entries.get_mut(&request) {
            Some(entry) => {
                if !entry.done {
                    entry.done = true;
                    // Relaxed: guarded by the write lock above.
                    self.open.fetch_sub(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Completion status (`None` for unknown requests).
    pub fn is_done(&self, request: RequestId) -> Option<bool> {
        self.entries.read().get(&request).map(|e| e.done)
    }

    /// Routing record of a request.
    pub fn entry(&self, request: RequestId) -> Option<RequestEntry> {
        self.entries.read().get(&request).cloned()
    }

    /// Removes a finished request's record (the client collected results).
    pub fn forget(&self, request: RequestId) -> bool {
        let mut entries = self.entries.write();
        match entries.remove(&request) {
            Some(entry) => {
                if !entry.done {
                    // Relaxed: guarded by the write lock above.
                    self.open.fetch_sub(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Number of tracked requests.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no requests are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Number of tracked-but-unfinished requests. Lock-free: reads the
    /// mirrored counter (Relaxed — a monitoring gauge needs no ordering)
    /// instead of scanning the map under its lock.
    pub fn in_flight(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Estimated resident memory, for the overhead analysis (§5.5).
    pub fn estimated_memory(&self) -> ByteSize {
        let entries = self.entries.read();
        // RequestId = 8 B; entry = Vec header 24 B + 8 B/function + bool,
        // hash-map entry overhead ≈ 48 B.
        let fns: usize = entries.values().map(|e| 8 * e.functions.len()).sum();
        ByteSize::from_bytes((entries.len() * (8 + 24 + 1 + 48) + fns) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u64) -> FunctionId {
        FunctionId::from_raw(i)
    }

    #[test]
    fn dispatch_complete_forget_lifecycle() {
        let t = RequestTracker::new();
        let r = RequestId::new(42);
        t.dispatch(r, vec![fid(1), fid(2)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(
            t.entry(r).expect("dispatched").functions,
            vec![fid(1), fid(2)]
        );
        assert!(t.complete(r));
        assert_eq!(t.in_flight(), 0);
        assert!(t.forget(r));
        assert!(t.is_empty());
        assert!(!t.complete(r));
        assert_eq!(t.is_done(r), None);
    }

    #[test]
    fn reroute_appends_unique() {
        let t = RequestTracker::new();
        let r = RequestId::new(1);
        t.dispatch(r, vec![fid(1)]);
        assert!(t.reroute(r, fid(2)));
        assert!(t.reroute(r, fid(2))); // idempotent
        assert_eq!(t.entry(r).expect("known").functions, vec![fid(1), fid(2)]);
        assert!(!t.reroute(RequestId::new(9), fid(3)));
    }

    #[test]
    fn memory_matches_paper_scale() {
        let t = RequestTracker::new();
        for i in 0..1000 {
            t.dispatch(RequestId::new(i), vec![fid(i % 7)]);
        }
        let est = t.estimated_memory();
        // Paper §5.5: <0.19 MB at 1000 concurrent requests.
        assert!(est < ByteSize::from_mb_f64(0.25), "{est}");
        assert!(est > ByteSize::from_kb(50), "{est}");
    }

    #[test]
    fn in_flight_gauge_stays_exact_across_lifecycles() {
        let t = RequestTracker::new();
        let scan = |t: &RequestTracker| t.entries.read().values().filter(|e| !e.done).count();
        let r1 = RequestId::new(1);
        let r2 = RequestId::new(2);
        t.dispatch(r1, vec![fid(1)]);
        t.dispatch(r2, vec![fid(2)]);
        assert_eq!(t.in_flight(), 2);
        t.dispatch(r1, vec![fid(3)]); // re-dispatch while open: no double count
        assert_eq!(t.in_flight(), 2);
        t.complete(r1);
        t.complete(r1); // idempotent completion: no double decrement
        assert_eq!(t.in_flight(), 1);
        t.dispatch(r1, vec![fid(4)]); // re-dispatch after completion re-opens
        assert_eq!(t.in_flight(), 2);
        t.forget(r2); // forgetting an open request closes it
        assert_eq!(t.in_flight(), 1);
        t.complete(r1);
        t.forget(r1); // forgetting a finished request is a no-op on the gauge
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.in_flight(), scan(&t));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let t = Arc::new(RequestTracker::new());
        let mut handles = Vec::new();
        for thread in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let id = RequestId::new(thread * 1000 + i);
                    t.dispatch(id, vec![fid(i % 3)]);
                    t.complete(id);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.in_flight(), 0);
    }
}
