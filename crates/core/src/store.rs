//! FLStore: the unified data/compute plane (paper §4).
//!
//! Wires the pieces together: the [`CacheEngine`] tracks placements across
//! function memories, the [`RequestTracker`] routes and monitors requests,
//! a [`CachingPolicy`] classifies hot/cold data, the serverless
//! [`Platform`] holds cached objects next to compute, and the persistent
//! [`ObjectStore`] backs everything for durability.
//!
//! Request path (paper Fig. 6): request → tracker → engine lookup →
//! locality-aware execution on the function(s) holding the data →
//! policy-driven prefetch/evict → response. Misses fall back to the
//! persistent store, exactly like conventional frameworks — which is why
//! FLStore's worst case matches the baseline and its common case removes
//! the communication bottleneck entirely.

use flstore_cloud::blob::Blob;
use flstore_cloud::network::NetworkProfile;
use flstore_cloud::objstore::{ObjectStore, ObjectStoreConfig};
use flstore_fl::ids::JobId;
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::{round_entries, MetaKey, MetaValue, SharedValue};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::function::{FunctionConfig, FunctionId};
use flstore_serverless::platform::{Platform, PlatformConfig};
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::CostBreakdown;
use flstore_sim::latency::LatencyBreakdown;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{JobCatalog, WorkloadRequest};
use flstore_workloads::run::{prepare, PreparedExecute, WorkloadOutcome};

use serde::{Deserialize, Serialize};

use std::collections::HashMap;

use crate::durable::{DurabilityConfig, LedgerEvent, RecordSink, SpillBackend, StateDigest};
use crate::engine::CacheEngine;
use crate::error::FlStoreError;
use crate::policy::CachingPolicy;
use crate::quota::{QuotaPolicy, QuotaUsage, TenantQuota};
use crate::tracker::RequestTracker;
use flstore_workloads::service::{RequestOutcome, ServiceLedger};

/// Configuration of an [`FlStore`] deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlStoreConfig {
    /// Seed for platform randomness (reclamation sampling).
    pub seed: u64,
    /// Function size (the paper uses 1 vCPU/2 GB for small models,
    /// 2 vCPU/4 GB for large ones).
    pub function_config: FunctionConfig,
    /// Number of replica rings (the paper's FI: function instances per
    /// cached object). 1 = no replication.
    pub replication: usize,
    /// Cache capacity per ring; `None` scales out with new functions as
    /// needed (FLStore), `Some(half the working set)` models
    /// FLStore-limited.
    pub capacity_per_ring: Option<ByteSize>,
    /// Serverless platform parameters (cold start, reclamation, billing).
    pub platform: PlatformConfig,
    /// Persistent-store parameters.
    pub objstore: ObjectStoreConfig,
    /// Fixed routing overhead per request (tracker + engine lookups; the
    /// paper measures these dictionaries at <1 ms, §5.5).
    pub routing_overhead: SimDuration,
    /// Per-tenant memory budget (paper Appendix A resource governance).
    /// `None` (the default) leaves residency unbounded, exactly the
    /// pre-quota behaviour; `Strict` is enforced inside this deployment,
    /// `Elastic` is reclaimed by the multi-tenant pressure plane.
    pub quota: Option<TenantQuota>,
    /// Durability knobs: ledger flush cadence, snapshot cadence, and the
    /// disk-spill cold tier. The default ([`DurabilityConfig::DISABLED`])
    /// changes nothing about the store's behaviour.
    pub durability: DurabilityConfig,
    /// Key-shard count for the cache engine (intra-job parallelism): the
    /// engine partitions placement/decoded state into this many
    /// [`MetaKey`]-routed shards. `0` (the
    /// serde default, so pre-existing serialized configs replay
    /// unchanged) defers to the process-wide default
    /// ([`crate::engine::default_key_shards`]). Observable behaviour is
    /// shard-count independent; only serve-phase parallelism changes.
    #[serde(default)]
    pub key_shards: usize,
}

impl FlStoreConfig {
    /// The paper's deployment for a given model: function size tracks model
    /// size (§5.1).
    pub fn for_model(model: &ModelArch) -> Self {
        let function_config = if model.size_mb > 50.0 {
            FunctionConfig::LARGE
        } else {
            FunctionConfig::SMALL
        };
        FlStoreConfig {
            seed: 0xF157,
            function_config,
            replication: 1,
            capacity_per_ring: None,
            platform: PlatformConfig::default(),
            objstore: ObjectStoreConfig::default(),
            routing_overhead: SimDuration::from_millis(2),
            quota: None,
            durability: DurabilityConfig::DISABLED,
            key_shards: 0,
        }
    }

    /// The engine key-shard count this config resolves to: its own
    /// `key_shards` if set, else the process-wide default.
    pub fn resolved_key_shards(&self) -> usize {
        if self.key_shards == 0 {
            crate::engine::default_key_shards()
        } else {
            self.key_shards
        }
    }
}

/// A served request: the workload result plus the measured latency/cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedRequest {
    /// The workload's computed output.
    pub outcome: WorkloadOutcome,
    /// Measured latency, cost, and cache behaviour.
    pub measured: RequestOutcome,
}

/// A serve whose bookkeeping is committed but whose pure kernel has not
/// run yet.
///
/// The store's serve path splits in two halves: everything that touches
/// shared state — hit/miss classification, cache mutation, tracker
/// dispatch/complete, billing, the outcome ledger — runs on the owning
/// thread and is finished by the time this value exists; the kernel
/// compute ([`PreparedExecute`]) is pure and `Send`, so any worker may
/// [`finish`](PendingServe::finish) it. A deferred serve finished on a
/// stealing worker is bit-for-bit the [`ServedRequest`] the owner would
/// have produced inline.
#[derive(Debug, Clone)]
pub struct PendingServe {
    /// Measured latency/cost/cache behaviour — already pushed to the
    /// store's outcome ledger.
    pub measured: RequestOutcome,
    task: PreparedExecute,
}

impl PendingServe {
    /// Runs the deferred kernel and assembles the response.
    pub fn finish(self) -> ServedRequest {
        ServedRequest {
            outcome: self.task.compute(),
            measured: self.measured,
        }
    }
}

/// Receipt for ingesting one round of FL metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Objects classified hot and cached.
    pub cached: usize,
    /// Objects evicted as obsolete.
    pub evicted: usize,
    /// Objects written through to the persistent store.
    pub backed_up: usize,
    /// Policy-hot objects the strict per-tenant quota refused to admit
    /// (they remain in the persistent store only). Always zero without a
    /// `Strict` quota.
    pub quota_denied: usize,
}

/// The FLStore serving system.
///
/// # Examples
///
/// ```
/// use flstore_core::store::{FlStore, FlStoreConfig};
/// use flstore_core::policy::TailoredPolicy;
/// use flstore_fl::ids::JobId;
/// use flstore_fl::job::{FlJobConfig, FlJobSim};
/// use flstore_sim::time::SimTime;
///
/// let cfg = FlJobConfig::quick_test(JobId::new(1));
/// let mut store = FlStore::new(
///     FlStoreConfig::for_model(&cfg.model),
///     Box::new(TailoredPolicy::new()),
///     cfg.job,
///     cfg.model,
/// );
/// let mut sim = FlJobSim::new(cfg);
/// let record = sim.next().expect("rounds");
/// let receipt = store.ingest_round(SimTime::ZERO, &record);
/// assert!(receipt.cached > 0);
/// ```
#[derive(Debug)]
pub struct FlStore {
    cfg: FlStoreConfig,
    policy: Box<dyn CachingPolicy>,
    platform: Platform,
    engine: CacheEngine,
    tracker: RequestTracker,
    persistent: ObjectStore,
    catalog: JobCatalog,
    rings: Vec<Vec<FunctionId>>,
    ring_of: HashMap<FunctionId, usize>,
    ledger: ServiceLedger,
    last_keepalive: SimTime,
    faults_observed: u64,
    sink: Option<Box<dyn RecordSink>>,
    spill: Option<Box<dyn SpillBackend>>,
    spill_faults: u64,
}

impl FlStore {
    /// Builds a deployment for one job.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.replication` is zero.
    pub fn new(
        cfg: FlStoreConfig,
        policy: Box<dyn CachingPolicy>,
        job: JobId,
        model: ModelArch,
    ) -> Self {
        assert!(
            cfg.replication >= 1,
            "replication factor must be at least 1"
        );
        let platform = Platform::new(cfg.platform, cfg.seed);
        let persistent = ObjectStore::new(cfg.objstore);
        let rings = vec![Vec::new(); cfg.replication];
        FlStore {
            platform,
            persistent,
            engine: CacheEngine::with_key_shards(cfg.resolved_key_shards()),
            tracker: RequestTracker::new(),
            catalog: JobCatalog::new(job, model),
            rings,
            ring_of: HashMap::new(),
            ledger: ServiceLedger::new(),
            last_keepalive: SimTime::ZERO,
            faults_observed: 0,
            sink: None,
            spill: None,
            spill_faults: 0,
            policy,
            cfg,
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The request/response ledger.
    pub fn ledger(&self) -> &ServiceLedger {
        &self.ledger
    }

    /// The cache engine (placement index).
    pub fn engine(&self) -> &CacheEngine {
        &self.engine
    }

    /// The request tracker.
    pub fn tracker(&self) -> &RequestTracker {
        &self.tracker
    }

    /// The serverless platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The persistent store.
    pub fn persistent(&self) -> &ObjectStore {
        &self.persistent
    }

    /// The job catalog.
    pub fn catalog(&self) -> &JobCatalog {
        &self.catalog
    }

    /// Replica reclamations observed so far.
    pub fn faults_observed(&self) -> u64 {
        self.faults_observed
    }

    /// This deployment's configured memory budget, if any.
    pub fn quota(&self) -> Option<TenantQuota> {
        self.cfg.quota
    }

    /// The deployment's full configuration (durability backends persist it
    /// so recovery can rebuild an identical store).
    pub fn config(&self) -> &FlStoreConfig {
        &self.cfg
    }

    /// Spilled objects faulted back from the cold tier so far.
    pub fn spill_faults(&self) -> u64 {
        self.spill_faults
    }

    /// `(objects, logical bytes)` currently resident in the cold tier;
    /// zeros when no spill backend is attached.
    pub fn spill_stats(&self) -> (u64, ByteSize) {
        self.spill
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or((0, ByteSize::ZERO))
    }

    /// Attaches a write-ahead record sink. Every subsequent state-mutating
    /// envelope is appended to it before executing.
    pub fn set_record_sink(&mut self, sink: Box<dyn RecordSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the record sink (flushing is the sink's `Drop`/`flush`
    /// responsibility), returning it to the caller.
    pub fn take_record_sink(&mut self) -> Option<Box<dyn RecordSink>> {
        self.sink.take()
    }

    /// Attaches a cold-tier spill backend. Only read when
    /// `cfg.durability.spill` is also set.
    pub fn set_spill_backend(&mut self, spill: Box<dyn SpillBackend>) {
        self.spill = Some(spill);
    }

    /// Whether the cold tier is active (configured on *and* a backend is
    /// attached).
    fn spill_active(&self) -> bool {
        self.cfg.durability.spill && self.spill.is_some()
    }

    /// The store's durable-state fingerprint: one sorted row per cached
    /// key (identity + policy-relevant metadata + placement) plus the
    /// scalar counters recovery must land on exactly. Read-only — in
    /// particular it does not touch the decoded layer's recency state.
    pub fn durability_digest(&self) -> StateDigest {
        let mut rows: Vec<String> = self
            .engine
            .keys()
            .map(|k| {
                let meta = self.engine.meta(k).expect("keys() yields cached keys");
                let locs = self.engine.locations(k).unwrap_or(&[]);
                format!(
                    "{k} size={} ins={} seq={} freq={} avail={:?} locs={locs:?}",
                    meta.size,
                    meta.inserted_seq,
                    meta.last_access_seq,
                    meta.frequency,
                    meta.available_at,
                )
            })
            .collect();
        rows.sort_unstable();
        StateDigest {
            rows,
            resident: self.resident_bytes(),
            served: self.ledger.outcomes.len(),
            faults: self.faults_observed,
            background_cost: self.ledger.background_cost,
        }
    }

    /// Appends one envelope to the record sink, if attached (write-ahead:
    /// callers log before executing the mutation).
    fn log_event(&mut self, event: LedgerEvent<'_>) {
        if let Some(sink) = self.sink.as_mut() {
            sink.append(event);
        }
    }

    /// Seals the active ledger segment if the sink says it is due —
    /// called *after* the envelope executed, so the embedded digest
    /// describes the state replay must reach.
    fn seal_if_due(&mut self) {
        if self.sink.as_ref().is_some_and(|s| s.should_seal()) {
            let digest = self.durability_digest();
            if let Some(sink) = self.sink.as_mut() {
                sink.seal(&digest);
            }
        }
    }

    /// Resident cache bytes the quota/pressure plane accounts: the logical
    /// bytes tracked by the placement index plus the decoded-value layer's
    /// residency — one number every budgeting decision sees.
    pub fn resident_bytes(&self) -> ByteSize {
        self.engine.bytes_tracked() + self.engine.decoded_resident_bytes()
    }

    /// This tenant's point-in-time quota occupancy row (carried by
    /// `Request::Stats` responses and consumed by the pressure plane).
    pub fn quota_usage(&self) -> QuotaUsage {
        QuotaUsage {
            job: self.catalog.job(),
            resident: self.resident_bytes(),
            quota: self.cfg.quota,
        }
    }

    /// Sheds at least `need` bytes of this tenant's own cache, choosing
    /// victims through the deployment's caching policy (which orders them
    /// deterministically by rank, then full `MetaKey`). Returns the evicted
    /// keys in eviction order — the cross-tenant pressure plane's
    /// reclamation hook. The persistent copies remain the fallback.
    pub fn reclaim(&mut self, need: ByteSize) -> Vec<MetaKey> {
        self.log_event(LedgerEvent::Reclaim { need });
        let victims = self.reclaim_internal(need);
        self.seal_if_due();
        victims
    }

    /// The reclamation body, shared by the logged public entry point and
    /// the admission gates. Internal callers are *not* logged: their
    /// reclaims are deterministic consequences of the envelope that
    /// triggered them, so replay re-derives them.
    fn reclaim_internal(&mut self, need: ByteSize) -> Vec<MetaKey> {
        let victims = self.policy.victims(need, &self.engine);
        for victim in &victims {
            self.remove_key(victim, true);
        }
        victims
    }

    /// Strict-quota admission gate for one object of `size` entering the
    /// cache: within budget admits immediately; over budget first sheds
    /// this tenant's own policy victims, then refuses the object if room
    /// still cannot be made. Elastic and unquota'd deployments always
    /// admit (the pressure plane governs elastic overshoot).
    ///
    /// Admission goes through the engine's [`AdmissionGate`]
    /// (`crate::quota::AdmissionGate`): check-and-reserve is one CAS, so
    /// there is no window between the budget check and the placement in
    /// which another admitter could consume the same headroom. The gate
    /// mirrors `resident_bytes()` exactly (reservations are settled after
    /// every placement), so the decisions are identical to the previous
    /// check-then-place sequence.
    fn quota_admits(&mut self, size: ByteSize) -> bool {
        let Some(quota) = self.cfg.quota else {
            return true;
        };
        if quota.policy != QuotaPolicy::Strict {
            return true;
        }
        // An object larger than the whole budget can never fit: refuse it
        // outright instead of pointlessly wiping the working set trying to
        // make room that does not exist.
        if size > quota.bytes {
            return false;
        }
        if self.engine.admission().try_admit(size, quota.bytes) {
            return true;
        }
        let projected = self.resident_bytes() + size;
        self.reclaim_internal(projected.saturating_sub(quota.bytes));
        self.engine.admission().try_admit(size, quota.bytes)
    }

    /// Restores the strict invariant `resident_bytes() <= budget` after an
    /// operation that may have grown the decoded layer past it (admission
    /// charges blob bytes; decoding afterwards adds `Arc<MetaValue>`
    /// residency). No-op for elastic or unquota'd deployments.
    fn enforce_strict_budget(&mut self) {
        let Some(quota) = self.cfg.quota else {
            return;
        };
        if quota.policy != QuotaPolicy::Strict {
            return;
        }
        loop {
            let resident = self.resident_bytes();
            if resident <= quota.bytes {
                return;
            }
            let before = self.engine.len();
            self.reclaim_internal(resident.saturating_sub(quota.bytes));
            if self.engine.len() == before {
                return; // nothing evictable remains
            }
        }
    }

    /// Total cost over the experiment window ending at `now`: per-request
    /// costs + background (backups, prefetches, ingestion, repair) +
    /// keep-alive pings + persistent storage rent.
    pub fn total_cost(&mut self, now: SimTime) -> CostBreakdown {
        let mut total = self.ledger.total_cost();
        total.infra += self.platform.billing().keepalive_cost;
        total.storage += self.persistent.storage_cost(now);
        total
    }

    /// The latest instant this store has advanced to — its virtual clock.
    /// Replay drives the same advances the original envelopes did, so a
    /// recovered store reports the pre-crash clock; servers seed their
    /// monotonic clamp from it so a restart cannot rewind time.
    pub fn clock(&self) -> SimTime {
        self.last_keepalive
    }

    /// Advances background processes (keep-alive pings) to `now`, handling
    /// any reclamations they discover.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_keepalive {
            return;
        }
        let events = self.platform.run_keepalive(self.last_keepalive, now);
        self.last_keepalive = now;
        for (when, id) in events {
            self.handle_reclaimed(when, id);
        }
    }

    fn handle_reclaimed(&mut self, now: SimTime, id: FunctionId) {
        self.faults_observed += 1;
        // Keys that referenced this replica lose it; keys with surviving
        // replicas are repaired by copying from a survivor (async,
        // intra-cloud). Orphaned keys fall back to the persistent store on
        // next access. The control flow lives in the shared
        // [`repair_after_loss`] discipline — the cluster layer repairs
        // node loss through the identical path.
        let _ = crate::placement::repair_after_loss(self, now, id);
    }

    fn ring_used_bytes(&self, ring: usize) -> ByteSize {
        self.rings[ring]
            .iter()
            .filter_map(|id| self.platform.instance(*id))
            .map(|i| i.mem_used())
            .sum()
    }

    /// Places a blob on one function of `ring`, spawning or evicting as the
    /// configuration allows. Returns the hosting function, or `None` if the
    /// object could not be cached.
    fn place_on_ring(
        &mut self,
        now: SimTime,
        ring: usize,
        key: &MetaKey,
        blob: Blob,
    ) -> Option<FunctionId> {
        let size = blob.logical_size();
        // Capacity pressure: evict policy victims first so the placement
        // below can succeed.
        if let Some(cap) = self.cfg.capacity_per_ring {
            let used = self.ring_used_bytes(ring);
            if used + size > cap {
                let need = (used + size).saturating_sub(cap);
                let victims = self.policy.victims(need, &self.engine);
                for v in victims {
                    self.remove_key(&v, true);
                }
                if self.ring_used_bytes(ring) + size > cap {
                    return None; // cannot fit even after shedding
                }
            }
        }
        // First fit among existing ring members.
        let existing = self.rings[ring].iter().copied().find(|id| {
            self.platform
                .instance(*id)
                .map(|i| i.mem_free() >= size)
                .unwrap_or(false)
        });
        let target = match existing {
            Some(id) => id,
            None => {
                let id = self.platform.spawn(now, self.cfg.function_config);
                self.rings[ring].push(id);
                self.ring_of.insert(id, ring);
                id
            }
        };
        match self
            .platform
            .store_object(now, target, key.object_key(), blob)
        {
            Ok(()) => Some(target),
            Err(_) => None, // object larger than a whole function
        }
    }

    fn cache_object(&mut self, now: SimTime, key: MetaKey, blob: Blob, available_at: SimTime) {
        let size = blob.logical_size();
        let mut replicas = Vec::with_capacity(self.cfg.replication);
        for ring in 0..self.cfg.replication {
            if let Some(id) = self.place_on_ring(now, ring, &key, blob.clone()) {
                replicas.push(id);
            }
        }
        if !replicas.is_empty() {
            self.engine.record(key, replicas, size, available_at);
        }
        // A strict-quota admission reserved `size` in the gate; `record`
        // consumed it. If every ring refused placement there is no record
        // and the reservation dangles — settle so the gate keeps
        // mirroring `resident_bytes()` exactly.
        let _ = self.engine.admission().settle();
    }

    /// Removes `key` from every cache layer. Pressure victims
    /// (`spill_victim`) hand their encoded bytes to the cold tier on the
    /// way out; explicit evictions instead *discard* any cold-tier copy —
    /// an obsolete object must never be faulted back.
    fn remove_key(&mut self, key: &MetaKey, spill_victim: bool) {
        if spill_victim && self.spill_active() {
            let source = self.engine.locations(key).and_then(|l| l.first().copied());
            let blob = source
                .and_then(|id| self.platform.instance(id))
                .and_then(|i| i.object(&key.object_key()).cloned());
            if let (Some(blob), Some(spill)) = (blob, self.spill.as_mut()) {
                spill.spill(key, blob.payload(), blob.logical_size());
            }
        } else if !spill_victim {
            if let Some(spill) = self.spill.as_mut() {
                spill.discard(key);
            }
        }
        if let Some(locations) = self.engine.remove(key) {
            for id in locations {
                let _ = self.platform.evict_object(id, &key.object_key());
            }
        }
    }

    /// Evicts `key` from every cache layer (placements, blobs, decoded
    /// handle) — the persistent copy remains the fallback. Returns whether
    /// the key was cached.
    pub fn evict(&mut self, key: &MetaKey) -> bool {
        self.log_event(LedgerEvent::Evict { key });
        let was_cached = self.engine.contains(key);
        self.remove_key(key, false);
        self.seal_if_due();
        was_cached
    }

    /// Ingests one training round's metadata: write-through backup to the
    /// persistent store, policy-driven hot classification into function
    /// memory, and obsolete-data eviction.
    pub fn ingest_round(&mut self, now: SimTime, record: &RoundRecord) -> IngestReceipt {
        self.log_event(LedgerEvent::Ingest { now, record });
        self.advance(now);
        self.catalog.observe_round(record);
        let items = round_entries(record, self.catalog.job(), self.catalog.model());
        let keys: Vec<MetaKey> = items.iter().map(|e| e.key).collect();

        // Durability first: every object is backed up asynchronously.
        let mut backed_up = 0;
        let mut entry_of: HashMap<MetaKey, (SharedValue, Blob)> =
            HashMap::with_capacity(items.len());
        for e in items {
            let cost = self
                .persistent
                .put_async(now, e.key.object_key(), e.blob.clone());
            self.ledger.background_cost += cost;
            entry_of.insert(e.key, (e.value, e.blob));
            backed_up += 1;
        }

        let actions = self.policy.on_ingest(&keys, &self.catalog, &self.engine);
        let mut cached = 0;
        let mut quota_denied = 0;
        for key in &actions.cache {
            if let Some((value, blob)) = entry_of.get(key) {
                // Strict quota gate: a refused object streams nothing (no
                // billing, no placement) — it lives in the persistent store
                // only, and the receipt reports the refusal honestly.
                if !self.quota_admits(blob.logical_size()) {
                    quota_denied += 1;
                    continue;
                }
                // Ingestion billing: one short invocation streams the object
                // into function memory (data arrived with the round; no
                // plane-crossing transfer).
                let dur = NetworkProfile::INTRA_CLOUD.transfer_time(blob.logical_size());
                let cost = self
                    .cfg
                    .platform
                    .pricing
                    .invocation(self.cfg.function_config.memory, dur);
                self.ledger.background_cost.compute += cost;
                self.cache_object(now, *key, blob.clone(), now);
                if self.engine.contains(key) {
                    // The producer already holds the decoded value: seed the
                    // decoded layer so this object is never parsed again.
                    self.engine.decoded_seed(*key, blob, value.clone());
                }
                cached += 1;
            }
        }
        let mut evicted = 0;
        for key in &actions.evict {
            self.remove_key(key, false);
            evicted += 1;
        }
        // Seeding decoded handles may have grown residency past a strict
        // budget the blob-byte admission check could not foresee.
        self.enforce_strict_budget();
        self.seal_if_due();
        IngestReceipt {
            cached,
            evicted,
            backed_up,
            quota_denied,
        }
    }

    /// Serves one non-training request with locality-aware execution.
    ///
    /// # Errors
    ///
    /// * [`FlStoreError::NoData`] when no ingested round satisfies the
    ///   request;
    /// * [`FlStoreError::Store`] when a miss cannot be satisfied by the
    ///   persistent store either;
    /// * [`FlStoreError::Workload`] when the workload rejects its inputs.
    pub fn serve(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
    ) -> Result<ServedRequest, FlStoreError> {
        self.log_event(LedgerEvent::Serve { now, request });
        self.advance(now);
        let needs = self.catalog.data_needs(request);
        if needs.is_empty() {
            return Err(FlStoreError::NoData {
                request: request.id,
            });
        }
        let referenced = self.referenced_functions(std::iter::once(needs.as_slice()));
        let recovered = self.liveness_pass(now, &referenced, &[needs.as_slice()]);
        let result = self.serve_resolved(now, request, &needs, recovered[0]);
        // Runs on the error exits too: a failed serve may still have grown
        // the decoded layer past a strict budget before it bailed.
        self.enforce_strict_budget();
        self.seal_if_due();
        result
    }

    /// Serves a batch of requests that share one arrival instant,
    /// amortizing the fixed per-request front-door work: the
    /// replica-liveness/refresh pass (and its placement-index walk) runs
    /// once over the *union* of functions the batch references instead of
    /// once per request. Requests are then resolved in order, so cache
    /// mutations (miss-caching, prefetch, eviction) flow between batch
    /// members exactly as they would under sequential serving — a batch of
    /// one is bit-for-bit identical to [`FlStore::serve`].
    ///
    /// Fault attribution is batch-scoped: a replica found reclaimed during
    /// the shared pass marks `recovered_from_fault` on every request in
    /// the batch whose needed keys referenced it.
    ///
    /// # Errors
    ///
    /// Each slot carries the same errors [`FlStore::serve`] returns for
    /// that request; one failing request does not poison its batchmates.
    pub fn serve_batch(
        &mut self,
        now: SimTime,
        requests: &[WorkloadRequest],
    ) -> Vec<Result<ServedRequest, FlStoreError>> {
        // The deferred body commits all bookkeeping in submission order;
        // the kernels it leaves behind are pure, so finishing them here
        // (in order, inline) is observationally identical to the
        // interleaved sequential execution.
        self.serve_batch_deferred(now, requests)
            .into_iter()
            .map(|slot| slot.map(PendingServe::finish))
            .collect()
    }

    /// [`serve_batch`](Self::serve_batch) with the kernel computes left
    /// pending: all shared-state bookkeeping (cache mutation, tracker,
    /// billing, outcome ledger) commits here in submission order; each
    /// `Ok` slot's [`PendingServe`] is `Send` and may be finished on any
    /// worker. This is the handoff surface the work-stealing executor
    /// serves a hot tenant through.
    pub fn serve_batch_deferred(
        &mut self,
        now: SimTime,
        requests: &[WorkloadRequest],
    ) -> Vec<Result<PendingServe, FlStoreError>> {
        // A batch of one logs the same record `serve` would: the Service
        // contract makes singleton batches identical to single submits,
        // and the ledger must not betray which path carried the envelope
        // (the sequential-vs-threaded byte-diff gate covers ledger files).
        match requests {
            [request] => self.log_event(LedgerEvent::Serve { now, request }),
            _ => self.log_event(LedgerEvent::ServeBatch { now, requests }),
        }
        self.advance(now);
        // Resolve data needs once per distinct request shape: `data_needs`
        // is a pure function of the catalog, which no serve mutates, so
        // consecutive requests naming the same (kind, round, client,
        // window) share one resolution.
        let mut needs: Vec<Vec<MetaKey>> = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let repeat = i > 0 && {
                let prev = &requests[i - 1];
                prev.kind == request.kind
                    && prev.round == request.round
                    && prev.client == request.client
                    && prev.window == request.window
            };
            if repeat {
                let prev = needs[i - 1].clone();
                needs.push(prev);
            } else {
                needs.push(self.catalog.data_needs(request));
            }
        }
        let need_slices: Vec<&[MetaKey]> = needs.iter().map(|n| n.as_slice()).collect();
        let referenced = self.referenced_functions(need_slices.iter().copied());
        let recovered = self.liveness_pass(now, &referenced, &need_slices);
        let results = requests
            .iter()
            .zip(&needs)
            .zip(recovered)
            .map(|((request, needs), recovered)| {
                if needs.is_empty() {
                    Err(FlStoreError::NoData {
                        request: request.id,
                    })
                } else {
                    // Enforced per request (even on errors), exactly as a
                    // sequential submission would.
                    let result = self.serve_resolved_deferred(now, request, needs, recovered);
                    self.enforce_strict_budget();
                    result
                }
            })
            .collect();
        self.seal_if_due();
        results
    }

    /// Every function referenced by any of the given key sets, sorted and
    /// deduplicated — the targets of one liveness pass.
    fn referenced_functions<'a>(
        &self,
        needs: impl Iterator<Item = &'a [MetaKey]>,
    ) -> Vec<FunctionId> {
        // Placement lookups are per *unique* key: a batch whose requests
        // name the same objects pays each index probe once.
        let mut keys: Vec<&MetaKey> = needs.flat_map(|keys| keys.iter()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut referenced: Vec<FunctionId> = keys
            .into_iter()
            .filter_map(|k| self.engine.locations(k))
            .flatten()
            .copied()
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        referenced
    }

    /// One liveness/refresh pass over `referenced`, handling any
    /// reclamations discovered. Returns, per entry of `needs_per_request`,
    /// whether a reclaimed replica held data that request needed (the
    /// `recovered_from_fault` flag).
    fn liveness_pass(
        &mut self,
        now: SimTime,
        referenced: &[FunctionId],
        needs_per_request: &[&[MetaKey]],
    ) -> Vec<bool> {
        let mut recovered = vec![false; needs_per_request.len()];
        for &id in referenced {
            if let Ok(Some(_)) = self.platform.refresh(now, id) {
                // Attribute the fault before repair mutates the placements.
                for (slot, needs) in recovered.iter_mut().zip(needs_per_request) {
                    if needs.iter().any(|k| {
                        self.engine
                            .locations(k)
                            .map(|l| l.contains(&id))
                            .unwrap_or(false)
                    }) {
                        *slot = true;
                    }
                }
                self.handle_reclaimed(now, id);
            }
        }
        recovered
    }

    /// The serve body after admission, data-needs resolution, and the
    /// liveness pass: hit/miss classification, locality-aware execution,
    /// and policy reaction — everything *except* the pure kernel compute,
    /// which the returned [`PendingServe`] carries for any thread to
    /// finish.
    fn serve_resolved_deferred(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
        needs: &[MetaKey],
        recovered_from_fault: bool,
    ) -> Result<PendingServe, FlStoreError> {
        let mut latency = LatencyBreakdown {
            routing: self.cfg.routing_overhead,
            ..LatencyBreakdown::ZERO
        };
        let mut cost = CostBreakdown::ZERO;

        // Hit/miss classification (after fault handling).
        let mut hit_keys: Vec<MetaKey> = Vec::new();
        let mut miss_keys: Vec<MetaKey> = Vec::new();
        let mut prefetch_wait = SimDuration::ZERO;
        for key in needs {
            match self.engine.meta(key) {
                Some(meta) => {
                    let wait = meta.available_at.duration_since(now);
                    prefetch_wait = prefetch_wait.max(wait);
                    hit_keys.push(*key);
                }
                None => miss_keys.push(*key),
            }
        }
        latency.communication += prefetch_wait;

        // Hits first (reading them must happen before miss-caching, which
        // can evict under capacity pressure): locality-aware execution.
        // Choose the primary function (the one holding the most needed
        // bytes); data on sibling functions is gathered intra-cloud.
        let mut values: Vec<SharedValue> = Vec::with_capacity(needs.len());
        let mut bytes_on: HashMap<FunctionId, ByteSize> = HashMap::new();
        for key in &hit_keys {
            if let (Some(locs), Some(meta)) = (self.engine.locations(key), self.engine.meta(key)) {
                for id in locs {
                    *bytes_on.entry(*id).or_insert(ByteSize::ZERO) += meta.size;
                }
            }
        }
        // Among the replicas holding the most needed bytes, dispatch to the
        // least busy one — replicated functions double as parallel servers
        // (paper §A.1: scalability via copies of cached functions).
        let max_bytes = bytes_on.values().copied().max().unwrap_or(ByteSize::ZERO);
        // flstore: allow(unordered_iter, min_by_key's (busy_until, raw id) key is a total order over candidates, so the minimum is unique regardless of hash order)
        let primary = bytes_on
            .iter()
            .filter(|(_, bytes)| **bytes == max_bytes)
            .min_by_key(|(id, _)| {
                let busy = self
                    .platform
                    .instance(**id)
                    .map(|i| i.busy_until())
                    .unwrap_or(SimTime::MAX);
                (busy, id.as_raw())
            })
            .map(|(id, _)| *id);

        let mut gather_items = 0usize;
        let mut gather_bytes = ByteSize::ZERO;
        for key in &hit_keys {
            self.engine.touch(key);
            let locs = self
                .engine
                .locations(key)
                .expect("hit keys remain cached until miss handling")
                .to_vec();
            let local = primary.map(|p| locs.contains(&p)).unwrap_or(false);
            let source = if local {
                primary.expect("primary exists for local keys")
            } else {
                locs[0]
            };
            if !local {
                gather_items += 1;
                if let Some(meta) = self.engine.meta(key) {
                    gather_bytes += meta.size;
                }
            }
            // Zero-decode fast path: a cached object hands back its shared
            // handle; only a handle-less hit (e.g. after prefetch) reads the
            // blob, and then decodes at most once for the object's lifetime.
            let value = match self.engine.decoded_get(key) {
                Some(v) => Some(v),
                None => self
                    .platform
                    .instance(source)
                    .and_then(|i| i.object(&key.object_key()).cloned())
                    .and_then(|blob| self.engine.decoded_get_or_decode(key, &blob)),
            };
            if let Some(v) = value {
                values.push(v);
            }
        }
        if gather_items > 0 {
            latency.communication +=
                NetworkProfile::INTRA_CLOUD.batch_transfer_time(gather_items, gather_bytes, 8);
        }

        // Misses: the cold tier first — previously spilled victims fault
        // back from local disk (no object-store round trip, no request
        // fee) — then one batch fetch from the persistent store for the
        // rest (caching them may evict under capacity pressure, which is
        // why hits were read above).
        if !miss_keys.is_empty() {
            let mut blobs_of: HashMap<MetaKey, Blob> = HashMap::new();
            let mut from_spill: Vec<MetaKey> = Vec::new();
            if self.spill_active() {
                let spill = self.spill.as_mut().expect("spill_active checked");
                for key in &miss_keys {
                    if let Some((payload, logical)) = spill.fetch(key) {
                        blobs_of.insert(*key, Blob::with_payload(payload.into(), logical));
                        from_spill.push(*key);
                    }
                }
                for _ in &from_spill {
                    latency.communication += self.cfg.durability.spill_read_latency;
                }
                self.spill_faults += from_spill.len() as u64;
            }
            let pending: Vec<MetaKey> = miss_keys
                .iter()
                .filter(|k| !blobs_of.contains_key(k))
                .copied()
                .collect();
            if !pending.is_empty() {
                let okeys: Vec<_> = pending.iter().map(|k| k.object_key()).collect();
                let (blobs, receipt) = self.persistent.get_many(now, &okeys)?;
                latency.communication += receipt.latency;
                cost += receipt.cost;
                for (key, blob) in pending.iter().zip(blobs) {
                    blobs_of.insert(*key, blob);
                }
            }
            let cache_miss = self.policy.cache_on_miss();
            for key in &miss_keys {
                let blob = blobs_of
                    .remove(key)
                    .expect("every miss key was faulted or fetched");
                let admitted = cache_miss && self.quota_admits(blob.logical_size());
                if admitted {
                    self.cache_object(now, *key, blob.clone(), now);
                }
                if admitted && self.engine.contains(key) {
                    // Newly cached: decode once through the decoded layer so
                    // later hits are Arc clones.
                    if let Some(v) = self.engine.decoded_get_or_decode(key, &blob) {
                        values.push(v);
                    }
                } else {
                    // Not cached (policy, capacity, or strict quota): the
                    // miss path re-parses per access, exactly like a
                    // conventional framework. A faulted-but-refused object
                    // returns to the cold tier so the next miss stays cheap.
                    if from_spill.contains(key) {
                        if let Some(spill) = self.spill.as_mut() {
                            spill.spill(key, blob.payload(), blob.logical_size());
                        }
                    }
                    if let Some(v) = MetaValue::decode_shared(&blob) {
                        values.push(v);
                    }
                }
            }
        }

        // Validate inputs and package the kernel for execution on the
        // primary (or a scratch function when everything missed and
        // nothing was cached). `prepare` fails exactly where `execute`
        // would — before any dispatch/billing below commits.
        let task = prepare(request, values, self.catalog.model().compute_scale())?;
        let exec_fn = match primary.or_else(|| self.rings[0].first().copied()) {
            Some(id) => id,
            None => {
                let id = self.platform.spawn(now, self.cfg.function_config);
                self.rings[0].push(id);
                self.ring_of.insert(id, 0);
                id
            }
        };
        self.tracker.dispatch(request.id, vec![exec_fn]);
        let invoke = self.platform.invoke(now, exec_fn, task.work())?;
        latency.queueing += invoke.queue_wait;
        latency.computation += invoke.receipt.latency.saturating_sub(invoke.queue_wait);
        cost += invoke.receipt.cost;

        // Policy reaction: prefetch for the request train, shed the past.
        let actions = self.policy.on_request(request, &self.catalog, &self.engine);
        for key in &actions.prefetch {
            if self.engine.contains(key) {
                continue;
            }
            if let Ok((blob, receipt)) = self.persistent.get(now, &key.object_key()) {
                self.ledger.background_cost += receipt.cost;
                // The fetch was already spent; a strict quota can still
                // refuse residency (the prefetch is abandoned).
                if self.quota_admits(blob.logical_size()) {
                    self.cache_object(now, *key, blob, now + receipt.latency);
                }
            }
        }
        for key in &actions.evict {
            self.remove_key(key, false);
        }
        // Strict-budget re-enforcement happens in the callers (serve /
        // serve_batch), so it also covers the error exits above.

        self.tracker.complete(request.id);
        let measured = RequestOutcome {
            request: request.id,
            kind: request.kind,
            arrived: now,
            finished: now + latency.total(),
            latency,
            cost,
            cache_hits: hit_keys.len(),
            cache_misses: miss_keys.len(),
            recovered_from_fault,
        };
        self.ledger.outcomes.push(measured);
        Ok(PendingServe { measured, task })
    }

    /// [`serve_resolved_deferred`](Self::serve_resolved_deferred) plus an
    /// inline kernel finish — the sequential serve body.
    fn serve_resolved(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
        needs: &[MetaKey],
        recovered_from_fault: bool,
    ) -> Result<ServedRequest, FlStoreError> {
        self.serve_resolved_deferred(now, request, needs, recovered_from_fault)
            .map(PendingServe::finish)
    }
}

/// The single-store leg of the placement boundary: holders are function
/// instances, units are cached [`MetaKey`]s, and repair copies the blob
/// from a survivor onto the lost function's ring, billing one
/// intra-cloud invocation per copy. `FlStore::handle_reclaimed` drives
/// this through [`crate::placement::repair_after_loss`] — the same
/// algorithm the cluster layer uses for whole-node loss.
impl crate::placement::PlacementMap for FlStore {
    type Holder = FunctionId;
    type Unit = MetaKey;

    fn units_on(&self, holder: FunctionId) -> Vec<MetaKey> {
        self.engine
            .keys()
            .filter(|k| {
                self.engine
                    .locations(k)
                    .map(|l| l.contains(&holder))
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    fn drop_holder(&mut self, holder: FunctionId) {
        let _orphaned = self.engine.drop_replica(holder);
    }

    fn survivors(&self, unit: &MetaKey) -> Vec<FunctionId> {
        self.engine
            .locations(unit)
            .map(|l| l.to_vec())
            .unwrap_or_default()
    }

    fn replicate(
        &mut self,
        now: SimTime,
        unit: &MetaKey,
        source: FunctionId,
        lost: FunctionId,
    ) -> Option<ByteSize> {
        let ring = self.ring_of.get(&lost).copied().unwrap_or(0);
        let blob = self
            .platform
            .instance(source)
            .and_then(|i| i.object(&unit.object_key()).cloned())?;
        let size = blob.logical_size();
        let placed = self.place_on_ring(now, ring, unit, blob)?;
        self.engine.add_replica(unit, placed);
        // Repair billing: one invocation streaming the object.
        let dur = NetworkProfile::INTRA_CLOUD.transfer_time(size);
        let cost = self
            .cfg
            .platform
            .pricing
            .invocation(self.cfg.function_config.memory, dur);
        self.ledger.background_cost.compute += cost;
        Some(size)
    }
}
