//! Decoded-value cache invariants on the full serve path: at most one
//! `Blob → JSON → MetaValue` parse per cached object lifetime, coherent
//! re-decoding after eviction/overwrite, and no stale handle ever served.

use proptest::prelude::*;

use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_fl::decoded::DecodedCache;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_fl::metadata::{round_entries, MetaValue};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

/// Round-scoped (P1/P2) workload kinds: no target client required.
const ROUND_KINDS: &[WorkloadKind] = &[
    WorkloadKind::CosineSimilarity,
    WorkloadKind::MaliciousFiltering,
    WorkloadKind::Clustering,
    WorkloadKind::SchedulingCluster,
    WorkloadKind::Incentives,
    WorkloadKind::Inference,
];

struct Rig {
    store: FlStore,
    records: Vec<RoundRecord>,
    now: SimTime,
}

fn rig(rounds: u32) -> Rig {
    let job_cfg = FlJobConfig {
        rounds,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    let cfg = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job_cfg.model)
    };
    let store = FlStore::new(
        cfg,
        Box::new(TailoredPolicy::new()),
        job_cfg.job,
        job_cfg.model,
    );
    let records: Vec<RoundRecord> = FlJobSim::new(job_cfg).collect();
    Rig {
        store,
        records,
        now: SimTime::ZERO,
    }
}

impl Rig {
    fn ingest_all(&mut self) {
        let records = self.records.clone();
        for r in &records {
            self.store.ingest_round(self.now, r);
            self.now += SimDuration::from_secs(120);
        }
    }

    fn request(&self, id: u64, kind: WorkloadKind, round_idx: usize) -> WorkloadRequest {
        WorkloadRequest::new(
            RequestId::new(id),
            kind,
            JobId::new(1),
            self.records[round_idx].round,
            None,
        )
    }
}

proptest! {
    /// Across any round-scoped workload and any number of repeated hits,
    /// the serve path never parses a blob the store already understood:
    /// ingest seeds the decoded layer, so the decode count stays zero.
    #[test]
    fn cached_objects_are_never_reparsed_on_hits(
        kind_idx in 0usize..ROUND_KINDS.len(),
        serves in 1usize..10,
    ) {
        let mut r = rig(6);
        r.ingest_all();
        let kind = ROUND_KINDS[kind_idx];
        let mut outputs = Vec::new();
        for i in 0..serves {
            let req = r.request(i as u64 + 1, kind, 5);
            r.now += SimDuration::from_secs(30);
            let served = r.store.serve(r.now, &req).expect("servable");
            prop_assert!(served.measured.cache_hits > 0);
            outputs.push(served.outcome.output);
        }
        let stats = r.store.engine().decoded_stats();
        prop_assert_eq!(stats.decodes, 0, "hit path must be zero-decode");
        prop_assert!(stats.hits > 0);
        // Shared handles serve byte-identical results.
        prop_assert!(outputs.windows(2).all(|w| {
            // Randomized workloads derive their seed from the request id,
            // so only deterministic kinds must match across ids.
            !matches!(kind, WorkloadKind::MaliciousFiltering) || w[0] == w[1]
        }));
    }

    /// Decode-count ≤ 1 per cached object lifetime, including the
    /// eviction → miss → re-cache → hit transition: after a full eviction
    /// the first serve re-fetches and decodes each object exactly once,
    /// and repeats parse nothing new.
    #[test]
    fn eviction_then_refetch_redecodes_once(serves in 2usize..8) {
        let mut r = rig(4);
        r.ingest_all();

        // Evict everything the policy cached: the next serve starts from a
        // genuine miss and must re-fetch from the persistent store.
        let cached: Vec<_> = r.store.engine().keys().copied().collect();
        prop_assert!(!cached.is_empty());
        for k in &cached {
            prop_assert!(r.store.evict(k));
        }
        prop_assert_eq!(r.store.engine().len(), 0);
        prop_assert_eq!(r.store.engine().decoded_stats().decodes, 0);

        let mut first_decodes = 0;
        for i in 0..serves {
            let req = r.request(900 + i as u64, WorkloadKind::MaliciousFiltering, 3);
            r.now += SimDuration::from_secs(30);
            let served = r.store.serve(r.now, &req).expect("servable");
            let stats = r.store.engine().decoded_stats();
            if i == 0 {
                prop_assert!(served.measured.cache_misses > 0);
                first_decodes = stats.decodes;
                prop_assert!(first_decodes > 0, "first serve decodes the misses");
                prop_assert!(
                    first_decodes <= served.measured.cache_misses as u64,
                    "≤1 decode per fetched object: {} decodes for {} misses",
                    first_decodes,
                    served.measured.cache_misses
                );
            } else {
                prop_assert!(served.measured.cache_hits > 0);
                prop_assert_eq!(
                    stats.decodes, first_decodes,
                    "repeat serves must not re-parse"
                );
            }
        }
    }
    /// Overwriting a key with different bytes always re-decodes and serves
    /// the *new* value — a stale `Arc` never survives an overwrite,
    /// whatever the interleaving of reads, seeds, and overwrites.
    #[test]
    fn overwrites_never_serve_stale_values(ops in prop::collection::vec(0u8..3, 1..30)) {
        let cfg = FlJobConfig::quick_test(JobId::new(3));
        let model = cfg.model;
        let record = FlJobSim::new(cfg).next().expect("rounds");
        let entries = round_entries(&record, JobId::new(3), &model);
        let key = entries[0].key;

        // A pool of distinct values all stored under the same key.
        let versions: Vec<MetaValue> = entries.iter().map(|e| (*e.value).clone()).collect();
        let blobs: Vec<_> = versions.iter().map(|v| v.to_blob(&ModelArch::RESNET18)).collect();

        let mut cache = DecodedCache::new();
        let mut current = 0usize;
        cache.seed(key, &blobs[0], versions[0].clone().into_shared());
        for op in ops {
            match op {
                // Read: must observe the current version's value.
                0 => {
                    let got = cache
                        .get_or_decode(&key, &blobs[current])
                        .expect("decodable");
                    prop_assert_eq!(&*got, &versions[current]);
                }
                // Overwrite with the next version's bytes.
                1 => {
                    current = (current + 1) % versions.len();
                    let got = cache
                        .get_or_decode(&key, &blobs[current])
                        .expect("decodable");
                    prop_assert_eq!(&*got, &versions[current], "stale Arc after overwrite");
                }
                // Evict, then refetch: must re-decode the current bytes.
                _ => {
                    let before = cache.stats().decodes;
                    cache.invalidate(&key);
                    let got = cache
                        .get_or_decode(&key, &blobs[current])
                        .expect("decodable");
                    prop_assert_eq!(&*got, &versions[current]);
                    prop_assert_eq!(cache.stats().decodes, before + 1, "refetch re-decodes");
                }
            }
        }
    }
}
