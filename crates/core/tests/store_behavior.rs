//! Behavioural tests for the full FLStore request path: hits, misses,
//! prefetching, policies, replication, fault recovery, and cost accounting.

use flstore_core::policy::{EvictionDiscipline, ReactivePolicy, StaticPolicy, TailoredPolicy};
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

fn quiet_config(model: &flstore_fl::zoo::ModelArch) -> FlStoreConfig {
    FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(model)
    }
}

struct Rig {
    store: FlStore,
    records: Vec<RoundRecord>,
    now: SimTime,
    next_request: u64,
}

impl Rig {
    fn new(cfg: FlStoreConfig, rounds: u32) -> Rig {
        let job_cfg = FlJobConfig {
            rounds,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let store = FlStore::new(
            cfg,
            Box::new(TailoredPolicy::new()),
            job_cfg.job,
            job_cfg.model,
        );
        let records: Vec<RoundRecord> = FlJobSim::new(job_cfg).collect();
        Rig {
            store,
            records,
            now: SimTime::ZERO,
            next_request: 0,
        }
    }

    fn with_policy(
        cfg: FlStoreConfig,
        policy: Box<dyn flstore_core::policy::CachingPolicy>,
        rounds: u32,
    ) -> Rig {
        let job_cfg = FlJobConfig {
            rounds,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let store = FlStore::new(cfg, policy, job_cfg.job, job_cfg.model);
        let records: Vec<RoundRecord> = FlJobSim::new(job_cfg).collect();
        Rig {
            store,
            records,
            now: SimTime::ZERO,
            next_request: 0,
        }
    }

    fn ingest_all(&mut self) {
        let records = self.records.clone();
        for r in &records {
            self.store.ingest_round(self.now, r);
            self.now += SimDuration::from_secs(120);
        }
    }

    fn request(&mut self, kind: WorkloadKind, round_idx: usize) -> WorkloadRequest {
        self.next_request += 1;
        let record = &self.records[round_idx];
        let client = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => Some(record.updates[0].client),
            _ => None,
        };
        WorkloadRequest::new(
            RequestId::new(self.next_request),
            kind,
            JobId::new(1),
            record.round,
            client,
        )
    }
}

#[test]
fn p2_request_for_latest_round_hits_everything() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 6);
    rig.ingest_all();
    let req = rig.request(WorkloadKind::MaliciousFiltering, 5);
    let served = rig.store.serve(rig.now, &req).expect("servable");
    assert_eq!(served.measured.cache_misses, 0);
    assert!(served.measured.cache_hits > 0);
    // Hit-path latency is computation-bound: well under a second of
    // communication.
    assert!(served.measured.latency.communication < SimDuration::from_millis(100));
}

#[test]
fn p2_request_for_ancient_round_misses_and_recovers() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 10);
    rig.ingest_all();
    // Round 0 was evicted long ago by the ingest train.
    let req = rig.request(WorkloadKind::Clustering, 0);
    let served = rig
        .store
        .serve(rig.now, &req)
        .expect("persistent store has it");
    assert!(served.measured.cache_misses > 0);
    // Miss path pays object-store communication (tens of seconds at
    // ResNet18 sizes).
    assert!(served.measured.latency.communication > SimDuration::from_secs(5));
    assert!(served.measured.cost.transfer.as_dollars() > 0.0);
}

#[test]
fn inference_hits_the_cached_aggregate() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 5);
    rig.ingest_all();
    let req = rig.request(WorkloadKind::Inference, 4);
    let served = rig.store.serve(rig.now, &req).expect("servable");
    assert_eq!(served.measured.cache_misses, 0);
    assert_eq!(served.measured.cache_hits, 1);
}

#[test]
fn p4_scheduling_hits_metadata_window() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 12);
    rig.ingest_all();
    let req = rig.request(WorkloadKind::SchedulingPerf, 11);
    let served = rig.store.serve(rig.now, &req).expect("servable");
    assert_eq!(served.measured.cache_misses, 0, "P4 window is kept hot");
    assert_eq!(served.measured.cache_hits, 2); // latest round's metrics + hyper
}

#[test]
fn p3_first_request_misses_then_subsequent_hits() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 10);
    rig.ingest_all();
    let kind = WorkloadKind::ReputationCalc;
    let first = rig.request(kind, 9);
    let served_first = rig.store.serve(rig.now, &first).expect("servable");
    // The window reaches back past the kept rounds: some misses.
    assert!(served_first.measured.cache_misses > 0);

    // The same trace query repeated (client daemon polling) now hits: the
    // policy started tracking the client and prefetched its window.
    rig.now += SimDuration::from_secs(300);
    let second = WorkloadRequest {
        id: RequestId::new(999),
        ..first
    };
    let served_second = rig.store.serve(rig.now, &second).expect("servable");
    assert_eq!(
        served_second.measured.cache_misses, 0,
        "tracked client window should be prefetched"
    );
}

#[test]
fn reactive_lru_policy_misses_forward_marching_requests() {
    let cfg = quiet_config(&flstore_fl::zoo::ModelArch::RESNET18);
    let mut rig = Rig::with_policy(
        cfg,
        Box::new(ReactivePolicy::new(EvictionDiscipline::Lru, 3)),
        8,
    );
    // Interleave: ingest round, then request it (the FL pattern).
    let records = rig.records.clone();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, r) in records.iter().enumerate() {
        rig.store.ingest_round(rig.now, r);
        rig.now += SimDuration::from_secs(60);
        let req = rig.request(WorkloadKind::MaliciousFiltering, i);
        let served = rig.store.serve(rig.now, &req).expect("servable");
        hits += served.measured.cache_hits as u64;
        misses += served.measured.cache_misses as u64;
        rig.now += SimDuration::from_secs(60);
    }
    // The reactive cache never has the new round: ~0% hit rate (Table 2).
    assert_eq!(hits, 0, "reactive policy should never hit fresh rounds");
    assert!(misses > 0);
}

#[test]
fn tailored_policy_hits_where_lru_misses() {
    let cfg = quiet_config(&flstore_fl::zoo::ModelArch::RESNET18);
    let mut rig = Rig::new(cfg, 8);
    let records = rig.records.clone();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, r) in records.iter().enumerate() {
        rig.store.ingest_round(rig.now, r);
        rig.now += SimDuration::from_secs(60);
        let req = rig.request(WorkloadKind::MaliciousFiltering, i);
        let served = rig.store.serve(rig.now, &req).expect("servable");
        hits += served.measured.cache_hits as u64;
        misses += served.measured.cache_misses as u64;
        rig.now += SimDuration::from_secs(60);
    }
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(rate > 0.99, "tailored hit rate {rate}");
}

#[test]
fn static_policy_misses_out_of_class_requests() {
    let cfg = quiet_config(&flstore_fl::zoo::ModelArch::RESNET18);
    let mut rig = Rig::with_policy(
        cfg,
        Box::new(StaticPolicy::new(PolicyClass::P1IndividualOrAggregate)),
        6,
    );
    rig.ingest_all();
    // P1 (inference) hits...
    let inf = rig.request(WorkloadKind::Inference, 5);
    let served = rig.store.serve(rig.now, &inf).expect("servable");
    assert_eq!(served.measured.cache_misses, 0);
    // ...but the workload switched to malicious filtering (P2): misses.
    let filt = rig.request(WorkloadKind::MaliciousFiltering, 5);
    let served = rig.store.serve(rig.now, &filt).expect("servable");
    assert!(
        served.measured.cache_misses > 0,
        "static policy must miss P2"
    );
}

#[test]
fn replication_recovers_from_forced_reclamation() {
    let model = flstore_fl::zoo::ModelArch::RESNET18;
    let mut cfg = quiet_config(&model);
    cfg.replication = 3;
    cfg.platform.reclaim = ReclaimModel {
        enabled: true,
        min_lifetime_hours: 0.02, // sandboxes die within minutes
        alpha: 2.5,
    };
    let mut rig = Rig::new(cfg, 6);
    let records = rig.records.clone();
    let mut fault_recoveries = 0u64;
    let mut refetches = 0u64;
    for (i, r) in records.iter().enumerate() {
        rig.store.ingest_round(rig.now, r);
        rig.now += SimDuration::from_mins(30);
        let req = rig.request(WorkloadKind::MaliciousFiltering, i);
        let served = rig.store.serve(rig.now, &req).expect("servable");
        if served.measured.recovered_from_fault {
            fault_recoveries += 1;
        }
        refetches += served.measured.cache_misses as u64;
        rig.now += SimDuration::from_mins(30);
    }
    assert!(
        rig.store.faults_observed() > 0,
        "aggressive reclaim model should fire"
    );
    // With 3 replicas, most requests survive without re-fetching everything.
    let _ = (fault_recoveries, refetches);
}

#[test]
fn capacity_limited_store_still_serves() {
    let model = flstore_fl::zoo::ModelArch::RESNET18;
    let mut cfg = quiet_config(&model);
    // Room for roughly half a round of ResNet18 updates.
    cfg.capacity_per_ring = Some(ByteSize::from_mb(150));
    let mut rig = Rig::new(cfg, 6);
    rig.ingest_all();
    let req = rig.request(WorkloadKind::MaliciousFiltering, 5);
    let served = rig.store.serve(rig.now, &req).expect("servable");
    // Some of the round did not fit: partial hits, partial misses.
    assert!(served.measured.cache_misses > 0);
    let full = Rig::new(quiet_config(&model), 6);
    drop(full);
}

#[test]
fn per_request_cost_is_orders_below_a_dollar() {
    let mut rig = Rig::new(
        quiet_config(&flstore_fl::zoo::ModelArch::EFFICIENTNET_V2_S),
        6,
    );
    rig.ingest_all();
    let req = rig.request(WorkloadKind::CosineSimilarity, 5);
    let served = rig.store.serve(rig.now, &req).expect("servable");
    // Hit path: just a short Lambda invocation — around 1e-4 dollars.
    assert!(
        served.measured.cost.total().as_dollars() < 0.005,
        "cost {}",
        served.measured.cost
    );
}

#[test]
fn total_cost_includes_background_and_storage() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 4);
    rig.ingest_all();
    let req = rig.request(WorkloadKind::Inference, 3);
    rig.store.serve(rig.now, &req).expect("servable");
    let end = rig.now + SimDuration::from_hours(1);
    let total = rig.store.total_cost(end);
    assert!(total.total().as_dollars() > 0.0);
    assert!(total.storage.as_dollars() > 0.0, "storage rent accrues");
    assert!(
        total.total() >= rig.store.ledger().request_cost().total(),
        "total covers request costs"
    );
}

#[test]
fn unknown_round_is_a_clean_error() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 3);
    rig.ingest_all();
    let req = WorkloadRequest::new(
        RequestId::new(77),
        WorkloadKind::Clustering,
        JobId::new(1),
        flstore_fl::ids::Round::new(500),
        None,
    );
    let err = rig.store.serve(rig.now, &req).unwrap_err();
    assert!(matches!(
        err,
        flstore_core::error::FlStoreError::NoData { .. }
    ));
}

#[test]
fn ledger_accumulates_outcomes() {
    let mut rig = Rig::new(quiet_config(&flstore_fl::zoo::ModelArch::RESNET18), 5);
    rig.ingest_all();
    for kind in [
        WorkloadKind::Inference,
        WorkloadKind::CosineSimilarity,
        WorkloadKind::Incentives,
    ] {
        let req = rig.request(kind, 4);
        rig.store.serve(rig.now, &req).expect("servable");
        rig.now += SimDuration::from_secs(30);
    }
    let ledger = rig.store.ledger();
    assert_eq!(ledger.len(), 3);
    assert!(ledger.hit_rate() > 0.99);
    assert_eq!(ledger.by_kind(WorkloadKind::Inference).count(), 1);
}
