//! Property: submitting any envelope mix through `Service::submit_batch`
//! is observably identical to submitting the same envelopes one at a time
//! (batch size 1) at the same instant — same responses, same ledger
//! entries, same costs, same cache state.
//!
//! The same harness holds the line for the *parallel* serving plane: a
//! `flstore_exec::ShardedExecutor` (any shard count) wrapping the same
//! deployments must be bit-for-bit identical to sequential submission —
//! responses, ledgers, window costs, and cache fingerprints.
//!
//! For the *intra-job* plane: the same line holds across the key-shards
//! × job-shards cross product — a `MetaKey`-sharded cache engine served
//! through a work-stealing executor — including the f64 fold order of
//! Stats barriers and the bytes a durable deployment persists.
//!
//! And for the *durability* plane: a deployment killed at an arbitrary
//! point in the mix and recovered from its write-ahead ledger must serve
//! the remaining envelopes exactly as the uninterrupted run would, at
//! every shard count.
//!
//! For the *cluster* plane, the same harness holds the transparency
//! line of docs/CLUSTER.md: a 1-node, replication-factor-1
//! `ClusterStore` answers **bit-for-bit** like the bare store it wraps
//! (responses, ledger, costs, cache fingerprint — single submits and
//! batch decomposition both), and a cluster whose node is killed at an
//! arbitrary cut point and recovered from its own per-node ledger
//! serves the remaining envelopes exactly like an uninterrupted bare
//! reference.
//!
//! Deployments run with reclamation disabled (the figure-generation
//! setup): batching is *defined* to share one liveness pass across a
//! batch, so under fault injection a batch may attribute one fault to
//! several batchmates — outside faults, there must be no observable
//! difference at all.

use proptest::prelude::*;

use flstore_cluster::cluster::{ClusterConfig, ClusterStore};
use flstore_cluster::failure::{FailureKind, FailurePlan};
use flstore_core::api::{Request, Response, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::quota::TenantQuota;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_fl::metadata::MetaKey;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

const JOB: u32 = 1;

fn job_config() -> FlJobConfig {
    FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(JobId::new(JOB))
    }
}

/// A deployment with `capacity` optionally constrained (the
/// FLStore-limited shape, which exercises victim eviction under pressure).
fn loaded_store(limited: bool) -> (FlStore, Vec<RoundRecord>) {
    loaded_store_keyed(limited, 0)
}

/// [`loaded_store`] with the cache engine partitioned into `key_shards`
/// MetaKey shards (0 = the process-wide default, i.e. unsharded).
fn loaded_store_keyed(limited: bool, key_shards: usize) -> (FlStore, Vec<RoundRecord>) {
    let job = job_config();
    let cfg = FlStoreConfig {
        key_shards,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        capacity_per_ring: limited.then(|| job.round_metadata_bytes() + ByteSize::from_mb(50)),
        ..FlStoreConfig::for_model(&job.model)
    };
    let mut store = FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model);
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let mut now = SimTime::ZERO;
    // Hold the last record back so the mix can contain Ingest envelopes.
    for r in &records[..records.len() - 1] {
        store.ingest_round(now, r);
        now += SimDuration::from_secs(60);
    }
    (store, records)
}

/// Derives a deterministic envelope mix from `seed`: mostly serves across
/// every workload class, plus evictions, stats probes, admission-rejected
/// foreign-job requests, unservable rounds, and a held-back round ingest.
fn request_mix(seed: u64, len: usize, records: &[RoundRecord]) -> Vec<Request> {
    let mut rng = DetRng::stream(seed, "api-batch-mix");
    let observed = &records[..records.len() - 1];
    let mut requests = Vec::with_capacity(len);
    for i in 0..len {
        let id = RequestId::new(i as u64 + 1);
        match rng.index(12) {
            // One held-back round can land mid-mix (a batch barrier).
            0 => requests.push(Request::Ingest {
                job: JobId::new(JOB),
                record: std::sync::Arc::new(records.last().expect("records").clone()),
            }),
            1 => {
                let round = observed[rng.index(observed.len())].round;
                let key = match rng.index(3) {
                    0 => MetaKey::aggregate(JobId::new(JOB), round),
                    1 => MetaKey::metrics(JobId::new(JOB), round),
                    _ => MetaKey::hyperparams(JobId::new(JOB), round),
                };
                requests.push(Request::Evict(key));
            }
            2 => requests.push(Request::Stats),
            3 => {
                // Admission rejection: a job no deployment owns.
                let round = observed[rng.index(observed.len())].round;
                requests.push(Request::Serve(WorkloadRequest::new(
                    id,
                    WorkloadKind::Inference,
                    JobId::new(77),
                    round,
                    None,
                )));
            }
            4 => {
                // Unservable round: typed NoData, not a silent drop.
                requests.push(Request::Serve(WorkloadRequest::new(
                    id,
                    WorkloadKind::Clustering,
                    JobId::new(JOB),
                    flstore_fl::ids::Round::new(99),
                    None,
                )));
            }
            _ => {
                let record = &observed[rng.index(observed.len())];
                let kind = WorkloadKind::ALL[rng.index(WorkloadKind::ALL.len())];
                let client = match kind.policy_class() {
                    PolicyClass::P3AcrossRounds => {
                        Some(record.updates[rng.index(record.updates.len())].client)
                    }
                    _ => None,
                };
                requests.push(Request::Serve(WorkloadRequest::new(
                    id,
                    kind,
                    JobId::new(JOB),
                    record.round,
                    client,
                )));
            }
        }
    }
    requests
}

fn cache_fingerprint(store: &FlStore) -> Vec<String> {
    let mut keys: Vec<String> = store
        .engine()
        .keys()
        .map(|k| {
            let m = store.engine().meta(k).expect("tracked keys carry meta");
            format!(
                "{k} seq={} freq={} locs={:?}",
                m.last_access_seq,
                m.frequency,
                store.engine().locations(k)
            )
        })
        .collect();
    keys.sort();
    keys
}

fn assert_equivalent(limited: bool, seed: u64, len: usize) {
    let (mut batched, records) = loaded_store(limited);
    let (mut sequential, _) = loaded_store(limited);
    let mix = request_mix(seed, len, &records);
    let now = SimTime::from_secs(7200);

    let batch_responses = batched.submit_batch(now, &mix);
    let sequential_responses: Vec<Response> = mix
        .iter()
        .map(|r| sequential.submit(now, r.clone()))
        .collect();

    assert_eq!(batch_responses, sequential_responses, "responses differ");
    assert_eq!(
        batched.ledger().outcomes,
        sequential.ledger().outcomes,
        "ledger entries differ"
    );
    assert_eq!(
        batched.ledger().background_cost,
        sequential.ledger().background_cost,
        "background costs differ"
    );
    assert_eq!(
        batched.total_cost(now),
        sequential.total_cost(now),
        "window costs differ"
    );
    assert_eq!(
        cache_fingerprint(&batched),
        cache_fingerprint(&sequential),
        "cache state differs"
    );
}

/// Shard counts every parallel property sweeps.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Single-tenant plane: a sharded executor wrapping one deployment must
/// be bit-for-bit identical to sequential submission on an identically
/// loaded deployment — for every shard count.
fn assert_sharded_single_tenant_equivalent(limited: bool, seed: u64, len: usize) {
    let (mut sequential, records) = loaded_store(limited);
    let mix = request_mix(seed, len, &records);
    let now = SimTime::from_secs(7200);
    let sequential_responses: Vec<Response> = mix
        .iter()
        .map(|r| sequential.submit(now, r.clone()))
        .collect();
    let sequential_cost = sequential.total_cost(now);

    for shards in SHARD_COUNTS {
        let (parallel, _) = loaded_store(limited);
        let mut exec = ShardedExecutor::new(vec![parallel], shards);
        let responses = exec.submit_batch(now, &mix);
        assert_eq!(
            responses, sequential_responses,
            "responses @{shards} shards"
        );
        assert_eq!(Service::window_cost(&mut exec, now), sequential_cost);
        let store = exec.into_units().pop().expect("unit returned");
        assert_eq!(
            store.ledger().outcomes,
            sequential.ledger().outcomes,
            "ledger @{shards} shards"
        );
        assert_eq!(
            cache_fingerprint(&store),
            cache_fingerprint(&sequential),
            "cache state @{shards} shards"
        );
    }
}

/// MetaKey-shard counts the intra-job parallelism properties sweep.
const KEY_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Intra-job parallelism: the full key-shards × job-shards cross product
/// must be bit-for-bit identical to sequential submission on an unsharded
/// deployment. With more workers than busy jobs (every point here — one
/// tenant), the idle workers steal the hot tenant's deferred serve
/// kernels, so this property also pins the steal plane's ordered merge.
fn assert_key_shard_cross_product_equivalent(limited: bool, seed: u64, len: usize) {
    let (mut sequential, records) = loaded_store(limited);
    let mix = request_mix(seed, len, &records);
    let now = SimTime::from_secs(7200);
    let sequential_responses: Vec<Response> = mix
        .iter()
        .map(|r| sequential.submit(now, r.clone()))
        .collect();
    let sequential_cost = sequential.total_cost(now);

    for key_shards in KEY_SHARD_COUNTS {
        for job_shards in [1usize, 2, 4] {
            let (parallel, _) = loaded_store_keyed(limited, key_shards);
            let mut exec = ShardedExecutor::new(vec![parallel], job_shards);
            let responses = exec.submit_batch(now, &mix);
            assert_eq!(
                responses, sequential_responses,
                "responses @K={key_shards} keys × {job_shards} workers"
            );
            // Exact f64 equality: any hash-order drift in a cost fold
            // shows up here, not as an epsilon.
            assert_eq!(
                Service::window_cost(&mut exec, now),
                sequential_cost,
                "window costs @K={key_shards} keys × {job_shards} workers"
            );
            let store = exec.into_units().pop().expect("unit returned");
            assert_eq!(
                store.ledger().outcomes,
                sequential.ledger().outcomes,
                "ledger @K={key_shards} keys × {job_shards} workers"
            );
            assert_eq!(
                cache_fingerprint(&store),
                cache_fingerprint(&sequential),
                "cache state @K={key_shards} keys × {job_shards} workers"
            );
        }
    }
}

/// Durability × key shards: a durable deployment's persisted bytes —
/// write-ahead ledger segments and snapshots — must be identical at every
/// key-shard count, even when the serves run through a work-stealing
/// executor. The shard layout is a serve-phase fact; if it leaked into
/// the persisted records (hash/shard iteration order in a digest or
/// snapshot), recovery portability across `--key-shards` settings would
/// silently break. Only the MANIFEST may differ, and only in its
/// `key_shards` field.
fn assert_key_sharded_durability_bytes_identical(seed: u64, len: usize) {
    let (mut reference, records) = loaded_store(false);
    let mix = request_mix(seed, len, &records);
    let now = SimTime::from_secs(7200);
    let reference_responses: Vec<Response> = mix
        .iter()
        .map(|r| reference.submit(now, r.clone()))
        .collect();

    let mut persisted: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
    let mut manifests: Vec<flstore_durability::recover::Manifest> = Vec::new();
    for key_shards in [1usize, 8] {
        let dir = flstore_durability::testkit::DetTempDir::new(
            "api-batch-keyshard-wal",
            seed ^ ((len as u64) << 40) ^ ((key_shards as u64) << 56),
        );
        let job = job_config();
        let cfg = FlStoreConfig {
            key_shards,
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            durability: flstore_core::durable::DurabilityConfig {
                flush_every: 1,
                snapshot_every: 8,
                ..flstore_core::durable::DurabilityConfig::DISABLED
            },
            ..FlStoreConfig::for_model(&job.model)
        };
        let mut durable = FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model);
        flstore_durability::recover::attach(&mut durable, dir.path()).expect("attach");
        let mut at = SimTime::ZERO;
        for r in &records[..records.len() - 1] {
            durable.ingest_round(at, r);
            at += SimDuration::from_secs(60);
        }
        let mut exec = ShardedExecutor::new(vec![durable], 4);
        let responses = exec.submit_batch(now, &mix);
        assert_eq!(
            responses, reference_responses,
            "durable responses @{key_shards} key shards"
        );
        drop(exec); // close the ledger writer before reading its files

        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.path())
            .expect("durable dir")
            .map(|e| e.expect("dir entry"))
            .filter(|e| e.file_name() != flstore_durability::recover::MANIFEST)
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).expect("persisted file"),
                )
            })
            .collect();
        files.sort();
        assert!(
            !files.is_empty(),
            "the durable run persisted nothing to compare"
        );
        persisted.push(files);
        let manifest =
            std::fs::read_to_string(dir.path().join(flstore_durability::recover::MANIFEST))
                .expect("manifest");
        manifests.push(serde_json::from_str(&manifest).expect("manifest parses"));
    }
    assert_eq!(
        persisted[0], persisted[1],
        "ledger/snapshot bytes differ across key-shard counts"
    );
    for manifest in &mut manifests {
        manifest.config.key_shards = 0;
    }
    assert_eq!(
        manifests[0], manifests[1],
        "manifests differ beyond the key_shards field"
    );
}

const TENANT_JOBS: [u32; 3] = [1, 2, 5];

/// A multi-tenant front end with every tenant trained up to (but not
/// including) its last round, plus the per-tenant record sets. With
/// `quotas`, arms elastic per-tenant budgets sized to be overshot and a
/// global budget sized to force the pressure pass at every Stats barrier —
/// the cross-tenant quota-pressure shape.
fn loaded_front_with_quotas(quotas: bool) -> (MultiTenantStore, Vec<Vec<RoundRecord>>) {
    loaded_front_keyed(quotas, 0)
}

/// [`loaded_front_with_quotas`] with every tenant's cache engine
/// partitioned into `key_shards` MetaKey shards.
fn loaded_front_keyed(
    quotas: bool,
    key_shards: usize,
) -> (MultiTenantStore, Vec<Vec<RoundRecord>>) {
    let template = FlStoreConfig {
        key_shards,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job_config().model)
    };
    let mut front = MultiTenantStore::new(template);
    let mut per_job = Vec::new();
    for job in TENANT_JOBS {
        let cfg = FlJobConfig {
            rounds: 4,
            ..FlJobConfig::quick_test(JobId::new(job))
        };
        if quotas {
            // Roughly one round of metadata: the tailored hot set (~2
            // rounds) overshoots this, so every tenant carries an elastic
            // overage the pressure plan can claim.
            let soft = cfg.round_metadata_bytes();
            front.register_job_with_quota(cfg.job, cfg.model, Some(TenantQuota::elastic(soft)));
        } else {
            front.register_job(cfg.job, cfg.model);
        }
        let records: Vec<RoundRecord> = FlJobSim::new(cfg.clone()).collect();
        let mut now = SimTime::ZERO;
        for r in &records[..records.len() - 1] {
            front.ingest_round(now, cfg.job, r).expect("registered");
            now += SimDuration::from_secs(60);
        }
        per_job.push(records);
    }
    if quotas {
        // Below aggregate residency: any Stats envelope in the mix
        // triggers real cross-tenant reclamation.
        let budget = job_config().round_metadata_bytes() * (TENANT_JOBS.len() as u64 + 1);
        front.set_global_budget(Some(budget));
    }
    (front, per_job)
}

/// Re-targets a single-tenant mix across the registered tenants (plus the
/// foreign job 77 and system-wide Stats the generator already emits), so
/// consecutive envelopes hop between shards.
fn tenant_mix(seed: u64, len: usize, per_job: &[Vec<RoundRecord>]) -> Vec<Request> {
    let mut rng = DetRng::stream(seed, "api-batch-tenant-mix");
    (0..len)
        .map(|i| {
            let t = rng.index(per_job.len());
            let job = JobId::new(TENANT_JOBS[t]);
            let mut request = request_mix(seed.wrapping_add(i as u64), 1, &per_job[t])
                .pop()
                .expect("one envelope");
            match &mut request {
                Request::Ingest { job: j, .. } => *j = job,
                Request::Serve(w) => {
                    if w.job == JobId::new(JOB) {
                        w.job = job;
                    }
                }
                Request::Evict(key) => key.job = job,
                Request::Stats => {}
            }
            request
        })
        .collect()
}

/// Multi-tenant plane: the sharded executor over the front end's tenants
/// must be bit-for-bit identical to sequentially submitting to the front
/// end — per-tenant ledgers and cache state included. With `quotas`, the
/// same line holds under armed budgets: strict enforcement inside each
/// shard and the global pressure pass at every Stats barrier.
fn assert_sharded_multi_tenant_equivalent_with(quotas: bool, seed: u64, len: usize) {
    let (mut sequential, per_job) = loaded_front_with_quotas(quotas);
    let mix = tenant_mix(seed, len, &per_job);
    let now = SimTime::from_secs(7200);
    let sequential_responses: Vec<Response> = mix
        .iter()
        .map(|r| sequential.submit(now, r.clone()))
        .collect();
    let sequential_cost = sequential.total_cost(now);

    for shards in SHARD_COUNTS {
        let (parallel, _) = loaded_front_with_quotas(quotas);
        let mut exec = ShardedExecutor::from_tenants(parallel, shards);
        let responses = exec.submit_batch(now, &mix);
        assert_eq!(
            responses, sequential_responses,
            "responses @{shards} shards"
        );
        assert_eq!(Service::window_cost(&mut exec, now), sequential_cost);
        for store in exec.into_units() {
            let tenant = sequential
                .tenant(store.catalog().job())
                .expect("same tenants");
            assert_eq!(
                store.ledger().outcomes,
                tenant.ledger().outcomes,
                "ledger of {} @{shards} shards",
                store.catalog().job()
            );
            assert_eq!(
                cache_fingerprint(&store),
                cache_fingerprint(tenant),
                "cache state of {} @{shards} shards",
                store.catalog().job()
            );
        }
    }
}

/// Fold-order regression (the PR 3/5 bug shape): Stats barriers and
/// window-cost reductions fold f64 partials — across tenants in sorted
/// job order, and within a tenant over per-key-shard partial counters
/// that the engine sums in fixed shard-index order. A refactor that let
/// hash or shard iteration order reach either fold would drift the f64
/// sums between runs and between key-shard counts. This property pins
/// both: the full Stats/cost surface of a quota-armed multi-tenant front
/// must be *exactly* equal (f64 bitwise, via `PartialEq`) between an
/// unsharded sequential run and a key-sharded executor run — and between
/// two identically-built key-sharded runs.
fn assert_stats_fold_pinned_across_key_shards(quotas: bool, seed: u64, len: usize) {
    let (mut sequential, per_job) = loaded_front_with_quotas(quotas);
    let mut mix = tenant_mix(seed, len, &per_job);
    // End on a Stats barrier so every run closes with the full fold.
    mix.push(Request::Stats);
    let now = SimTime::from_secs(7200);
    let sequential_responses: Vec<Response> = mix
        .iter()
        .map(|r| sequential.submit(now, r.clone()))
        .collect();
    let sequential_cost = sequential.total_cost(now);

    for key_shards in [2usize, 8] {
        let run = |_: usize| {
            let (front, _) = loaded_front_keyed(quotas, key_shards);
            let mut exec = ShardedExecutor::from_tenants(front, 4);
            let responses = exec.submit_batch(now, &mix);
            let cost = Service::window_cost(&mut exec, now);
            (responses, cost)
        };
        let (responses, cost) = run(0);
        assert_eq!(
            responses, sequential_responses,
            "stats fold drifted @{key_shards} key shards"
        );
        assert_eq!(
            cost, sequential_cost,
            "cost fold drifted @{key_shards} key shards"
        );
        // Run-to-run: hash-order leakage is seeded per HashMap instance,
        // so a second identically-built run is an independent draw.
        assert_eq!(
            run(1),
            (responses, cost),
            "stats fold is nondeterministic @{key_shards} key shards"
        );
    }
}

/// Strict quota properties: a front with one strict-budgeted tenant and
/// one unbounded bystander. After *every* envelope of any mix aimed at the
/// strict tenant, (a) the strict tenant's residency never exceeds its
/// budget, and (b) the bystander's cache is untouched — evictions are
/// confined to the offending tenant's own keys.
fn assert_strict_quota_bounded_and_confined(seed: u64, len: usize, budget_rounds: u64) {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job_config().model)
    };
    let mut front = MultiTenantStore::new(template);
    let strict_job = JobId::new(JOB);
    let bystander = JobId::new(2);
    let cfg = FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(strict_job)
    };
    let budget = cfg.round_metadata_bytes() * budget_rounds;
    front.register_job_with_quota(strict_job, cfg.model, Some(TenantQuota::strict(budget)));
    let bys_cfg = FlJobConfig {
        rounds: 3,
        ..FlJobConfig::quick_test(bystander)
    };
    front.register_job(bystander, bys_cfg.model);

    let mut now = SimTime::ZERO;
    for r in FlJobSim::new(bys_cfg) {
        front.ingest_round(now, bystander, &r).expect("registered");
        now += SimDuration::from_secs(60);
    }
    let bystander_before = cache_fingerprint(front.tenant(bystander).expect("registered"));

    let records: Vec<RoundRecord> = FlJobSim::new(cfg.clone()).collect();
    for r in &records[..records.len() - 1] {
        front.ingest_round(now, strict_job, r).expect("registered");
        now += SimDuration::from_secs(60);
        let resident = front
            .tenant(strict_job)
            .expect("registered")
            .resident_bytes();
        assert!(
            resident <= budget,
            "ingest overshot the strict budget: {resident} > {budget}"
        );
    }

    // An arbitrary envelope mix aimed at the strict tenant (serves,
    // evictions, a held-back ingest, stats probes).
    let mix = request_mix(seed, len, &records);
    let at = SimTime::from_secs(7200);
    for request in mix {
        front.submit(at, request);
        let resident = front
            .tenant(strict_job)
            .expect("registered")
            .resident_bytes();
        assert!(
            resident <= budget,
            "an envelope overshot the strict budget: {resident} > {budget}"
        );
    }
    assert_eq!(
        cache_fingerprint(front.tenant(bystander).expect("registered")),
        bystander_before,
        "strict-quota evictions leaked into another tenant's cache"
    );
}

/// Recovery equivalence: run an arbitrary envelope mix up to a random
/// cut point on a durable deployment (every record flushed, snapshots
/// sealing mid-run), kill it there, `recover` from the ledger, and serve
/// the remaining envelopes — on the recovered store directly and wrapped
/// in a sharded executor at every shard count. Responses, ledger
/// outcomes, window costs, and the cache fingerprint must all equal an
/// uninterrupted non-durable run of the full mix.
fn assert_recovered_store_equals_uninterrupted(seed: u64, len: usize, cut: usize) {
    let (mut reference, records) = loaded_store(false);
    let mix = request_mix(seed, len, &records);
    let cut = cut % (mix.len() + 1);
    let now = SimTime::from_secs(7200);
    let reference_responses: Vec<Response> = mix
        .iter()
        .map(|r| reference.submit(now, r.clone()))
        .collect();
    let reference_cost = reference.total_cost(now);

    for shards in [1usize, 2, 4] {
        // One durable life per shard count: recovery appends to the same
        // active ledger, so each run needs its own directory.
        let dir = flstore_durability::testkit::DetTempDir::new(
            "api-batch-recovery",
            seed ^ ((len as u64) << 40) ^ ((cut as u64) << 48) ^ ((shards as u64) << 56),
        );
        let job = job_config();
        let cfg = FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            durability: flstore_core::durable::DurabilityConfig {
                flush_every: 1,
                snapshot_every: 8,
                ..flstore_core::durable::DurabilityConfig::DISABLED
            },
            ..FlStoreConfig::for_model(&job.model)
        };
        let mut durable = FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model);
        flstore_durability::recover::attach(&mut durable, dir.path()).expect("attach");
        let mut at = SimTime::ZERO;
        for r in &records[..records.len() - 1] {
            durable.ingest_round(at, r);
            at += SimDuration::from_secs(60);
        }
        for (request, expected) in mix[..cut].iter().zip(&reference_responses) {
            let response = durable.submit(now, request.clone());
            assert_eq!(&response, expected, "pre-kill responses @{shards} shards");
        }
        drop(durable); // the kill: every record is already flushed

        let recovered = flstore_durability::recover::recover(dir.path()).expect("recover");
        let (responses, store) = if shards > 1 {
            let mut exec = ShardedExecutor::new(vec![recovered], shards);
            let responses = exec.submit_batch(now, &mix[cut..]);
            (responses, exec.into_units().pop().expect("unit returned"))
        } else {
            let mut recovered = recovered;
            let responses: Vec<Response> = mix[cut..]
                .iter()
                .map(|r| recovered.submit(now, r.clone()))
                .collect();
            (responses, recovered)
        };
        assert_eq!(
            responses,
            reference_responses[cut..],
            "post-recovery responses @{shards} shards"
        );
        assert_eq!(
            store.ledger().outcomes,
            reference.ledger().outcomes,
            "ledger @{shards} shards"
        );
        assert_eq!(
            store.ledger().background_cost,
            reference.ledger().background_cost,
            "background costs @{shards} shards"
        );
        let mut store = store;
        assert_eq!(
            store.total_cost(now),
            reference_cost,
            "window costs @{shards} shards"
        );
        assert_eq!(
            cache_fingerprint(&store),
            cache_fingerprint(&reference),
            "cache state @{shards} shards"
        );
    }
}

/// The store template the cluster properties share with their bare
/// reference. With `durable`, arms the write-ahead ledger in every
/// tenant (synchronous commit, snapshots sealing mid-run) so a killed
/// node has a ledger to recover from.
fn cluster_template(limited: bool, durable: bool) -> FlStoreConfig {
    let job = job_config();
    FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        capacity_per_ring: limited.then(|| job.round_metadata_bytes() + ByteSize::from_mb(50)),
        durability: if durable {
            flstore_core::durable::DurabilityConfig {
                flush_every: 1,
                snapshot_every: 8,
                ..flstore_core::durable::DurabilityConfig::DISABLED
            }
        } else {
            flstore_core::durable::DurabilityConfig::DISABLED
        },
        ..FlStoreConfig::for_model(&job.model)
    }
}

/// Ingests every round but the last through the public [`Service`]
/// front — the same envelopes, the same stamps, on both sides of a
/// cluster-equivalence comparison.
fn load_via_service(service: &mut dyn Service, records: &[RoundRecord]) {
    let mut now = SimTime::ZERO;
    for r in &records[..records.len() - 1] {
        let response = service.submit(
            now,
            Request::Ingest {
                job: JobId::new(JOB),
                record: std::sync::Arc::new(r.clone()),
            },
        );
        assert!(response.is_ok(), "loading ingest rejected");
        now += SimDuration::from_secs(60);
    }
}

/// The bare reference a cluster must match: one tenant registered
/// through the same `MultiTenantStore` template path a cluster node
/// uses (same per-job seed derivation), loaded identically.
fn loaded_tenant_reference(limited: bool) -> (FlStore, Vec<RoundRecord>) {
    let job = job_config();
    let mut front = MultiTenantStore::new(cluster_template(limited, false));
    assert!(front.register_job(job.job, job.model));
    let mut store = front.into_tenants().pop().expect("one tenant").1;
    let records: Vec<RoundRecord> = FlJobSim::new(job).collect();
    load_via_service(&mut store, &records);
    (store, records)
}

/// A cluster of `nodes` at replication factor `rf`, hosting the one
/// test job and loaded exactly like [`loaded_tenant_reference`].
fn loaded_cluster(
    limited: bool,
    nodes: usize,
    rf: usize,
    durable_root: Option<std::path::PathBuf>,
) -> (ClusterStore, Vec<RoundRecord>) {
    let job = job_config();
    let mut cfg =
        ClusterConfig::sim_default(nodes, rf, cluster_template(limited, durable_root.is_some()));
    cfg.durable_root = durable_root;
    let mut cluster = ClusterStore::new(cfg);
    assert!(cluster
        .register_job(job.job, job.model)
        .expect("durable attach"));
    let records: Vec<RoundRecord> = FlJobSim::new(job).collect();
    load_via_service(&mut cluster, &records);
    (cluster, records)
}

/// Cluster transparency (docs/CLUSTER.md constraint 1): a 1-node rf=1
/// `ClusterStore` must be bit-for-bit the bare store it wraps, across
/// the same envelope mixes every other plane sweeps — per-envelope
/// responses, batch decomposition, ledger outcomes, window costs, and
/// the cache fingerprint.
fn assert_one_node_rf1_cluster_equals_bare(limited: bool, seed: u64, len: usize) {
    let (mut bare, records) = loaded_tenant_reference(limited);
    let (mut cluster, _) = loaded_cluster(limited, 1, 1, None);
    let mix = request_mix(seed, len, &records);
    let now = SimTime::from_secs(7200);

    let bare_responses: Vec<Response> = mix.iter().map(|r| bare.submit(now, r.clone())).collect();
    let cluster_responses: Vec<Response> =
        mix.iter().map(|r| cluster.submit(now, r.clone())).collect();
    assert_eq!(cluster_responses, bare_responses, "responses differ");

    let primary = cluster
        .primary_store(JobId::new(JOB))
        .expect("healthy cluster has a primary");
    assert_eq!(
        primary.ledger().outcomes,
        bare.ledger().outcomes,
        "ledger entries differ"
    );
    assert_eq!(
        cache_fingerprint(primary),
        cache_fingerprint(&bare),
        "cache state differs"
    );
    assert_eq!(
        cluster.total_cost(now),
        bare.total_cost(now),
        "window costs differ"
    );

    // Batch decomposition: the cluster groups serve runs exactly like a
    // bare store's submit_batch (fresh twins — state is monotonic).
    let (mut bare_b, _) = loaded_tenant_reference(limited);
    let (mut cluster_b, _) = loaded_cluster(limited, 1, 1, None);
    let bare_batch = bare_b.submit_batch(now, &mix);
    let cluster_batch = cluster_b.submit_batch(now, &mix);
    assert_eq!(cluster_batch, bare_batch, "batch responses differ");
    assert_eq!(bare_batch, bare_responses, "batch vs sequential differ");
}

/// Cluster recovery equivalence: run the mix to an arbitrary cut point
/// on a durable cluster, kill the acting primary there and bring it
/// straight back — the next submit drains both events, so the node's
/// in-memory state is dropped (its ledger flushed on the way down) and
/// rejoin recovers the tenant from the node's own per-node ledger. The
/// remaining envelopes, served by the recovered replica, must equal an
/// uninterrupted bare reference — responses, ledger, costs, cache
/// fingerprint — with zero rejoin digest mismatches.
fn assert_cluster_killed_at_cut_and_recovered_equals_uninterrupted(
    seed: u64,
    len: usize,
    cut: usize,
) {
    let (mut reference, records) = loaded_tenant_reference(false);
    let mix = request_mix(seed, len, &records);
    let cut = cut % (mix.len() + 1);
    let now = SimTime::from_secs(7200);
    let reference_responses: Vec<Response> = mix
        .iter()
        .map(|r| reference.submit(now, r.clone()))
        .collect();

    let dir = flstore_durability::testkit::DetTempDir::new(
        "api-batch-cluster-kill",
        seed ^ ((len as u64) << 40) ^ ((cut as u64) << 48),
    );
    let (mut cluster, _) = loaded_cluster(false, 2, 2, Some(dir.path().to_path_buf()));
    for (request, expected) in mix[..cut].iter().zip(&reference_responses) {
        let response = cluster.submit(now, request.clone());
        assert_eq!(&response, expected, "pre-kill responses");
    }

    let job = JobId::new(JOB);
    let primary = cluster.route(job)[0];
    cluster.inject_plan(
        &FailurePlan::none()
            .with(now, primary, FailureKind::Kill)
            .with(now, primary, FailureKind::Rejoin),
    );
    for (request, expected) in mix[cut..].iter().zip(&reference_responses[cut..]) {
        let response = cluster.submit(now, request.clone());
        assert_eq!(&response, expected, "post-recovery responses");
    }
    // A trailing Stats probe drains the failure events even when the
    // cut lands at the end of the mix (Stats is read-only: it leaves
    // ledger, costs, and cache state untouched on both sides).
    assert_eq!(
        cluster.submit(now, Request::Stats),
        reference.submit(now, Request::Stats),
        "post-recovery stats differ"
    );

    assert_eq!(cluster.stats().kills, 1, "the kill fired");
    assert_eq!(cluster.stats().rejoins, 1, "the rejoin fired");
    assert_eq!(
        cluster.stats().rejoin_digest_mismatches,
        0,
        "ledger recovery missed the kill-time digest"
    );
    let recovered = cluster
        .node_store(primary, job)
        .expect("rejoined node hosts the job");
    assert_eq!(
        recovered.ledger().outcomes,
        reference.ledger().outcomes,
        "ledger entries differ"
    );
    assert_eq!(
        cache_fingerprint(recovered),
        cache_fingerprint(&reference),
        "cache state differs"
    );
}

/// Elastic pressure determinism: two identically-loaded fronts must shed
/// the exact same `(job, key)` victim sequence from their pressure passes
/// interleaved with the same traffic.
fn assert_elastic_pressure_deterministic(seed: u64, len: usize) {
    let (mut a, per_job) = loaded_front_with_quotas(true);
    let (mut b, _) = loaded_front_with_quotas(true);
    let mix = tenant_mix(seed, len, &per_job);
    let now = SimTime::from_secs(7200);
    // Prime with one explicit pass: loading overshoots the global budget
    // by construction, so this first pass always reclaims — an empty
    // overall sequence would mean the property exercised nothing. (Stats
    // envelopes inside the mix run further passes internally; the
    // explicit per-envelope pass below catches overshoot from serves.)
    let mut victims_a = a.pressure_pass();
    let mut victims_b = b.pressure_pass();
    assert!(
        !victims_a.is_empty(),
        "the quota fixture no longer triggers pressure"
    );
    for request in &mix {
        a.submit(now, request.clone());
        b.submit(now, request.clone());
        victims_a.extend(a.pressure_pass());
        victims_b.extend(b.pressure_pass());
    }
    assert_eq!(victims_a, victims_b, "victim sequences diverged");
}

proptest! {
    #[test]
    fn batch_equals_sequential_unconstrained(seed in 0u64..1_000_000, len in 1usize..24) {
        assert_equivalent(false, seed, len);
    }

    #[test]
    fn batch_equals_sequential_under_capacity_pressure(seed in 0u64..1_000_000, len in 1usize..24) {
        assert_equivalent(true, seed, len);
    }

    #[test]
    fn sharded_executor_equals_sequential_single_tenant(seed in 0u64..1_000_000, len in 1usize..16) {
        assert_sharded_single_tenant_equivalent(false, seed, len);
    }

    #[test]
    fn sharded_executor_equals_sequential_under_capacity_pressure(seed in 0u64..1_000_000, len in 1usize..12) {
        assert_sharded_single_tenant_equivalent(true, seed, len);
    }

    #[test]
    fn key_shard_cross_product_equals_sequential(seed in 0u64..1_000_000, len in 1usize..10) {
        assert_key_shard_cross_product_equivalent(false, seed, len);
    }

    #[test]
    fn key_shard_cross_product_equals_sequential_under_capacity_pressure(seed in 0u64..1_000_000, len in 1usize..8) {
        assert_key_shard_cross_product_equivalent(true, seed, len);
    }

    #[test]
    fn key_sharded_durability_bytes_are_identical(seed in 0u64..1_000_000, len in 1usize..8) {
        assert_key_sharded_durability_bytes_identical(seed, len);
    }

    #[test]
    fn stats_fold_pinned_across_key_shards(seed in 0u64..1_000_000, len in 1usize..10) {
        assert_stats_fold_pinned_across_key_shards(false, seed, len);
    }

    #[test]
    fn stats_fold_pinned_across_key_shards_under_quota_pressure(seed in 0u64..1_000_000, len in 1usize..8) {
        assert_stats_fold_pinned_across_key_shards(true, seed, len);
    }

    #[test]
    fn sharded_executor_equals_sequential_multi_tenant(seed in 0u64..1_000_000, len in 1usize..16) {
        assert_sharded_multi_tenant_equivalent_with(false, seed, len);
    }

    #[test]
    fn sharded_executor_equals_sequential_under_quota_pressure(seed in 0u64..1_000_000, len in 1usize..12) {
        assert_sharded_multi_tenant_equivalent_with(true, seed, len);
    }

    #[test]
    fn strict_quota_never_admits_past_budget_and_confines_evictions(
        seed in 0u64..1_000_000,
        len in 1usize..16,
        budget_rounds in 1u64..3,
    ) {
        assert_strict_quota_bounded_and_confined(seed, len, budget_rounds);
    }

    #[test]
    fn elastic_pressure_is_deterministic(seed in 0u64..1_000_000, len in 1usize..12) {
        assert_elastic_pressure_deterministic(seed, len);
    }

    #[test]
    fn recovered_store_equals_uninterrupted(seed in 0u64..1_000_000, len in 1usize..10, cut in 0usize..16) {
        assert_recovered_store_equals_uninterrupted(seed, len, cut);
    }

    #[test]
    fn one_node_rf1_cluster_equals_bare_store(seed in 0u64..1_000_000, len in 1usize..16) {
        assert_one_node_rf1_cluster_equals_bare(false, seed, len);
    }

    #[test]
    fn one_node_rf1_cluster_equals_bare_store_under_capacity_pressure(seed in 0u64..1_000_000, len in 1usize..12) {
        assert_one_node_rf1_cluster_equals_bare(true, seed, len);
    }

    #[test]
    fn cluster_killed_at_any_cut_and_recovered_equals_uninterrupted(seed in 0u64..1_000_000, len in 1usize..10, cut in 0usize..16) {
        assert_cluster_killed_at_cut_and_recovered_equals_uninterrupted(seed, len, cut);
    }
}
