//! Property-based invariants for the Cache Engine and policies.

use proptest::prelude::*;

use flstore_core::engine::CacheEngine;
use flstore_core::policy::{CachingPolicy, EvictionDiscipline, ReactivePolicy, TailoredPolicy};
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::metadata::{MetaKey, MetaKind};
use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

fn key(round: u32, client: u32) -> MetaKey {
    MetaKey::update(JobId::new(1), Round::new(round), ClientId::new(client))
}

proptest! {
    #[test]
    fn engine_len_matches_inserts_minus_removes(
        inserts in prop::collection::vec((0u32..50, 0u32..10), 0..60),
        removes in prop::collection::vec((0u32..50, 0u32..10), 0..60),
    ) {
        let mut engine = CacheEngine::new();
        let mut model = std::collections::HashSet::new();
        for (r, c) in &inserts {
            engine.record(key(*r, *c), vec![FunctionId::from_raw(0)], ByteSize::from_mb(1), SimTime::ZERO);
            model.insert((*r, *c));
        }
        for (r, c) in &removes {
            let removed = engine.remove(&key(*r, *c)).is_some();
            prop_assert_eq!(removed, model.remove(&(*r, *c)));
        }
        prop_assert_eq!(engine.len(), model.len());
        prop_assert_eq!(
            engine.bytes_tracked(),
            ByteSize::from_mb(model.len() as u64)
        );
    }

    #[test]
    fn drop_replica_leaves_no_dangling_references(
        placements in prop::collection::vec((0u32..30, 0u32..8, 0u64..4), 1..60),
        victim in 0u64..4,
    ) {
        let mut engine = CacheEngine::new();
        for (r, c, f) in &placements {
            engine.record(
                key(*r, *c),
                vec![FunctionId::from_raw(*f), FunctionId::from_raw(f + 10)],
                ByteSize::from_mb(1),
                SimTime::ZERO,
            );
        }
        let victim = FunctionId::from_raw(victim);
        let orphaned = engine.drop_replica(victim);
        // Orphans are gone; survivors never reference the victim.
        for k in &orphaned {
            prop_assert!(!engine.contains(k));
        }
        for k in engine.keys() {
            let locs = engine.locations(k).expect("tracked");
            prop_assert!(!locs.contains(&victim));
            prop_assert!(!locs.is_empty());
        }
    }

    #[test]
    fn victims_free_at_least_the_requested_bytes(
        entries in prop::collection::vec((0u32..40, 0u32..10, 1u64..100), 1..50),
        need_mb in 1u64..500,
    ) {
        let mut engine = CacheEngine::new();
        let mut total = 0u64;
        for (r, c, mb) in &entries {
            engine.record(key(*r, *c), vec![FunctionId::from_raw(0)], ByteSize::from_mb(*mb), SimTime::ZERO);
        }
        for k in engine.keys() {
            total += engine.meta(k).expect("tracked").size.as_bytes();
        }
        let need = ByteSize::from_mb(need_mb);
        for policy in [
            &mut TailoredPolicy::new() as &mut dyn CachingPolicy,
            &mut ReactivePolicy::new(EvictionDiscipline::Lru, 1),
            &mut ReactivePolicy::new(EvictionDiscipline::Fifo, 1),
            &mut ReactivePolicy::new(EvictionDiscipline::Random, 1),
        ] {
            let victims = policy.victims(need, &engine);
            let freed: u64 = victims
                .iter()
                .filter_map(|k| engine.meta(k))
                .map(|m| m.size.as_bytes())
                .sum();
            // Either the request is satisfied or the whole cache was offered.
            prop_assert!(
                freed >= need.as_bytes().min(total),
                "{}: freed {} of {} (cache {})",
                policy.name(), freed, need.as_bytes(), total
            );
            // No duplicates.
            let mut uniq = victims.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), victims.len());
        }
    }

    #[test]
    fn tailored_never_evicts_the_freshest_round(
        rounds in 2u32..20,
        clients in 1u32..8,
    ) {
        let mut engine = CacheEngine::new();
        let mut policy = TailoredPolicy::new();
        let catalog = flstore_workloads::request::JobCatalog::new(
            JobId::new(1),
            flstore_fl::zoo::ModelArch::RESNET18,
        );
        for r in 0..rounds {
            let keys: Vec<MetaKey> = (0..clients).map(|c| key(r, c)).collect();
            let actions = policy.on_ingest(&keys, &catalog, &engine);
            for k in &actions.cache {
                engine.record(*k, vec![FunctionId::from_raw(0)], ByteSize::from_mb(1), SimTime::ZERO);
            }
            for k in &actions.evict {
                // The latest round must never be named a victim.
                prop_assert!(k.round.as_u32() < r, "evicted fresh key {k}");
                engine.remove(k);
            }
        }
        // After the run, the freshest round is fully resident.
        for c in 0..clients {
            prop_assert!(engine.contains(&key(rounds - 1, c)));
        }
    }

    #[test]
    fn touch_only_increases_recency_and_frequency(
        accesses in prop::collection::vec(0u32..10, 1..50),
    ) {
        let mut engine = CacheEngine::new();
        for c in 0..10 {
            engine.record(key(0, c), vec![FunctionId::from_raw(0)], ByteSize::from_mb(1), SimTime::ZERO);
        }
        let mut model: std::collections::HashMap<u32, u64> = Default::default();
        for c in accesses {
            let before = *engine.meta(&key(0, c)).expect("tracked");
            let after = engine.touch(&key(0, c)).expect("tracked");
            prop_assert!(after.last_access_seq > before.last_access_seq);
            prop_assert_eq!(after.frequency, before.frequency + 1);
            *model.entry(c).or_insert(0) += 1;
        }
        for (c, freq) in model {
            prop_assert_eq!(engine.meta(&key(0, c)).expect("tracked").frequency, freq);
        }
    }
}

// MetaKind is part of the public key space; keep the taxonomy closed.
#[test]
fn meta_kinds_are_exhaustive_in_victim_ranking() {
    // A compile-time-ish guard: every kind can be constructed and ranked.
    let kinds = [
        MetaKind::ClientUpdate,
        MetaKind::Aggregate,
        MetaKind::HyperParams,
        MetaKind::RoundMetrics,
    ];
    assert_eq!(kinds.len(), 4);
}
