//! Lock-order detector wired into the serving plane
//! (`cargo test -p flstore-exec --features lock-order`).
//!
//! Two directions:
//!
//! * the legal locking shapes the executor actually uses — the PR 4
//!   rendezvous double-barrier (every worker dispatches a tracker marker,
//!   meets the others, then completes it) and the client-mutex → tracker
//!   nesting of `submit_batch` — run clean under the detector;
//! * a deliberately seeded inversion across two real OS threads is caught:
//!   the second thread panics with both witness stacks *instead of
//!   deadlocking*.
#![cfg(feature = "lock-order")]

use std::sync::{Arc, Barrier};

use parking_lot::{order, Mutex};

use flstore_core::api::{Request, Response, Service};
use flstore_core::store::FlStoreConfig;
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

const SHARDS: usize = 4;

fn loaded_front() -> (MultiTenantStore, flstore_fl::ids::Round) {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&ModelArch::RESNET18)
    };
    let mut front = MultiTenantStore::new(template);
    let mut last = flstore_fl::ids::Round::ZERO;
    for job in 1..=4u32 {
        let cfg = FlJobConfig {
            rounds: 2,
            ..FlJobConfig::quick_test(JobId::new(job))
        };
        front.register_job(cfg.job, cfg.model);
        let mut now = SimTime::ZERO;
        for record in FlJobSim::new(cfg.clone()) {
            last = record.round;
            front
                .ingest_round(now, cfg.job, &record)
                .expect("registered");
            now += SimDuration::from_secs(60);
        }
    }
    (front, last)
}

/// The PR 4 rendezvous shape: every worker thread dispatches a tracker
/// marker (write lock), meets the others on the first barrier while its
/// marker is in flight, completes it (write lock), and re-joins on the
/// second barrier before the next round begins. Under the detector, ten
/// rounds of this — overlapping `core.tracker.entries` writes from all
/// workers — must record no ordering inversion.
#[test]
fn rendezvous_double_barrier_shape_is_order_clean() {
    let (front, round) = loaded_front();
    let mut exec = ShardedExecutor::from_tenants(front, SHARDS);
    for _ in 0..10 {
        assert_eq!(exec.rendezvous(), SHARDS);
    }
    // And a real batch over the same plane: client mutex → worker threads
    // → tracker lock, the full nesting `submit_batch` exercises.
    let guarded = Mutex::named(exec, "exec.lock_order.client");
    let batch: Vec<Request> = (0..64u64)
        .map(|i| {
            Request::Serve(WorkloadRequest::new(
                RequestId::new(i + 1),
                WorkloadKind::SchedulingCluster,
                JobId::new((i % 4 + 1) as u32),
                round,
                None,
            ))
        })
        .collect();
    let responses = guarded
        .lock()
        .submit_batch(SimTime::from_secs(3600), &batch);
    assert!(responses.iter().all(Response::is_ok));
    assert_eq!(guarded.lock().tracker().in_flight(), 0);
    assert_eq!(order::held_depth(), 0);
}

/// Seeds a genuine ABBA inversion across two OS threads. Without the
/// detector this interleaving (both threads hold their first lock before
/// either takes its second) deadlocks; with it, whichever thread loses the
/// race to record its ordering edge panics — with both witness stacks —
/// before blocking, and the other thread completes.
#[test]
fn seeded_abba_inversion_panics_instead_of_deadlocking() {
    // The detector panics in whichever thread closes the cycle; keep the
    // default hook from spamming a backtrace for that expected panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let msg = info.payload().downcast_ref::<String>();
        if !msg.is_some_and(|m| m.contains("lock-order inversion")) {
            eprintln!("{info}");
        }
    }));

    let a = Arc::new(Mutex::named(0u64, "seeded.a"));
    let b = Arc::new(Mutex::named(0u64, "seeded.b"));
    let both_hold_first = Arc::new(Barrier::new(2));

    let spawn_chain = |first: Arc<Mutex<u64>>, second: Arc<Mutex<u64>>, gate: Arc<Barrier>| {
        std::thread::Builder::new()
            .name("seeded-inversion".into())
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _g1 = first.lock();
                    gate.wait();
                    let _g2 = second.lock();
                }));
                assert_eq!(order::held_depth(), 0, "unwind released every hold");
                result.err().map(|e| {
                    e.downcast::<String>()
                        .map(|s| *s)
                        .unwrap_or_else(|_| String::from("<non-string payload>"))
                })
            })
            .expect("spawn")
    };

    let t_ab = spawn_chain(Arc::clone(&a), Arc::clone(&b), Arc::clone(&both_hold_first));
    let t_ba = spawn_chain(Arc::clone(&b), Arc::clone(&a), both_hold_first);
    let outcomes = [
        t_ab.join().expect("thread survives via catch_unwind"),
        t_ba.join().expect("thread survives via catch_unwind"),
    ];
    std::panic::set_hook(default_hook);

    let caught: Vec<&String> = outcomes.iter().flatten().collect();
    assert_eq!(
        caught.len(),
        1,
        "exactly one thread closes the cycle and is stopped: {outcomes:?}"
    );
    let msg = caught[0];
    assert!(msg.contains("lock-order inversion"), "{msg}");
    // Both witness stacks are in the panic: the panicking thread's own
    // held set and the stored witness of the opposite-order chain.
    assert!(msg.contains("while holding [seeded."), "{msg}");
    assert!(msg.contains("while holding [seeded."), "{msg}");
    assert!(
        msg.contains("edge `seeded.a` -> `seeded.b`")
            || msg.contains("edge `seeded.b` -> `seeded.a`"),
        "{msg}"
    );
}
