//! Work-stealing stress: one hot tenant, many workers, seeded request
//! streams — the configuration where every serve's kernel may execute on
//! a thief thread instead of its owner.
//!
//! Two lines are held at stress scale (the unit tests in `lib.rs` cover
//! the small cases):
//!
//! * **Byte equivalence** — responses from the stealing executor match a
//!   sequential run of the same seeded mix on an identically loaded
//!   deployment, for several seeds.
//! * **Exact attribution** — the shared `RequestTracker` records every
//!   serve on its *owner's* lane and nothing else. Stealing moves the
//!   kernel, never the bookkeeping: a thief must be invisible in the
//!   tracker, in flight counts, and in entry function lists.

use std::sync::Arc;

use parking_lot::Mutex;

use flstore_core::api::{Request, Response, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_serverless::function::FunctionId;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

const JOB: u32 = 1;
const WORKERS: usize = 8;

/// The hot tenant: one job, its cache engine partitioned into as many
/// MetaKey shards as the executor has workers.
fn loaded_store() -> (FlStore, Vec<RoundRecord>) {
    let cfg = FlJobConfig {
        rounds: 4,
        ..FlJobConfig::quick_test(JobId::new(JOB))
    };
    let store_cfg = FlStoreConfig {
        key_shards: WORKERS,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&cfg.model)
    };
    let mut store = FlStore::new(
        store_cfg,
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    );
    let records: Vec<RoundRecord> = FlJobSim::new(cfg).collect();
    let mut now = SimTime::ZERO;
    for record in &records {
        store.ingest_round(now, record);
        now += SimDuration::from_secs(60);
    }
    (store, records)
}

/// A seeded stream of serves across every workload class, all aimed at
/// the one hot job — every envelope is steal-eligible.
fn seeded_serves(seed: u64, len: usize, records: &[RoundRecord]) -> Vec<Request> {
    let mut rng = DetRng::stream(seed, "steal-stress-mix");
    (0..len)
        .map(|i| {
            let record = &records[rng.index(records.len())];
            let kind = WorkloadKind::ALL[rng.index(WorkloadKind::ALL.len())];
            let client = match kind.policy_class() {
                PolicyClass::P3AcrossRounds => {
                    Some(record.updates[rng.index(record.updates.len())].client)
                }
                _ => None,
            };
            Request::Serve(WorkloadRequest::new(
                RequestId::new(i as u64 + 1),
                kind,
                JobId::new(JOB),
                record.round,
                client,
            ))
        })
        .collect()
}

#[test]
fn stolen_serves_match_sequential_and_stay_attributed_to_the_owner() {
    for seed in [0x57EA_0001u64, 0x57EA_0002, 0x57EA_0003] {
        let (mut sequential, records) = loaded_store();
        let mix = seeded_serves(seed, 384, &records);
        let now = SimTime::from_secs(3600);
        let expected: Vec<Response> = mix
            .iter()
            .map(|r| sequential.submit(now, r.clone()))
            .collect();

        let (store, _) = loaded_store();
        let mut exec = ShardedExecutor::new(vec![store], WORKERS);
        let responses = exec.submit_batch(now, &mix);
        assert_eq!(
            responses, expected,
            "stealing changed bytes (seed {seed:x})"
        );
        assert_eq!(
            Service::window_cost(&mut exec, now),
            sequential.total_cost(now),
            "stealing changed costs (seed {seed:x})"
        );

        // Attribution: with one tenant there is exactly one owner lane.
        // Seven of eight workers only ever stole — none may appear.
        let owner = exec.shard_of(JobId::new(JOB)).expect("registered job");
        let tracker = exec.tracker();
        assert_eq!(tracker.len(), mix.len());
        assert_eq!(tracker.in_flight(), 0, "every stolen serve completed");
        for request in &mix {
            let Request::Serve(w) = request else {
                unreachable!()
            };
            let entry = tracker.entry(w.id).expect("every serve is tracked");
            assert!(entry.done);
            assert_eq!(
                entry.functions,
                vec![FunctionId::from_raw(owner as u64)],
                "a thief leaked into the tracker (seed {seed:x})"
            );
        }
    }
}

#[test]
fn client_threads_drive_the_steal_plane_concurrently() {
    let (store, records) = loaded_store();
    let records = Arc::new(records);
    let exec = Arc::new(Mutex::named(
        ShardedExecutor::new(vec![store], WORKERS),
        "exec.stress.steal-clients",
    ));
    let clients = 4u64;
    let batches_per_client = 6u64;
    let batch_len = 48usize;

    let mut handles = Vec::new();
    for client in 0..clients {
        let exec = Arc::clone(&exec);
        let records = Arc::clone(&records);
        handles.push(std::thread::spawn(move || {
            let now = SimTime::from_secs(3600);
            for b in 0..batches_per_client {
                // Distinct id spaces per client so tracker entries never
                // collide; distinct seeds so every batch differs.
                let first = (client * batches_per_client + b) * batch_len as u64;
                let mut batch = seeded_serves(0xC0FFEE ^ first, batch_len, &records);
                for request in &mut batch {
                    let Request::Serve(w) = request else {
                        unreachable!()
                    };
                    w.id = RequestId::new(first + w.id.as_u64());
                }
                let responses = exec.lock().submit_batch(now, &batch);
                assert!(responses.iter().all(Response::is_ok));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client threads finish cleanly");
    }

    let exec = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .into_inner();
    let total = clients * batches_per_client * batch_len as u64;
    let owner = exec.shard_of(JobId::new(JOB)).expect("registered job");
    let tracker = exec.tracker();
    assert_eq!(tracker.len(), total as usize);
    assert_eq!(tracker.in_flight(), 0);
    for id in 1..=total {
        let entry = tracker.entry(RequestId::new(id)).expect("tracked");
        assert!(entry.done);
        assert_eq!(entry.functions, vec![FunctionId::from_raw(owner as u64)]);
    }
}
