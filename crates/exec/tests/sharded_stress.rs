//! True multi-thread execution stress: OS threads drive the sharded
//! executor and the shared `RequestTracker` is exercised concurrently —
//! not just by the (single-threaded) property harness.
//!
//! Two concurrency guarantees are asserted deterministically:
//!
//! * [`ShardedExecutor::rendezvous`] makes every worker thread dispatch a
//!   tracker marker, meet the others on a barrier, then complete it — so
//!   all N `RwLock` writes provably overlap writes from the other
//!   threads (no worker can pass the barrier until all have written).
//! * Client threads hammer one executor through a mutex while worker
//!   threads record dispatch/completion into the same tracker — every
//!   serve envelope must end tracked, completed, and attributed to the
//!   shard lane that owns its job.

use std::sync::Arc;

use parking_lot::Mutex;

use flstore_core::api::{Request, Response, Service};
use flstore_core::store::FlStoreConfig;
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::function::FunctionId;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

const JOBS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const SHARDS: usize = 8;

fn loaded_front() -> (MultiTenantStore, flstore_fl::ids::Round) {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&ModelArch::RESNET18)
    };
    let mut front = MultiTenantStore::new(template);
    let mut last = flstore_fl::ids::Round::ZERO;
    for &job in &JOBS {
        let cfg = FlJobConfig {
            rounds: 3,
            ..FlJobConfig::quick_test(JobId::new(job))
        };
        front.register_job(cfg.job, cfg.model);
        let mut now = SimTime::ZERO;
        for record in FlJobSim::new(cfg.clone()) {
            last = record.round;
            front
                .ingest_round(now, cfg.job, &record)
                .expect("registered");
            now += SimDuration::from_secs(60);
        }
    }
    (front, last)
}

fn serve(id: u64, job: u32, round: flstore_fl::ids::Round) -> Request {
    Request::Serve(WorkloadRequest::new(
        RequestId::new(id),
        WorkloadKind::SchedulingCluster,
        JobId::new(job),
        round,
        None,
    ))
}

#[test]
fn rendezvous_overlaps_tracker_writes_across_all_workers() {
    let (front, _) = loaded_front();
    let mut exec = ShardedExecutor::from_tenants(front, SHARDS);
    // Every rendezvous is a full barrier: all worker threads hold a
    // dispatched-but-incomplete tracker entry at the same instant.
    for _ in 0..10 {
        assert_eq!(exec.rendezvous(), SHARDS);
    }
    assert!(exec.tracker().is_empty(), "markers are forgotten");
}

#[test]
fn worker_threads_track_every_serve_on_its_owning_lane() {
    let (front, round) = loaded_front();
    let mut exec = ShardedExecutor::from_tenants(front, SHARDS);
    let now = SimTime::from_secs(3600);
    let batch: Vec<Request> = (0..256u64)
        .map(|i| serve(i + 1, JOBS[(i % JOBS.len() as u64) as usize], round))
        .collect();
    let responses = exec.submit_batch(now, &batch);
    assert_eq!(responses.len(), batch.len());
    assert!(responses.iter().all(Response::is_ok));

    let tracker = exec.tracker();
    assert_eq!(tracker.len(), batch.len());
    assert_eq!(
        tracker.in_flight(),
        0,
        "workers complete what they dispatch"
    );
    for (i, request) in batch.iter().enumerate() {
        let Request::Serve(w) = request else {
            unreachable!()
        };
        let entry = tracker.entry(w.id).expect("every serve is tracked");
        assert!(entry.done);
        let shard = exec.shard_of(w.job).expect("registered job");
        assert_eq!(
            entry.functions,
            vec![FunctionId::from_raw(shard as u64)],
            "envelope {i} tracked on the wrong worker lane"
        );
    }
}

#[test]
fn client_threads_drive_one_executor_concurrently() {
    let (front, round) = loaded_front();
    let exec = Arc::new(Mutex::named(
        ShardedExecutor::from_tenants(front, SHARDS),
        "exec.stress.clients",
    ));
    let clients = 4u64;
    let batches_per_client = 8u64;
    let batch_len = 32u64;

    let mut handles = Vec::new();
    for client in 0..clients {
        let exec = Arc::clone(&exec);
        handles.push(std::thread::spawn(move || {
            let now = SimTime::from_secs(3600);
            for b in 0..batches_per_client {
                let first = 1 + (client * batches_per_client + b) * batch_len;
                let batch: Vec<Request> = (0..batch_len)
                    .map(|i| {
                        let id = first + i;
                        serve(id, JOBS[(id % JOBS.len() as u64) as usize], round)
                    })
                    .collect();
                let responses = exec.lock().submit_batch(now, &batch);
                assert!(responses.iter().all(Response::is_ok));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client threads finish cleanly");
    }

    let exec = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .into_inner();
    let total = clients * batches_per_client * batch_len;
    assert_eq!(exec.tracker().len(), total as usize);
    assert_eq!(exec.tracker().in_flight(), 0);
    // Memory stays in the paper's §5.5 envelope at ~1k tracked requests.
    assert!(exec.tracker().estimated_memory() < flstore_sim::bytes::ByteSize::from_mb(1));
}
