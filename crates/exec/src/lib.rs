//! # flstore-exec — the sharded concurrent executor
//!
//! The parallel serving plane behind the typed front door: a
//! [`ShardedExecutor`] implements [`Service`] by partitioning envelopes by
//! [`JobId`] hash across N worker threads and deterministically merging
//! the responses back into submission order. Submitting a batch through
//! the executor is **bit-for-bit equivalent** to submitting the same
//! envelopes sequentially to the systems it wraps — the property harness
//! in `flstore-core` (`tests/api_batch.rs`) holds that line — so every
//! figure, report, and ledger stays byte-identical while the wall-clock
//! cost of serving scales with cores.
//!
//! ## Ownership model (shard-per-core, route-by-key)
//!
//! Each worker thread *owns* its slice of serving state outright: whole
//! [`ShardUnit`] deployments (an [`FlStore`], a baseline) move onto the
//! worker at construction and never migrate. The hot path takes no shared
//! lock — a shard mutates only what it owns, and the merge is plain
//! message passing. The one intentionally shared component is the
//! cross-shard [`RequestTracker`] (the paper's §4.3 dictionary): workers
//! on every thread record dispatch/completion through its internal
//! `RwLock`, exactly the shared-front-end role the paper gives it.
//!
//! ## Work stealing (intra-job parallelism)
//!
//! Job-hash routing alone caps a *single hot tenant* at one core: every
//! envelope for that job lands on its owner shard while the other workers
//! idle. The executor therefore splits each serve into its two halves —
//! the owner-serialized bookkeeping (cache lookups, ledger, placement) and
//! the *pure* workload kernel — via
//! [`ShardUnit::submit_batch_deferred`]. The owner runs the bookkeeping in
//! submission order, then publishes the deferred kernels onto a per-flush
//! `StealPlane`: one deque per worker behind one consolidated
//! (lock-order-named) mutex each, never nested. Idle workers receive an
//! `Assist` command and steal kernels across shard boundaries; owners help
//! drain the plane before blocking on their own results. Kernels are pure
//! functions over `Arc`-captured values, so where or when they run cannot
//! change a byte of any response, ledger entry, or window cost — the
//! responses are merged back by submission index exactly as before.
//!
//! ## Determinism
//!
//! * Envelopes routed to the same job are executed in submission order on
//!   one shard; different jobs share no state, so any cross-shard
//!   interleaving yields the same per-unit results.
//! * Responses carry their submission index and are merged back in order.
//! * System-wide envelopes ([`Request::Stats`]) are barriers: every prior
//!   envelope completes on every shard first, then the aggregate is
//!   computed in job order — the same observation point a sequential
//!   submission would see.
//! * Costs aggregate by folding per-job values in sorted job order, so
//!   floating-point summation order matches the sequential
//!   [`MultiTenantStore`] exactly.
//!
//! ## Example
//!
//! ```
//! use flstore_core::api::{Request, Service};
//! use flstore_core::policy::TailoredPolicy;
//! use flstore_core::store::{FlStore, FlStoreConfig};
//! use flstore_exec::ShardedExecutor;
//! use flstore_fl::ids::JobId;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_sim::time::SimTime;
//!
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! let mut exec = ShardedExecutor::new(vec![store], 2);
//! let record = FlJobSim::new(cfg.clone()).next().expect("rounds");
//! let response = exec.submit(
//!     SimTime::ZERO,
//!     Request::Ingest { job: cfg.job, record: std::sync::Arc::new(record) },
//! );
//! assert!(response.is_ok());
//! // The executor hands the deployments back when the work is done.
//! let stores = exec.into_units();
//! assert_eq!(stores.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use flstore_baselines::agg::AggregatorBaseline;
use flstore_core::api::{ApiError, DeferredResponse, Request, Response, Service, StatsReport};
use flstore_core::quota::{pressure_plan, QuotaUsage};
use flstore_core::store::FlStore;
use flstore_core::tenancy::MultiTenantStore;
use flstore_core::tracker::RequestTracker;
use flstore_fl::ids::JobId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::time::SimTime;

/// A serving system the executor can own on one shard: it serves exactly
/// one job's traffic, so routing that job's envelopes to its shard routes
/// *all* state the envelope can touch.
///
/// Multi-job systems shard by decomposition instead:
/// [`MultiTenantStore::into_tenants`] splits the front end into its
/// isolated per-job deployments, each of which is a `ShardUnit`.
pub trait ShardUnit: Service + Send {
    /// The job whose traffic this unit serves.
    fn owned_job(&self) -> JobId;

    /// This unit's quota occupancy row (consumed by the cross-tenant
    /// pressure plane at Stats barriers). Units that do not account
    /// residency report zero occupancy and no budget.
    fn quota_usage(&self) -> QuotaUsage {
        QuotaUsage {
            job: self.owned_job(),
            resident: ByteSize::ZERO,
            quota: None,
        }
    }

    /// Sheds at least `need` bytes of this unit's own cache under
    /// cross-tenant pressure. Units without a reclaimable cache do
    /// nothing.
    fn reclaim(&mut self, need: ByteSize) {
        let _ = need;
    }

    /// Serves a batch with the pure workload kernels *deferred*: all
    /// owner-serialized bookkeeping (cache state, ledger, placement)
    /// commits in submission order before this returns, while each
    /// [`DeferredResponse::Pending`] slot carries a kernel any thread may
    /// finish later. Units without a separable kernel compute inline and
    /// return every slot [`DeferredResponse::Ready`] — the default is
    /// always correct, just never parallel.
    fn submit_batch_deferred(
        &mut self,
        now: SimTime,
        requests: &[Request],
    ) -> Vec<DeferredResponse> {
        self.submit_batch(now, requests)
            .into_iter()
            .map(DeferredResponse::Ready)
            .collect()
    }
}

impl ShardUnit for FlStore {
    fn owned_job(&self) -> JobId {
        self.catalog().job()
    }

    fn quota_usage(&self) -> QuotaUsage {
        FlStore::quota_usage(self)
    }

    fn reclaim(&mut self, need: ByteSize) {
        let _ = FlStore::reclaim(self, need);
    }

    fn submit_batch_deferred(
        &mut self,
        now: SimTime,
        requests: &[Request],
    ) -> Vec<DeferredResponse> {
        FlStore::submit_batch_deferred(self, now, requests)
    }
}

impl ShardUnit for AggregatorBaseline {
    fn owned_job(&self) -> JobId {
        self.catalog().job()
    }
}

/// Deterministic shard assignment: splitmix64 over the job id. The same
/// job always lands on the same shard for a given shard count, on every
/// run and every machine.
fn shard_of_job(job: JobId, shards: usize) -> usize {
    let mut x = u64::from(job.as_u32()).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// One deferred workload kernel published for any worker to finish. The
/// reply slot is the kernel's index *within its owning run*; the result
/// flows back to the owner, who merges it into submission order.
struct StealTask {
    slot: usize,
    work: DeferredResponse,
    reply: Sender<(usize, Response)>,
}

impl StealTask {
    /// Runs the kernel and sends the response home. A dead owner is fine:
    /// it can only mean the plane is tearing down after a panic.
    fn finish(self) {
        let _ = self.reply.send((self.slot, self.work.finish()));
    }
}

/// The per-flush work-stealing plane: one task deque per worker, each
/// behind one consolidated mutex (no split locks), plus the count of
/// workers still able to publish. Locks are never nested — a task is
/// popped under its queue's lock and *finished after the guard drops* —
/// and each mutex is named so the lock-order detector can identify it in
/// witness stacks.
struct StealPlane {
    queues: Vec<Mutex<VecDeque<StealTask>>>,
    /// Workers still executing a `Batch` segment (and thus still able to
    /// push tasks). Assist workers exit only once this hits zero *and*
    /// every queue is empty.
    producers: AtomicUsize,
}

impl StealPlane {
    fn new(workers: usize, producers: usize) -> Self {
        StealPlane {
            queues: (0..workers)
                .map(|_| Mutex::named(VecDeque::new(), "exec.steal.queue"))
                .collect(),
            producers: AtomicUsize::new(producers),
        }
    }

    /// Publishes one task onto `owner`'s deque.
    fn push(&self, owner: usize, task: StealTask) {
        self.queues[owner].lock().push_back(task);
    }

    /// Takes the next task: `self_id`'s own deque first (oldest first, so
    /// local work resolves in submission order), then steals round-robin
    /// from the other workers' deques.
    fn grab(&self, self_id: usize) -> Option<StealTask> {
        if let Some(task) = self.queues[self_id].lock().pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        for step in 1..n {
            let victim = (self_id + step) % n;
            if let Some(task) = self.queues[victim].lock().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// A producer finished its segment and will publish no more tasks.
    /// Release: every push this worker made happens-before any thread that
    /// observes the decrement (the Acquire load in [`StealPlane::idle`]),
    /// so a zero count proves no task can appear afterwards.
    fn retire(&self) {
        self.producers.fetch_sub(1, Ordering::Release);
    }

    /// True once no task exists and none can ever appear. The producer
    /// count must be checked *before* the queues: with zero producers
    /// (Acquire, pairing with the Release in [`StealPlane::retire`]) every
    /// push is already visible, so empty queues are conclusive. Checking
    /// in the opposite order could miss a task pushed between the two
    /// reads.
    fn idle(&self) -> bool {
        if self.producers.load(Ordering::Acquire) != 0 {
            return false;
        }
        self.queues.iter().all(|q| q.lock().is_empty())
    }
}

/// Work and control messages a shard worker understands.
enum Command<U> {
    /// Execute this shard's slice of one submission segment. `items` pairs
    /// each envelope with its submission index; the reply carries the same
    /// indices so the caller can merge responses into submission order.
    /// When a steal plane rides along, this worker defers its serve
    /// kernels onto it (and retires as a producer when done).
    Batch {
        now: SimTime,
        items: Vec<(usize, Request)>,
        plane: Option<Arc<StealPlane>>,
        reply: Sender<Vec<(usize, Response)>>,
    },
    /// Steal deferred kernels from busy workers until the plane drains,
    /// then reply with an (empty) merge chunk so the caller's accounting
    /// is uniform across commands.
    Assist {
        plane: Arc<StealPlane>,
        reply: Sender<Vec<(usize, Response)>>,
    },
    /// Report each owned unit's stats response (for barrier aggregation).
    Stats {
        now: SimTime,
        reply: Sender<Vec<(JobId, Response)>>,
    },
    /// Report each owned unit's quota occupancy (the pressure plane's
    /// input at a Stats barrier).
    QuotaUsage {
        reply: Sender<Vec<(JobId, QuotaUsage)>>,
    },
    /// Shed the planned bytes from each named owned unit (the pressure
    /// plane's reclamation step), in plan order.
    Reclaim {
        needs: Vec<(JobId, ByteSize)>,
        reply: Sender<()>,
    },
    /// Report each owned unit's window cost.
    WindowCost {
        now: SimTime,
        reply: Sender<Vec<(JobId, CostBreakdown)>>,
    },
    /// Report each owned unit's always-on infrastructure cost.
    InfraCost {
        now: SimTime,
        reply: Sender<Vec<(JobId, Cost)>>,
    },
    /// Rendezvous: dispatch a marker into the shared tracker, meet every
    /// other worker on the barrier, then complete and forget the marker.
    /// Because no worker passes the barrier until all have dispatched,
    /// every tracker write provably overlaps writes from the other
    /// threads — a deterministic concurrency exerciser.
    Rendezvous {
        barrier: Arc<Barrier>,
        reply: Sender<()>,
    },
    /// Hand every owned unit back to the caller.
    IntoUnits { reply: Sender<Vec<(JobId, U)>> },
}

/// One worker thread's owned state.
struct Shard<U> {
    id: usize,
    units: Vec<(JobId, U)>,
    index: HashMap<JobId, usize>,
    tracker: Arc<RequestTracker>,
}

impl<U: ShardUnit> Shard<U> {
    fn run(mut self, rx: Receiver<Command<U>>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Command::Batch {
                    now,
                    items,
                    plane,
                    reply,
                } => {
                    let out = self.execute(now, items, plane.as_deref());
                    if let Some(plane) = &plane {
                        plane.retire();
                    }
                    let _ = reply.send(out);
                }
                Command::Assist { plane, reply } => {
                    loop {
                        if let Some(task) = plane.grab(self.id) {
                            task.finish();
                            continue;
                        }
                        if plane.idle() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    let _ = reply.send(Vec::new());
                }
                Command::Stats { now, reply } => {
                    let out = self
                        .units
                        .iter_mut()
                        .map(|(job, unit)| (*job, unit.submit(now, Request::Stats)))
                        .collect();
                    let _ = reply.send(out);
                }
                Command::QuotaUsage { reply } => {
                    let out = self
                        .units
                        .iter()
                        .map(|(job, unit)| (*job, unit.quota_usage()))
                        .collect();
                    let _ = reply.send(out);
                }
                Command::Reclaim { needs, reply } => {
                    for (job, need) in needs {
                        if let Some(&ix) = self.index.get(&job) {
                            self.units[ix].1.reclaim(need);
                        }
                    }
                    let _ = reply.send(());
                }
                Command::WindowCost { now, reply } => {
                    let out = self
                        .units
                        .iter_mut()
                        .map(|(job, unit)| (*job, unit.window_cost(now)))
                        .collect();
                    let _ = reply.send(out);
                }
                Command::InfraCost { now, reply } => {
                    let out = self
                        .units
                        .iter_mut()
                        .map(|(job, unit)| (*job, unit.infra_cost(now)))
                        .collect();
                    let _ = reply.send(out);
                }
                Command::Rendezvous { barrier, reply } => {
                    let marker =
                        flstore_workloads::request::RequestId::new(u64::MAX - self.id as u64);
                    let lane = flstore_serverless::function::FunctionId::from_raw(self.id as u64);
                    self.tracker.dispatch(marker, vec![lane]);
                    barrier.wait();
                    self.tracker.complete(marker);
                    self.tracker.forget(marker);
                    let _ = reply.send(());
                }
                Command::IntoUnits { reply } => {
                    let _ = reply.send(std::mem::take(&mut self.units));
                }
            }
        }
    }

    /// Executes this shard's slice in submission order, grouping runs of
    /// consecutive same-job envelopes into one `submit_batch` call so the
    /// unit amortizes its fixed per-request work across the run. Serve
    /// envelopes are recorded in the shared request tracker around
    /// execution (dispatched to this worker's lane, completed on return).
    fn execute(
        &mut self,
        now: SimTime,
        items: Vec<(usize, Request)>,
        plane: Option<&StealPlane>,
    ) -> Vec<(usize, Response)> {
        let mut out = Vec::with_capacity(items.len());
        let mut slots: Vec<usize> = Vec::new();
        let mut run: Vec<Request> = Vec::new();
        let mut current: Option<JobId> = None;
        // Consume the owned envelopes into same-job runs — the shard never
        // clones a request it already owns.
        for (slot, request) in items {
            let job = request
                .job()
                .expect("the executor routes only job-addressed envelopes to shards");
            if current != Some(job) {
                if let Some(prev) = current {
                    self.flush_run(now, prev, &mut slots, &mut run, &mut out, plane);
                }
                current = Some(job);
            }
            slots.push(slot);
            run.push(request);
        }
        if let Some(job) = current {
            self.flush_run(now, job, &mut slots, &mut run, &mut out, plane);
        }
        out
    }

    /// Serves one same-job run through the owning unit, draining
    /// `slots`/`run` into `out`. With a steal plane the unit's bookkeeping
    /// runs deferred ([`ShardUnit::submit_batch_deferred`]) and the pure
    /// kernels fan out across workers; without one the run executes
    /// inline. Both paths yield bit-identical responses — kernels are
    /// pure, and results merge back by index within the run.
    fn flush_run(
        &mut self,
        now: SimTime,
        job: JobId,
        slots: &mut Vec<usize>,
        run: &mut Vec<Request>,
        out: &mut Vec<(usize, Response)>,
        plane: Option<&StealPlane>,
    ) {
        let lane = flstore_serverless::function::FunctionId::from_raw(self.id as u64);
        let unit_ix = *self
            .index
            .get(&job)
            .expect("routed job is owned by this shard");
        for request in run.iter() {
            if let Request::Serve(w) = request {
                self.tracker.dispatch(w.id, vec![lane]);
            }
        }
        let responses = match plane {
            None => self.units[unit_ix].1.submit_batch(now, run),
            Some(plane) => {
                let deferred = self.units[unit_ix].1.submit_batch_deferred(now, run);
                debug_assert_eq!(deferred.len(), run.len());
                let mut resolved: Vec<Option<Response>> = Vec::new();
                resolved.resize_with(deferred.len(), || None);
                let (tx, rx) = mpsc::channel();
                let mut outstanding = 0usize;
                for (i, response) in deferred.into_iter().enumerate() {
                    match response {
                        DeferredResponse::Ready(response) => resolved[i] = Some(response),
                        pending => {
                            outstanding += 1;
                            plane.push(
                                self.id,
                                StealTask {
                                    slot: i,
                                    work: pending,
                                    reply: tx.clone(),
                                },
                            );
                        }
                    }
                }
                // Drop the publishing handle so only in-flight tasks keep
                // the channel open: a thief dying mid-kernel closes it and
                // the recv below reports the loss instead of hanging.
                drop(tx);
                // Help first — own deque in submission order, then steal
                // from the other workers — and only then block for results
                // still computing on thieves.
                while let Some(task) = plane.grab(self.id) {
                    task.finish();
                }
                for _ in 0..outstanding {
                    let (i, response) = rx.recv().expect("a shard worker died mid-serve");
                    resolved[i] = Some(response);
                }
                resolved
                    .into_iter()
                    .map(|r| r.expect("every deferred slot resolves"))
                    .collect()
            }
        };
        debug_assert_eq!(responses.len(), run.len());
        for ((slot, request), response) in slots.drain(..).zip(run.drain(..)).zip(responses) {
            if let Request::Serve(w) = &request {
                self.tracker.complete(w.id);
            }
            out.push((slot, response));
        }
    }
}

/// A handle to one worker thread.
struct Worker<U> {
    sender: Option<Sender<Command<U>>>,
    handle: Option<JoinHandle<()>>,
}

/// The sharded concurrent executor: N worker threads, each owning a
/// disjoint set of per-job serving units, behind one [`Service`] facade.
///
/// See the crate docs for the ownership and determinism model. Construct
/// with [`ShardedExecutor::new`] (explicit units) or
/// [`ShardedExecutor::from_tenants`] (split a multi-tenant front end).
pub struct ShardedExecutor<U: ShardUnit + 'static> {
    workers: Vec<Worker<U>>,
    route: HashMap<JobId, usize>,
    /// All owned jobs, sorted — the deterministic aggregation order.
    jobs: Vec<JobId>,
    label: String,
    tenants: usize,
    /// Whether this plane presents as a multi-tenant front end (label and
    /// aggregated Stats), even with one tenant — true for
    /// [`ShardedExecutor::from_tenants`], so wrapping a 1-tenant front is
    /// still bit-for-bit identical to it.
    tenancy: bool,
    /// Aggregate residency budget carried over from the wrapped
    /// [`MultiTenantStore`]: the cross-tenant pressure pass runs at Stats
    /// barriers, exactly where the sequential front end runs it.
    global_budget: Option<ByteSize>,
    tracker: Arc<RequestTracker>,
}

impl ShardedExecutor<FlStore> {
    /// Splits a multi-tenant front end into its isolated per-job
    /// deployments and distributes them across `shards` workers. The
    /// executor then serves exactly what the front end served —
    /// bit-for-bit, label and aggregated Stats included (even with a
    /// single tenant) — while tenants on different shards serve in
    /// parallel.
    ///
    /// # Panics
    ///
    /// Panics if the front end has no registered tenants or `shards` is
    /// zero.
    pub fn from_tenants(front: MultiTenantStore, shards: usize) -> Self {
        let global_budget = front.global_budget();
        let units: Vec<FlStore> = front
            .into_tenants()
            .into_iter()
            .map(|(_, store)| store)
            .collect();
        let mut exec = ShardedExecutor::new(units, shards);
        exec.tenancy = true;
        exec.global_budget = global_budget;
        exec.label = format!("FLStore-MT({})", exec.tenants);
        exec
    }
}

impl<U: ShardUnit + 'static> ShardedExecutor<U> {
    /// Spawns `shards` worker threads and distributes `units` across them
    /// by job-id hash. A single unit reports itself verbatim (label,
    /// stats, costs); multiple units report as the multi-tenant front end
    /// they decompose ([`MultiTenantStore`]'s label and aggregates), so
    /// either wrapping is indistinguishable from its sequential original.
    /// (A front end split via [`ShardedExecutor::from_tenants`] keeps the
    /// multi-tenant identity even with one tenant.)
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty, `shards` is zero, or two units own the
    /// same job.
    pub fn new(mut units: Vec<U>, shards: usize) -> Self {
        assert!(!units.is_empty(), "an executor needs at least one unit");
        assert!(shards >= 1, "an executor needs at least one shard");
        units.sort_by_key(|u| u.owned_job());
        let jobs: Vec<JobId> = units.iter().map(|u| u.owned_job()).collect();
        for pair in jobs.windows(2) {
            assert!(
                pair[0] != pair[1],
                "two units own {}: routing would be ambiguous",
                pair[0]
            );
        }
        let label = if units.len() == 1 {
            units[0].label()
        } else {
            format!("FLStore-MT({})", units.len())
        };
        let tenants = units.len();
        let tracker = Arc::new(RequestTracker::new());

        let mut per_shard: Vec<Vec<(JobId, U)>> = (0..shards).map(|_| Vec::new()).collect();
        let mut route = HashMap::with_capacity(units.len());
        for unit in units {
            let job = unit.owned_job();
            let shard = shard_of_job(job, shards);
            route.insert(job, shard);
            per_shard[shard].push((job, unit));
        }

        let workers = per_shard
            .into_iter()
            .enumerate()
            .map(|(id, units)| {
                let index = units
                    .iter()
                    .enumerate()
                    .map(|(i, (job, _))| (*job, i))
                    .collect();
                let shard = Shard {
                    id,
                    units,
                    index,
                    tracker: Arc::clone(&tracker),
                };
                let (tx, rx) = mpsc::channel();
                let handle = std::thread::Builder::new()
                    .name(format!("flstore-shard-{id}"))
                    .spawn(move || shard.run(rx))
                    .expect("worker threads spawn");
                Worker {
                    sender: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();

        ShardedExecutor {
            workers,
            route,
            jobs,
            label,
            tenants,
            tenancy: tenants > 1,
            global_budget: None,
            tracker,
        }
    }

    /// Number of worker shards (including idle ones owning no unit).
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of serving units (tenants) distributed across the shards.
    pub fn unit_count(&self) -> usize {
        self.tenants
    }

    /// The shard a job's envelopes route to, or `None` for foreign jobs.
    pub fn shard_of(&self, job: JobId) -> Option<usize> {
        self.route.get(&job).copied()
    }

    /// Every job this plane serves, sorted.
    pub fn jobs(&self) -> &[JobId] {
        &self.jobs
    }

    /// The cross-shard request tracker (the paper's §4.3 dictionary):
    /// every worker thread records serve dispatch/completion here through
    /// the tracker's internal `RwLock`.
    pub fn tracker(&self) -> &RequestTracker {
        &self.tracker
    }

    /// Proves all worker threads are alive *concurrently*: every worker
    /// dispatches a marker into the shared tracker, meets the others on a
    /// barrier (so all dispatches happen before any completion), then
    /// completes and forgets its marker. Returns the number of workers
    /// that made the rendezvous (always the shard count).
    ///
    /// Takes `&mut self` (like submission) so two rendezvous cannot race:
    /// overlapping barrier broadcasts could interleave differently on
    /// different workers' queues and deadlock the plane.
    pub fn rendezvous(&mut self) -> usize {
        let barrier = Arc::new(Barrier::new(self.workers.len()));
        let (tx, rx) = mpsc::channel();
        for worker in &self.workers {
            let sender = worker.sender.as_ref().expect("workers live until drop");
            sender
                .send(Command::Rendezvous {
                    barrier: Arc::clone(&barrier),
                    reply: tx.clone(),
                })
                .expect("worker accepts commands");
        }
        drop(tx);
        rx.iter().count()
    }

    /// Shuts the plane down and hands every serving unit back, in job
    /// order — so wrapped deployments can be inspected (or re-wrapped)
    /// after a drive.
    pub fn into_units(self) -> Vec<U> {
        let (tx, rx) = mpsc::channel();
        for worker in &self.workers {
            let sender = worker.sender.as_ref().expect("workers live until drop");
            sender
                .send(Command::IntoUnits { reply: tx.clone() })
                .expect("worker accepts commands");
        }
        drop(tx);
        let mut units: Vec<(JobId, U)> = rx.iter().flatten().collect();
        units.sort_by_key(|(job, _)| *job);
        units.into_iter().map(|(_, unit)| unit).collect()
        // `self` drops here: channels close, workers exit, threads join.
    }

    /// Sends `make(reply)` to every worker and collects the per-job
    /// replies of all shards, sorted by job.
    fn gather<T>(&self, make: impl Fn(Sender<Vec<(JobId, T)>>) -> Command<U>) -> Vec<(JobId, T)>
    where
        T: Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        for worker in &self.workers {
            let sender = worker.sender.as_ref().expect("workers live until drop");
            sender
                .send(make(tx.clone()))
                .expect("worker accepts commands");
        }
        drop(tx);
        let mut rows: Vec<(JobId, T)> = rx.iter().flatten().collect();
        assert_eq!(
            rows.len(),
            self.tenants,
            "a shard worker died before reporting"
        );
        rows.sort_by_key(|(job, _)| *job);
        rows
    }

    /// Fans the accumulated per-shard queues out to the workers and merges
    /// the responses back into `responses` by submission index. With more
    /// than one worker, a [`StealPlane`] rides along: busy workers defer
    /// their serve kernels onto it and idle workers are sent to assist, so
    /// even a single hot job's serves spread across every core.
    fn flush(
        &self,
        now: SimTime,
        pending: &mut [Vec<(usize, Request)>],
        responses: &mut [Option<Response>],
    ) {
        let busy: Vec<bool> = pending.iter().map(|items| !items.is_empty()).collect();
        let producers = busy.iter().filter(|&&b| b).count();
        if producers == 0 {
            return;
        }
        // A single-worker plane has nobody to steal from or assist: skip
        // the deferral machinery and execute inline.
        let plane = (self.workers.len() > 1)
            .then(|| Arc::new(StealPlane::new(self.workers.len(), producers)));
        let (tx, rx) = mpsc::channel();
        let mut expected = 0;
        for (shard, items) in pending.iter_mut().enumerate() {
            let sender = self.workers[shard]
                .sender
                .as_ref()
                .expect("workers live until drop");
            if busy[shard] {
                expected += items.len();
                sender
                    .send(Command::Batch {
                        now,
                        items: std::mem::take(items),
                        plane: plane.clone(),
                        reply: tx.clone(),
                    })
                    .expect("worker accepts commands");
            } else if let Some(plane) = &plane {
                sender
                    .send(Command::Assist {
                        plane: Arc::clone(plane),
                        reply: tx.clone(),
                    })
                    .expect("worker accepts commands");
            }
        }
        drop(tx);
        let mut merged = 0;
        for chunk in rx.iter() {
            for (slot, response) in chunk {
                responses[slot] = Some(response);
                merged += 1;
            }
        }
        assert_eq!(merged, expected, "a shard worker died mid-batch");
    }

    /// One cross-tenant pressure pass at a Stats barrier: gathers every
    /// unit's occupancy, computes the same deterministic
    /// [`pressure_plan`] the sequential front end computes, and tells the
    /// shard owning each over-budget tenant to shed its victims. Quotas
    /// themselves are enforced *inside* each worker-owned shard (a strict
    /// unit bounds itself); only this global fold needs the barrier.
    fn pressure_pass(&self) {
        let Some(global) = self.global_budget else {
            return;
        };
        let usages: Vec<QuotaUsage> = self
            .gather(|reply| Command::QuotaUsage { reply })
            .into_iter()
            .map(|(_, usage)| usage)
            .collect();
        let plan = pressure_plan(&usages, global);
        if plan.is_empty() {
            return;
        }
        let mut per_shard: Vec<Vec<(JobId, ByteSize)>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for (job, need) in plan {
            let shard = *self.route.get(&job).expect("planned jobs are owned");
            per_shard[shard].push((job, need));
        }
        let (tx, rx) = mpsc::channel();
        let mut expected = 0;
        for (shard, needs) in per_shard.into_iter().enumerate() {
            if needs.is_empty() {
                continue;
            }
            expected += 1;
            let sender = self.workers[shard]
                .sender
                .as_ref()
                .expect("workers live until drop");
            sender
                .send(Command::Reclaim {
                    needs,
                    reply: tx.clone(),
                })
                .expect("worker accepts commands");
        }
        drop(tx);
        assert_eq!(
            rx.iter().count(),
            expected,
            "a shard worker died mid-reclaim"
        );
    }

    /// The barrier aggregate answering [`Request::Stats`]: the pressure
    /// pass runs first (the same trigger point the sequential front end
    /// uses), then per-unit stats are summed in job order, labelled as the
    /// (multi-tenant) plane. A single-unit executor forwards the unit's
    /// own report verbatim.
    fn stats_response(&self, now: SimTime) -> Response {
        self.pressure_pass();
        let mut per_unit = self.gather(|reply| Command::Stats { now, reply });
        if !self.tenancy {
            return per_unit.remove(0).1;
        }
        let mut report = StatsReport {
            label: self.label.clone(),
            tenants: self.tenants,
            served: 0,
            cache_hits: 0,
            cache_misses: 0,
            hit_rate: 1.0,
            faults: 0,
            spilled_objects: 0,
            spilled_bytes: ByteSize::ZERO,
            spill_faults: 0,
            quota: Vec::new(),
        };
        for (_, response) in per_unit {
            let Response::Stats(stats) = response else {
                unreachable!("units answer Stats envelopes with stats");
            };
            report.served += stats.served;
            report.cache_hits += stats.cache_hits;
            report.cache_misses += stats.cache_misses;
            report.faults += stats.faults;
            report.spilled_objects += stats.spilled_objects;
            report.spilled_bytes += stats.spilled_bytes;
            report.spill_faults += stats.spill_faults;
            report.quota.extend(stats.quota);
        }
        let touched = report.cache_hits + report.cache_misses;
        if touched > 0 {
            report.hit_rate = report.cache_hits as f64 / touched as f64;
        }
        Response::Stats(report)
    }
}

impl<U: ShardUnit + 'static> Service for ShardedExecutor<U> {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn submit(&mut self, now: SimTime, request: Request) -> Response {
        self.submit_batch(now, std::slice::from_ref(&request))
            .pop()
            .expect("one envelope yields one response")
    }

    /// Partitions the batch across shards by job hash and merges responses
    /// back into submission order. Admission runs here: envelopes naming a
    /// job no shard owns are rejected without dispatch (and without side
    /// effects). System-wide envelopes ([`Request::Stats`]) act as
    /// barriers — all earlier envelopes complete first, exactly the
    /// observation point sequential submission would give them.
    fn submit_batch(&mut self, now: SimTime, requests: &[Request]) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut pending: Vec<Vec<(usize, Request)>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for (slot, request) in requests.iter().enumerate() {
            match request.job() {
                Some(job) => match self.route.get(&job) {
                    Some(&shard) => pending[shard].push((slot, request.clone())),
                    None => {
                        responses[slot] = Some(Response::Rejected(ApiError::UnknownJob { job }));
                    }
                },
                None => {
                    self.flush(now, &mut pending, &mut responses);
                    responses[slot] = Some(self.stats_response(now));
                }
            }
        }
        self.flush(now, &mut pending, &mut responses);
        responses
            .into_iter()
            .map(|r| r.expect("every envelope slot is filled"))
            .collect()
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.gather(|reply| Command::WindowCost { now, reply })
            .into_iter()
            .fold(CostBreakdown::ZERO, |acc, (_, cost)| acc + cost)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        self.gather(|reply| Command::InfraCost { now, reply })
            .into_iter()
            .fold(Cost::ZERO, |acc, (_, cost)| acc + cost)
    }
}

impl<U: ShardUnit + 'static> Drop for ShardedExecutor<U> {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.sender.take(); // close the channel: the worker loop exits
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<U: ShardUnit + 'static> std::fmt::Debug for ShardedExecutor<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("label", &self.label)
            .field("shards", &self.workers.len())
            .field("units", &self.tenants)
            .finish()
    }
}

// The executor itself crosses thread boundaries (e.g. a test harness
// driving it from a spawned thread); its channels and Arcs make that safe
// by construction — keep it a compile-time fact.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardedExecutor<FlStore>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_core::policy::TailoredPolicy;
    use flstore_core::store::FlStoreConfig;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_fl::zoo::ModelArch;
    use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
    use flstore_sim::time::SimDuration;
    use flstore_workloads::request::{RequestId, WorkloadRequest};
    use flstore_workloads::taxonomy::WorkloadKind;

    fn quiet_config(model: &ModelArch) -> FlStoreConfig {
        FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            ..FlStoreConfig::for_model(model)
        }
    }

    fn loaded_front(jobs: &[u32]) -> (MultiTenantStore, flstore_fl::ids::Round) {
        let mut front = MultiTenantStore::new(quiet_config(&ModelArch::RESNET18));
        let mut last = flstore_fl::ids::Round::ZERO;
        for &j in jobs {
            let cfg = FlJobConfig {
                rounds: 3,
                ..FlJobConfig::quick_test(JobId::new(j))
            };
            front.register_job(cfg.job, cfg.model);
            let mut now = SimTime::ZERO;
            for record in FlJobSim::new(cfg.clone()) {
                last = record.round;
                front
                    .ingest_round(now, cfg.job, &record)
                    .expect("registered");
                now += SimDuration::from_secs(60);
            }
        }
        (front, last)
    }

    fn serve(id: u64, job: u32, round: flstore_fl::ids::Round) -> Request {
        Request::Serve(WorkloadRequest::new(
            RequestId::new(id),
            WorkloadKind::MaliciousFiltering,
            JobId::new(job),
            round,
            None,
        ))
    }

    #[test]
    fn routes_merge_back_into_submission_order() {
        let jobs = [1u32, 2, 3, 4];
        let (front, round) = loaded_front(&jobs);
        let (sequential, _) = loaded_front(&jobs);
        let mut sequential = sequential;
        let mut exec = ShardedExecutor::from_tenants(front, 4);
        let now = SimTime::from_secs(3600);
        let batch: Vec<Request> = (0..16)
            .map(|i| serve(i as u64 + 1, jobs[i % jobs.len()], round))
            .collect();
        let parallel = exec.submit_batch(now, &batch);
        let expected: Vec<Response> = batch
            .iter()
            .map(|r| sequential.submit(now, r.clone()))
            .collect();
        assert_eq!(parallel, expected);
        assert_eq!(
            Service::window_cost(&mut exec, now),
            Service::window_cost(&mut sequential, now)
        );
    }

    #[test]
    fn foreign_jobs_are_rejected_without_dispatch() {
        let (front, round) = loaded_front(&[1, 2]);
        let mut exec = ShardedExecutor::from_tenants(front, 2);
        let response = exec.submit(SimTime::from_secs(3600), serve(1, 9, round));
        assert_eq!(
            response.error(),
            Some(&ApiError::UnknownJob { job: JobId::new(9) })
        );
        assert!(exec.tracker().is_empty(), "rejections are never dispatched");
    }

    #[test]
    fn stats_envelope_is_a_barrier_and_aggregates() {
        let (front, round) = loaded_front(&[1, 2]);
        let mut exec = ShardedExecutor::from_tenants(front, 2);
        let now = SimTime::from_secs(3600);
        let batch = vec![serve(1, 1, round), serve(2, 2, round), Request::Stats];
        let responses = exec.submit_batch(now, &batch);
        let Response::Stats(stats) = &responses[2] else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.tenants, 2);
        assert_eq!(stats.served, 2, "the barrier saw both earlier serves");
        assert_eq!(stats.label, "FLStore-MT(2)");
        assert_eq!(exec.label(), "FLStore-MT(2)");
    }

    #[test]
    fn single_unit_forwards_identity() {
        let cfg = FlJobConfig {
            rounds: 2,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut store = FlStore::new(
            quiet_config(&cfg.model),
            Box::new(TailoredPolicy::new()),
            cfg.job,
            cfg.model,
        );
        let mut now = SimTime::ZERO;
        for record in FlJobSim::new(cfg.clone()) {
            store.ingest_round(now, &record);
            now += SimDuration::from_secs(60);
        }
        let expected_label = Service::label(&store);
        let mut exec = ShardedExecutor::new(vec![store], 4);
        assert_eq!(exec.label(), expected_label);
        let Response::Stats(stats) = exec.submit(now, Request::Stats) else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.tenants, 1);
        assert_eq!(stats.label, expected_label);
    }

    #[test]
    fn one_tenant_front_keeps_its_multi_tenant_identity() {
        // A MultiTenantStore with a single registered job answers as
        // "FLStore-MT(1)"; wrapping it must not leak the lone tenant's
        // own label/stats shape instead.
        let (front, round) = loaded_front(&[1]);
        let (mut sequential, _) = loaded_front(&[1]);
        let mut exec = ShardedExecutor::from_tenants(front, 2);
        assert_eq!(exec.label(), Service::label(&sequential));
        let now = SimTime::from_secs(3600);
        let batch = vec![serve(1, 1, round), Request::Stats];
        let parallel = exec.submit_batch(now, &batch);
        let expected: Vec<Response> = batch
            .iter()
            .map(|r| sequential.submit(now, r.clone()))
            .collect();
        assert_eq!(parallel, expected);
    }

    #[test]
    fn into_units_returns_everything_in_job_order() {
        let (front, _) = loaded_front(&[3, 1, 2]);
        let exec = ShardedExecutor::from_tenants(front, 2);
        assert_eq!(exec.unit_count(), 3);
        let units = exec.into_units();
        let jobs: Vec<u32> = units.iter().map(|u| u.owned_job().as_u32()).collect();
        assert_eq!(jobs, vec![1, 2, 3]);
    }

    #[test]
    fn rendezvous_meets_every_worker() {
        let (front, _) = loaded_front(&[1]);
        let mut exec = ShardedExecutor::from_tenants(front, 3);
        assert_eq!(exec.rendezvous(), 3);
        assert!(exec.tracker().is_empty(), "markers are forgotten");
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_executor_is_rejected() {
        let _ = ShardedExecutor::<FlStore>::new(Vec::new(), 2);
    }

    #[test]
    fn hot_tenant_serves_match_sequential_under_stealing() {
        // One job, many workers: every serve lands on the owner shard and
        // its kernels are stolen by the three idle assists. The responses
        // (and the window cost fold) must match sequential submission
        // bit-for-bit.
        let (front, round) = loaded_front(&[1]);
        let (mut sequential, _) = loaded_front(&[1]);
        let mut exec = ShardedExecutor::from_tenants(front, 4);
        let now = SimTime::from_secs(3600);
        let batch: Vec<Request> = (0..32).map(|i| serve(i + 1, 1, round)).collect();
        let parallel = exec.submit_batch(now, &batch);
        let expected: Vec<Response> = batch
            .iter()
            .map(|r| sequential.submit(now, r.clone()))
            .collect();
        assert_eq!(parallel, expected);
        assert_eq!(
            Service::window_cost(&mut exec, now),
            Service::window_cost(&mut sequential, now)
        );
    }

    #[test]
    fn stealing_keeps_tracker_attribution_on_the_owner_lane() {
        // Kernels may finish on any worker, but dispatch/completion are
        // recorded by the owner: every serve's tracker entry must name
        // exactly the owner shard's lane.
        let (front, round) = loaded_front(&[1]);
        let mut exec = ShardedExecutor::from_tenants(front, 4);
        let owner = exec.shard_of(JobId::new(1)).expect("job 1 is owned");
        let lane = flstore_serverless::function::FunctionId::from_raw(owner as u64);
        let now = SimTime::from_secs(3600);
        let batch: Vec<Request> = (0..16).map(|i| serve(i + 1, 1, round)).collect();
        let responses = exec.submit_batch(now, &batch);
        assert!(responses.iter().all(|r| r.error().is_none()));
        for i in 0..16u64 {
            let id = RequestId::new(i + 1);
            let entry = exec.tracker().entry(id).expect("serve was dispatched");
            assert_eq!(entry.functions, vec![lane], "request {id:?}");
            assert!(entry.done, "request {id:?} completed");
        }
    }

    #[test]
    fn routing_is_stable() {
        for shards in [1usize, 2, 4, 8] {
            for job in 1..64u32 {
                let a = shard_of_job(JobId::new(job), shards);
                let b = shard_of_job(JobId::new(job), shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }
}
