//! The cold tier end to end: under quota pressure victims spill to disk
//! instead of being dropped, later serves fault them back transparently
//! (counted in stats), and recovery reproduces the exact same spill
//! behaviour by replay.

use flstore_core::api::{Request, Response, Service};
use flstore_core::durable::DurabilityConfig;
use flstore_core::policy::TailoredPolicy;
use flstore_core::quota::TenantQuota;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_durability::recover::{attach, recover};
use flstore_durability::spill::DiskSpill;
use flstore_durability::testkit::DetTempDir;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

const JOB: u32 = 1;

fn job_config() -> FlJobConfig {
    FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(JobId::new(JOB))
    }
}

/// A strict quota tight enough (half a round) that every ingest sheds
/// earlier keys as pressure victims.
fn spill_config(job: &FlJobConfig, spill: bool) -> FlStoreConfig {
    FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        quota: Some(TenantQuota::strict(ByteSize::from_bytes(
            job.round_metadata_bytes().as_bytes() / 2,
        ))),
        durability: DurabilityConfig {
            flush_every: 1,
            spill,
            ..DurabilityConfig::DISABLED
        },
        ..FlStoreConfig::for_model(&job.model)
    }
}

fn fresh_store(cfg: &FlStoreConfig, job: &FlJobConfig) -> FlStore {
    FlStore::new(
        cfg.clone(),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    )
}

fn ingest_all(store: &mut FlStore, records: &[RoundRecord]) -> SimTime {
    let mut now = SimTime::ZERO;
    for r in records {
        store.ingest_round(now, r);
        now += SimDuration::from_secs(60);
    }
    now
}

fn early_round_request(id: u64, records: &[RoundRecord]) -> WorkloadRequest {
    WorkloadRequest::new(
        RequestId::new(id),
        WorkloadKind::Inference,
        JobId::new(JOB),
        records[0].round,
        None,
    )
}

#[test]
fn pressure_victims_spill_and_fault_back() {
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = spill_config(&job, true);

    let dir = DetTempDir::new("spill-e2e", 1);
    let mut store = fresh_store(&cfg, &job);
    attach(&mut store, dir.path()).unwrap();
    let now = ingest_all(&mut store, &records);

    let (spilled, spilled_bytes) = store.spill_stats();
    assert!(spilled > 0, "tight quota must shed spill victims");
    assert!(spilled_bytes.as_bytes() > 0);
    assert_eq!(store.spill_faults(), 0);

    // The first round was shed long ago; serving it faults from disk,
    // not from the persistent store.
    let served = store.serve(now, &early_round_request(1, &records)).unwrap();
    assert!(
        store.spill_faults() > 0,
        "serve must fault from the cold tier"
    );
    assert!(served.outcome.result_bytes.as_bytes() > 0);

    // The cold tier is visible in the stats envelope.
    match store.submit(now, Request::Stats) {
        Response::Stats(report) => {
            assert_eq!(report.spill_faults, store.spill_faults());
            assert_eq!(
                (report.spilled_objects, report.spilled_bytes),
                store.spill_stats()
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn spill_disabled_is_behavior_identical_to_no_backend() {
    // `spill: false` with no backend — the pre-durability store — and
    // `spill: false` with a backend installed must behave identically:
    // the flag gates the tier, not the backend's presence.
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = spill_config(&job, false);

    let mut plain = fresh_store(&cfg, &job);
    let now = ingest_all(&mut plain, &records);

    let dir = DetTempDir::new("spill-disabled", 2);
    let mut backed = fresh_store(&cfg, &job);
    backed.set_spill_backend(Box::new(DiskSpill::create(dir.path()).unwrap()));
    ingest_all(&mut backed, &records);

    assert_eq!(backed.spill_stats(), (0, Default::default()));
    assert_eq!(plain.durability_digest(), backed.durability_digest());
    let req = early_round_request(1, &records);
    assert_eq!(
        format!("{:?}", plain.serve(now, &req)),
        format!("{:?}", backed.serve(now, &req)),
    );
}

#[test]
fn recovery_reproduces_spill_state() {
    // Replay regenerates the cold tier deterministically: the recovered
    // store's spill counters and serve behaviour match an uninterrupted
    // spill-enabled run (the spill dir is wiped and rebuilt, not trusted).
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = spill_config(&job, true);

    let dir = DetTempDir::new("spill-recover", 3);
    let mut attached = fresh_store(&cfg, &job);
    attach(&mut attached, dir.path()).unwrap();
    let now = ingest_all(&mut attached, &records);
    let _ = attached.serve(now, &early_round_request(1, &records));
    drop(attached); // crash

    let ref_dir = DetTempDir::new("spill-recover-ref", 4);
    let mut reference = fresh_store(&cfg, &job);
    reference.set_spill_backend(Box::new(DiskSpill::create(ref_dir.path()).unwrap()));
    let ref_now = ingest_all(&mut reference, &records);
    let _ = reference.serve(ref_now, &early_round_request(1, &records));

    let mut recovered = recover(dir.path()).unwrap();
    assert_eq!(recovered.durability_digest(), reference.durability_digest());
    assert_eq!(recovered.spill_stats(), reference.spill_stats());
    assert_eq!(recovered.spill_faults(), reference.spill_faults());

    // And the cold tier still works going forward.
    let probe = early_round_request(2, &records);
    assert_eq!(
        format!("{:?}", recovered.serve(now, &probe)),
        format!("{:?}", reference.serve(ref_now, &probe)),
    );
    drop(recovered.take_record_sink());
}
