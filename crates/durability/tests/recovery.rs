//! The durability plane's central property: recovery is deterministic
//! and total. For any envelope mix and any crash point — including a
//! crash at *every* record boundary and mid-record — `recover(dir)`
//! rebuilds a store bit-identical to one that executed exactly the
//! durable prefix: same cache fingerprint, same cost ledger, same quota
//! rows, same responses to subsequent requests.

use proptest::prelude::*;

use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_durability::records::{parse_ledger, LedgerRecord};
use flstore_durability::recover::{attach, recover, DurabilityError};
use flstore_durability::testkit::{attach_kill_point, DetTempDir};
use flstore_durability::ACTIVE_LEDGER;
use flstore_fl::ids::{JobId, Round};
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_fl::metadata::MetaKey;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

use flstore_core::durable::DurabilityConfig;

const JOB: u32 = 1;

fn job_config() -> FlJobConfig {
    FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(JobId::new(JOB))
    }
}

fn store_config(job: &FlJobConfig, limited: bool, durability: DurabilityConfig) -> FlStoreConfig {
    FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        capacity_per_ring: limited.then(|| job.round_metadata_bytes() + ByteSize::from_mb(50)),
        durability,
        ..FlStoreConfig::for_model(&job.model)
    }
}

fn fresh_store(cfg: &FlStoreConfig, job: &FlJobConfig) -> FlStore {
    FlStore::new(
        cfg.clone(),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    )
}

/// One state-mutating envelope, pre-resolved so the same mix can be
/// replayed against any store instance.
#[derive(Debug, Clone)]
enum Op {
    Ingest(usize),
    Serve(WorkloadRequest),
    ServeBatch(Vec<WorkloadRequest>),
    Evict(MetaKey),
    Reclaim(ByteSize),
}

fn serve_request(rng: &mut DetRng, id: u64, records: &[RoundRecord]) -> WorkloadRequest {
    let record = &records[rng.index(records.len())];
    let kind = WorkloadKind::ALL[rng.index(WorkloadKind::ALL.len())];
    let client = match kind.policy_class() {
        PolicyClass::P3AcrossRounds => Some(record.updates[rng.index(record.updates.len())].client),
        _ => None,
    };
    WorkloadRequest::new(
        RequestId::new(id),
        kind,
        JobId::new(JOB),
        record.round,
        client,
    )
}

/// A deterministic envelope mix touching every ledger record kind:
/// serves (single and batched), evictions, reclamations, and the
/// held-back final round's ingest.
fn op_mix(seed: u64, len: usize, records: &[RoundRecord]) -> Vec<Op> {
    let mut rng = DetRng::stream(seed, "durability-mix");
    let observed = &records[..records.len() - 1];
    let mut ops = Vec::with_capacity(len);
    for i in 0..len {
        let id = i as u64 * 100;
        match rng.index(10) {
            0 => ops.push(Op::Ingest(records.len() - 1)),
            1 => {
                let round = observed[rng.index(observed.len())].round;
                let key = match rng.index(3) {
                    0 => MetaKey::aggregate(JobId::new(JOB), round),
                    1 => MetaKey::metrics(JobId::new(JOB), round),
                    _ => MetaKey::hyperparams(JobId::new(JOB), round),
                };
                ops.push(Op::Evict(key));
            }
            2 => ops.push(Op::Reclaim(ByteSize::from_mb(1 + rng.index(40) as u64))),
            3 => {
                let batch: Vec<WorkloadRequest> = (0..1 + rng.index(4))
                    .map(|j| serve_request(&mut rng, id + j as u64, observed))
                    .collect();
                ops.push(Op::ServeBatch(batch));
            }
            4 => {
                // Unservable round: still a logged serve envelope.
                ops.push(Op::Serve(WorkloadRequest::new(
                    RequestId::new(id),
                    WorkloadKind::Clustering,
                    JobId::new(JOB),
                    Round::new(99),
                    None,
                )));
            }
            _ => ops.push(Op::Serve(serve_request(&mut rng, id, observed))),
        }
    }
    ops
}

/// Ingests the observed rounds, then applies `ops`, returning a debug
/// transcript of every response (receipts, served results, errors).
fn drive(store: &mut FlStore, records: &[RoundRecord], ops: &[Op]) -> Vec<String> {
    let mut now = SimTime::ZERO;
    for r in &records[..records.len() - 1] {
        store.ingest_round(now, r);
        now += SimDuration::from_secs(60);
    }
    let mut log = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Ingest(i) => log.push(format!("{:?}", store.ingest_round(now, &records[*i]))),
            Op::Serve(req) => log.push(format!("{:?}", store.serve(now, req))),
            Op::ServeBatch(reqs) => log.push(format!("{:?}", store.serve_batch(now, reqs))),
            Op::Evict(key) => log.push(format!("{}", store.evict(key))),
            Op::Reclaim(need) => log.push(format!("{:?}", store.reclaim(*need))),
        }
        now += SimDuration::from_secs(10);
    }
    log
}

/// Executes a parsed ledger prefix against a fresh store — the test's
/// own replay loop, independent of `recover()`'s, so the two
/// implementations cross-check each other.
fn replay_reference(cfg: &FlStoreConfig, job: &FlJobConfig, records: &[LedgerRecord]) -> FlStore {
    let mut store = fresh_store(cfg, job);
    for record in records {
        match record {
            LedgerRecord::Ingest { now, record } => {
                store.ingest_round(*now, record);
            }
            LedgerRecord::Serve { now, request } => {
                let _ = store.serve(*now, request);
            }
            LedgerRecord::ServeBatch { now, requests } => {
                let _ = store.serve_batch(*now, requests);
            }
            LedgerRecord::Evict { key } => {
                store.evict(key);
            }
            LedgerRecord::Reclaim { need } => {
                store.reclaim(*need);
            }
            LedgerRecord::Digest(_) => {}
        }
    }
    store
}

/// Bit-identical equivalence: state fingerprint, full cost ledger, quota
/// row, and — the part users observe — identical responses to a fresh
/// probe workload served after recovery.
fn assert_equivalent(a: &mut FlStore, b: &mut FlStore, records: &[RoundRecord], ctx: &str) {
    assert_eq!(
        a.durability_digest(),
        b.durability_digest(),
        "digest: {ctx}"
    );
    assert_eq!(
        serde_json::to_string(a.ledger()).unwrap(),
        serde_json::to_string(b.ledger()).unwrap(),
        "cost ledger: {ctx}"
    );
    assert_eq!(a.quota_usage(), b.quota_usage(), "quota row: {ctx}");
    let mut rng = DetRng::stream(0xBEEF, "durability-probe");
    let probe: Vec<WorkloadRequest> = (0..6)
        .map(|i| serve_request(&mut rng, 9_000 + i, &records[..records.len() - 1]))
        .collect();
    let now = SimTime::from_micros(10_000_000_000);
    for req in &probe {
        assert_eq!(
            format!("{:?}", a.serve(now, req)),
            format!("{:?}", b.serve(now, req)),
            "probe serve: {ctx}"
        );
    }
}

#[test]
fn recover_equals_uninterrupted() {
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = store_config(&job, true, DurabilityConfig::DISABLED);
    let ops = op_mix(11, 16, &records);

    let dir = DetTempDir::new("recover-basic", 11);
    let mut attached = fresh_store(&cfg, &job);
    attach(&mut attached, dir.path()).unwrap();
    let attached_log = drive(&mut attached, &records, &ops);
    drop(attached); // crash after a clean flush

    let mut plain = fresh_store(&cfg, &job);
    let plain_log = drive(&mut plain, &records, &ops);
    // The ledger sink itself must not perturb behavior.
    assert_eq!(attached_log, plain_log);

    let mut recovered = recover(dir.path()).unwrap();
    assert_equivalent(&mut recovered, &mut plain, &records, "clean shutdown");
}

#[test]
fn recovered_store_keeps_logging() {
    // Recovery hands back a store with a live sink: more envelopes must
    // land durably after a torn-tail truncation, and a second recovery
    // must see them.
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = store_config(&job, false, DurabilityConfig::DISABLED);
    let ops = op_mix(23, 10, &records);

    let dir = DetTempDir::new("recover-continue", 23);
    let mut attached = fresh_store(&cfg, &job);
    attach(&mut attached, dir.path()).unwrap();
    drive(&mut attached, &records, &ops);
    drop(attached);

    // Tear the tail mid-record to force the truncation path.
    let ledger_path = dir.path().join(ACTIVE_LEDGER);
    let bytes = std::fs::read(&ledger_path).unwrap();
    let parsed = parse_ledger(&bytes).unwrap();
    assert!(parsed.torn.is_none());
    let cut = parsed.boundaries[parsed.boundaries.len() - 2] + 1;
    std::fs::write(&ledger_path, &bytes[..cut]).unwrap();

    let mut recovered = recover(dir.path()).unwrap();
    let more = op_mix(24, 6, &records);
    let mut now = SimTime::from_micros(20_000_000_000);
    for op in &more {
        match op {
            Op::Ingest(i) => {
                recovered.ingest_round(now, &records[*i]);
            }
            Op::Serve(req) => {
                let _ = recovered.serve(now, req);
            }
            Op::ServeBatch(reqs) => {
                let _ = recovered.serve_batch(now, reqs);
            }
            Op::Evict(key) => {
                recovered.evict(key);
            }
            Op::Reclaim(need) => {
                recovered.reclaim(*need);
            }
        }
        now += SimDuration::from_secs(10);
    }
    let digest = recovered.durability_digest();
    drop(recovered);

    let mut second = recover(dir.path()).unwrap();
    assert_eq!(second.durability_digest(), digest);
    // The rewritten tail parses clean end to end.
    let bytes = std::fs::read(&ledger_path).unwrap();
    assert!(parse_ledger(&bytes).unwrap().torn.is_none());
    drop(second.take_record_sink());
}

#[test]
fn segments_seal_and_recover() {
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let durability = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 4,
        ..DurabilityConfig::DISABLED
    };
    let cfg = store_config(&job, true, durability);
    let ops = op_mix(31, 20, &records);

    let dir = DetTempDir::new("recover-segments", 31);
    let mut attached = fresh_store(&cfg, &job);
    attach(&mut attached, dir.path()).unwrap();
    drive(&mut attached, &records, &ops);
    drop(attached);

    let segments = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("segment-") && name.ends_with(".log")
        })
        .count();
    assert!(segments >= 2, "expected sealed segments, found {segments}");

    let mut plain = fresh_store(&cfg, &job);
    drive(&mut plain, &records, &ops);
    let mut recovered = recover(dir.path()).unwrap();
    assert_equivalent(&mut recovered, &mut plain, &records, "sealed segments");
}

#[test]
fn kill_point_at_every_record_boundary() {
    let job = job_config();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let cfg = store_config(&job, true, DurabilityConfig::DISABLED);
    let ops = op_mix(47, 12, &records);

    // One intact run yields the reference ledger and its boundaries.
    let intact_dir = DetTempDir::new("kill-intact", 47);
    let mut intact = fresh_store(&cfg, &job);
    attach(&mut intact, intact_dir.path()).unwrap();
    drive(&mut intact, &records, &ops);
    drop(intact);
    let intact_bytes = std::fs::read(intact_dir.path().join(ACTIVE_LEDGER)).unwrap();
    let parsed = parse_ledger(&intact_bytes).unwrap();
    assert!(parsed.torn.is_none());
    assert!(
        parsed.records.len() > ops.len(),
        "prefix ingests also logged"
    );

    // Crash at every record boundary, and mid-record one byte past it.
    let mut crash_points: Vec<u64> = Vec::new();
    for &b in &parsed.boundaries {
        crash_points.push(b as u64);
        if (b as u64) < intact_bytes.len() as u64 {
            crash_points.push(b as u64 + 1);
        }
    }
    for budget in crash_points {
        let dir = DetTempDir::new("kill-point", budget);
        let mut doomed = fresh_store(&cfg, &job);
        attach_kill_point(&mut doomed, dir.path(), budget).unwrap();
        drive(&mut doomed, &records, &ops);
        drop(doomed);

        let mut recovered =
            recover(dir.path()).unwrap_or_else(|e| panic!("recover at budget {budget}: {e}"));
        let durable = parse_ledger(&intact_bytes[..budget as usize]).unwrap();
        let mut reference = replay_reference(&cfg, &job, &durable.records);
        assert_equivalent(
            &mut recovered,
            &mut reference,
            &records,
            &format!(
                "crash at byte {budget} ({} durable records)",
                durable.records.len()
            ),
        );
        drop(recovered.take_record_sink());
    }
}

#[test]
fn attach_refuses_unreconstructible_policies() {
    use flstore_core::policy::{EvictionDiscipline, ReactivePolicy};
    let job = job_config();
    let cfg = store_config(&job, false, DurabilityConfig::DISABLED);
    let mut store = FlStore::new(
        cfg,
        Box::new(ReactivePolicy::new(EvictionDiscipline::Random, 7)),
        job.job,
        job.model,
    );
    let dir = DetTempDir::new("refuse-random", 7);
    match attach(&mut store, dir.path()) {
        Err(DurabilityError::UnreconstructiblePolicy(name)) => {
            assert_eq!(name, "FLStore-Random");
        }
        other => panic!("expected UnreconstructiblePolicy, got {other:?}"),
    }
}

proptest! {
    /// Randomized variant of the boundary sweep: arbitrary mix seed and
    /// length, crash at an arbitrary byte offset (not just boundaries).
    #[test]
    fn prop_recovery_from_arbitrary_crash_offset(seed in 0u64..1000, len in 4usize..14, cut in 0u64..10_000) {
        let job = job_config();
        let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
        let cfg = store_config(&job, true, DurabilityConfig::DISABLED);
        let ops = op_mix(seed, len, &records);

        let intact_dir = DetTempDir::new("prop-intact", seed ^ (len as u64) << 32);
        let mut intact = fresh_store(&cfg, &job);
        attach(&mut intact, intact_dir.path()).unwrap();
        drive(&mut intact, &records, &ops);
        drop(intact);
        let intact_bytes = std::fs::read(intact_dir.path().join(ACTIVE_LEDGER)).unwrap();

        // Header must survive for the file to identify itself; crashes
        // inside it are a separate (hard-error) regime.
        let budget = 5 + cut % (intact_bytes.len() as u64 - 4);
        let dir = DetTempDir::new("prop-kill", seed ^ budget.rotate_left(17));
        let mut doomed = fresh_store(&cfg, &job);
        attach_kill_point(&mut doomed, dir.path(), budget).unwrap();
        drive(&mut doomed, &records, &ops);
        drop(doomed);

        let mut recovered = recover(dir.path()).unwrap();
        let durable = parse_ledger(&intact_bytes[..budget as usize]).unwrap();
        let mut reference = replay_reference(&cfg, &job, &durable.records);
        assert_equivalent(&mut recovered, &mut reference, &records, &format!("seed {seed} budget {budget}"));
        drop(recovered.take_record_sink());
    }
}
