//! Deterministic test support: seeded temp directories and the
//! fault-injecting ledger medium for kill-point properties.
//!
//! Nothing here reaches for wall clocks or ambient entropy — temp paths
//! are minted from a caller-supplied label and seed, so test runs are
//! reproducible byte for byte and the `wall_clock`/`ambient_entropy`
//! lint rules stay clean.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use flstore_core::store::FlStore;

use crate::ledger::{DiskLedgerSink, LedgerMedium, ACTIVE_LEDGER};
use crate::records::header;
use crate::recover::{write_manifest, DurabilityError, SPILL_DIR};
use crate::spill::DiskSpill;

/// A deterministic scratch directory under the workspace `target/`,
/// wiped on creation and removed on drop.
///
/// Use a distinct `(label, seed)` pair per concurrently running test —
/// the name is a pure function of both, which is the point.
#[derive(Debug)]
pub struct DetTempDir {
    path: PathBuf,
}

impl DetTempDir {
    /// Creates (and first clears) `target/det-tmp/<label>-<seed>`.
    pub fn new(label: &str, seed: u64) -> Self {
        let base = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target")
            .join("det-tmp");
        let path = base.join(format!("{label}-{seed:016x}"));
        if path.exists() {
            std::fs::remove_dir_all(&path).expect("clear stale det-tmp dir");
        }
        std::fs::create_dir_all(&path).expect("create det-tmp dir");
        DetTempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DetTempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A ledger medium that models a crash: only the first `budget` bytes
/// reach the file; everything after is silently dropped while the writer
/// believes the write succeeded — exactly what an OS crash between
/// `write` and a lost page does to an append-only log.
///
/// Driving a store through a sink on this medium with `budget` set to
/// each record boundary (and to mid-record offsets) produces every
/// possible crash ledger, which the kill-point recovery property then
/// recovers and compares against an uninterrupted run.
#[derive(Debug)]
pub struct KillPointFile {
    file: File,
    budget: u64,
    written: u64,
}

impl KillPointFile {
    /// Creates `path`, persisting only the first `budget` bytes ever
    /// written through this handle.
    pub fn create(path: &Path, budget: u64) -> io::Result<Self> {
        Ok(KillPointFile {
            file: File::create(path)?,
            budget,
            written: 0,
        })
    }
}

impl Write for KillPointFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self
            .budget
            .saturating_sub(self.written)
            .min(buf.len() as u64) as usize;
        if room > 0 {
            self.file.write_all(&buf[..room])?;
        }
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl LedgerMedium for KillPointFile {
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// The crash-injection variant of [`crate::recover::attach`]: wipes
/// `dir`, writes the manifest, and starts the ledger through a
/// [`KillPointFile`] persisting only the first `budget` bytes of the
/// ledger file (5-byte header included). Driving a full workload through
/// such a store and then recovering `dir` simulates a crash at exactly
/// byte `budget`.
pub fn attach_kill_point(
    store: &mut FlStore,
    dir: &Path,
    budget: u64,
) -> Result<(), DurabilityError> {
    write_manifest(store, dir)?;
    if store.config().durability.spill {
        store.set_spill_backend(Box::new(DiskSpill::create(&dir.join(SPILL_DIR))?));
    }
    let mut medium = KillPointFile::create(&dir.join(ACTIVE_LEDGER), budget)?;
    medium.write_all(&header())?;
    let sink = DiskLedgerSink::with_medium(dir, store.config().durability, Box::new(medium));
    store.set_record_sink(Box::new(sink));
    Ok(())
}
