//! On-disk ledger record format (docs/LEDGER.md).
//!
//! A ledger file is a 5-byte header (`"FLSL"` magic + version byte)
//! followed by length-prefixed records in the same varint/framing
//! discipline as the wire protocol (docs/WIRE.md):
//!
//! ```text
//! [tag u8][payload-len varint LEB128][payload bytes]
//! ```
//!
//! Record payloads mix varints (times, byte counts) with canonical JSON
//! (structured values), because the vendored `serde_json` round-trips
//! every `f64` exactly — the property the store's bit-identical recovery
//! depends on.
//!
//! The decoder is **total**: every byte sequence either parses, stops
//! cleanly at a torn tail (a crash mid-append), or returns a typed
//! [`LedgerError`]. It never panics and never reads past a declared
//! length.

use std::fmt;

use flstore_core::durable::{LedgerEvent, StateDigest};
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::MetaKey;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;
use flstore_workloads::request::WorkloadRequest;

/// Ledger file magic: the first four bytes of every ledger/segment file.
pub const LEDGER_MAGIC: [u8; 4] = *b"FLSL";

/// Current on-disk format version (the fifth header byte).
pub const LEDGER_VERSION: u8 = 1;

/// Upper bound on one record's payload, mirroring the wire protocol's
/// frame bound: a declared length past this is corruption, not a large
/// record.
pub const MAX_RECORD_LEN: u64 = 64 * 1024 * 1024;

/// `Ingest` record tag.
pub const TAG_INGEST: u8 = 0x01;
/// `Serve` record tag.
pub const TAG_SERVE: u8 = 0x02;
/// `ServeBatch` record tag.
pub const TAG_SERVE_BATCH: u8 = 0x03;
/// `Evict` record tag.
pub const TAG_EVICT: u8 = 0x04;
/// `Reclaim` record tag.
pub const TAG_RECLAIM: u8 = 0x05;
/// `Digest` (segment seal) record tag.
pub const TAG_DIGEST: u8 = 0x06;

/// The record inventory: `(tag, name, payload layout, summary)`.
///
/// `flstore-durability --list-records` prints this table tab-separated;
/// docs/LEDGER.md's tag table is diffed against that output in CI
/// (`scripts/check_ledger_doc.sh`).
pub const RECORDS: &[(u8, &str, &str, &str)] = &[
    (
        TAG_INGEST,
        "Ingest",
        "[time varint][json RoundRecord]",
        "one ingested training round",
    ),
    (
        TAG_SERVE,
        "Serve",
        "[time varint][json WorkloadRequest]",
        "one served request (serves mutate cache state)",
    ),
    (
        TAG_SERVE_BATCH,
        "ServeBatch",
        "[time varint][json WorkloadRequest list]",
        "one served batch, preserving the exact batch shape",
    ),
    (
        TAG_EVICT,
        "Evict",
        "[json MetaKey]",
        "an explicit eviction envelope",
    ),
    (
        TAG_RECLAIM,
        "Reclaim",
        "[need varint]",
        "an external reclamation request (pressure plane)",
    ),
    (
        TAG_DIGEST,
        "Digest",
        "[json StateDigest]",
        "segment seal: the state fingerprint replay must reach",
    ),
];

/// One decoded ledger record, owning its data (the borrowed counterpart
/// is [`LedgerEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// An ingested round.
    Ingest {
        /// Ingest time.
        now: SimTime,
        /// The round.
        record: RoundRecord,
    },
    /// A served request.
    Serve {
        /// Serve time.
        now: SimTime,
        /// The request.
        request: WorkloadRequest,
    },
    /// A served batch.
    ServeBatch {
        /// Batch serve time.
        now: SimTime,
        /// The batch, in order.
        requests: Vec<WorkloadRequest>,
    },
    /// An explicit eviction.
    Evict {
        /// The evicted key.
        key: MetaKey,
    },
    /// An external reclamation.
    Reclaim {
        /// Bytes requested.
        need: ByteSize,
    },
    /// A segment seal fingerprint.
    Digest(StateDigest),
}

/// A typed ledger failure. [`LedgerError::TornTail`] is special: it marks
/// a crash mid-append and is *tolerated* in the final file of a recovery
/// (the records before it are intact); every other variant is hard
/// corruption.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The file is shorter than the 5-byte header or does not start with
    /// the `FLSL` magic.
    BadMagic,
    /// The header's version byte is not [`LEDGER_VERSION`].
    BadVersion(u8),
    /// The file ended inside a record (torn write). `offset` is the start
    /// of the torn record — the last valid boundary.
    TornTail {
        /// Byte offset of the last intact record boundary.
        offset: usize,
    },
    /// A declared payload length exceeded [`MAX_RECORD_LEN`].
    Oversized {
        /// The declared length.
        declared: u64,
        /// Offset of the offending record.
        offset: usize,
    },
    /// A record tag not in [`RECORDS`].
    UnknownTag {
        /// The tag byte.
        tag: u8,
        /// Offset of the offending record.
        offset: usize,
    },
    /// A length varint ran past 10 bytes.
    VarintOverflow {
        /// Offset of the offending record.
        offset: usize,
    },
    /// A complete payload failed to decode (bad JSON, trailing bytes).
    Corrupt {
        /// Offset of the offending record.
        offset: usize,
        /// What failed.
        what: String,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BadMagic => write!(f, "not a ledger file (bad magic)"),
            LedgerError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported ledger version {v} (expected {LEDGER_VERSION})"
                )
            }
            LedgerError::TornTail { offset } => {
                write!(f, "torn record tail after byte {offset}")
            }
            LedgerError::Oversized { declared, offset } => write!(
                f,
                "record at byte {offset} declares {declared} bytes (max {MAX_RECORD_LEN})"
            ),
            LedgerError::UnknownTag { tag, offset } => {
                write!(f, "unknown record tag {tag:#04x} at byte {offset}")
            }
            LedgerError::VarintOverflow { offset } => {
                write!(f, "length varint wider than 10 bytes at byte {offset}")
            }
            LedgerError::Corrupt { offset, what } => {
                write!(f, "corrupt record at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// The 5-byte file header every ledger/segment file starts with.
pub fn header() -> [u8; 5] {
    let mut h = [0u8; 5];
    h[..4].copy_from_slice(&LEDGER_MAGIC);
    h[4] = LEDGER_VERSION;
    h
}

/// Appends `v` LEB128-encoded (the wire protocol's varint).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn frame(tag: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 6);
    out.push(tag);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn json<T: serde::Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_vec(value).expect("ledger payloads serialize infallibly")
}

/// Encodes one borrowed store event as a complete record
/// (`[tag][len][payload]`).
pub fn encode_event(event: &LedgerEvent<'_>) -> Vec<u8> {
    match event {
        LedgerEvent::Ingest { now, record } => {
            let mut payload = Vec::new();
            put_varint(&mut payload, now.as_micros());
            payload.extend_from_slice(&json(record));
            frame(TAG_INGEST, payload)
        }
        LedgerEvent::Serve { now, request } => {
            let mut payload = Vec::new();
            put_varint(&mut payload, now.as_micros());
            payload.extend_from_slice(&json(request));
            frame(TAG_SERVE, payload)
        }
        LedgerEvent::ServeBatch { now, requests } => {
            let mut payload = Vec::new();
            put_varint(&mut payload, now.as_micros());
            payload.extend_from_slice(&json(&requests.to_vec()));
            frame(TAG_SERVE_BATCH, payload)
        }
        LedgerEvent::Evict { key } => frame(TAG_EVICT, json(key)),
        LedgerEvent::Reclaim { need } => {
            let mut payload = Vec::new();
            put_varint(&mut payload, need.as_bytes());
            frame(TAG_RECLAIM, payload)
        }
    }
}

/// Encodes one owned record (used for [`LedgerRecord::Digest`] seals and
/// round-trip tests).
pub fn encode_record(record: &LedgerRecord) -> Vec<u8> {
    match record {
        LedgerRecord::Ingest { now, record } => {
            encode_event(&LedgerEvent::Ingest { now: *now, record })
        }
        LedgerRecord::Serve { now, request } => {
            encode_event(&LedgerEvent::Serve { now: *now, request })
        }
        LedgerRecord::ServeBatch { now, requests } => encode_event(&LedgerEvent::ServeBatch {
            now: *now,
            requests,
        }),
        LedgerRecord::Evict { key } => encode_event(&LedgerEvent::Evict { key }),
        LedgerRecord::Reclaim { need } => encode_event(&LedgerEvent::Reclaim { need: *need }),
        LedgerRecord::Digest(digest) => frame(TAG_DIGEST, json(digest)),
    }
}

/// The parse of one ledger file: every intact record, the byte offsets of
/// the record boundaries, and whether the file ended cleanly or torn.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLedger {
    /// Every complete record, in file order.
    pub records: Vec<LedgerRecord>,
    /// Byte offsets of record boundaries: the header end, then the end of
    /// each complete record. A crash (truncation) at any of these offsets
    /// loses only the records after it.
    pub boundaries: Vec<usize>,
    /// `Some(offset)` if the file ends inside a record (crash mid-append);
    /// `offset` is the last intact boundary.
    pub torn: Option<usize>,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

enum VarintRead {
    Value(u64),
    Eof,
    Overflow,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = self.buf.get(self.pos).copied()?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> VarintRead {
        let mut value: u64 = 0;
        for i in 0..10 {
            let Some(byte) = self.u8() else {
                return VarintRead::Eof;
            };
            let bits = u64::from(byte & 0x7f);
            // The 10th byte may only carry the u64's single remaining bit.
            if i == 9 && bits > 1 {
                return VarintRead::Overflow;
            }
            value |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return VarintRead::Value(value);
            }
        }
        VarintRead::Overflow
    }
}

fn decode_payload(tag: u8, payload: &[u8], offset: usize) -> Result<LedgerRecord, LedgerError> {
    let corrupt = |what: &str| LedgerError::Corrupt {
        offset,
        what: what.to_string(),
    };
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    match tag {
        TAG_INGEST | TAG_SERVE | TAG_SERVE_BATCH => {
            let micros = match cur.varint() {
                VarintRead::Value(v) => v,
                VarintRead::Eof => return Err(corrupt("payload ends inside the time varint")),
                VarintRead::Overflow => return Err(LedgerError::VarintOverflow { offset }),
            };
            let now = SimTime::from_micros(micros);
            let rest = &payload[cur.pos..];
            match tag {
                TAG_INGEST => serde_json::from_slice::<RoundRecord>(rest)
                    .map(|record| LedgerRecord::Ingest { now, record })
                    .map_err(|e| corrupt(&format!("RoundRecord json: {e:?}"))),
                TAG_SERVE => serde_json::from_slice::<WorkloadRequest>(rest)
                    .map(|request| LedgerRecord::Serve { now, request })
                    .map_err(|e| corrupt(&format!("WorkloadRequest json: {e:?}"))),
                _ => serde_json::from_slice::<Vec<WorkloadRequest>>(rest)
                    .map(|requests| LedgerRecord::ServeBatch { now, requests })
                    .map_err(|e| corrupt(&format!("WorkloadRequest list json: {e:?}"))),
            }
        }
        TAG_EVICT => serde_json::from_slice::<MetaKey>(payload)
            .map(|key| LedgerRecord::Evict { key })
            .map_err(|e| corrupt(&format!("MetaKey json: {e:?}"))),
        TAG_RECLAIM => match cur.varint() {
            VarintRead::Value(v) => {
                if cur.pos != payload.len() {
                    return Err(corrupt("trailing bytes after the need varint"));
                }
                Ok(LedgerRecord::Reclaim {
                    need: ByteSize::from_bytes(v),
                })
            }
            VarintRead::Eof => Err(corrupt("payload ends inside the need varint")),
            VarintRead::Overflow => Err(LedgerError::VarintOverflow { offset }),
        },
        TAG_DIGEST => serde_json::from_slice::<StateDigest>(payload)
            .map(LedgerRecord::Digest)
            .map_err(|e| corrupt(&format!("StateDigest json: {e:?}"))),
        other => Err(LedgerError::UnknownTag { tag: other, offset }),
    }
}

/// Parses one ledger file's bytes. Total: returns every intact record and
/// classifies how the file ends. Hard corruption (bad magic, unknown tag,
/// oversized or undecodable record) is an error; a torn tail is reported
/// in [`ParsedLedger::torn`], not an error — the *caller* decides whether
/// a torn tail is acceptable (it is only in the final, active file).
pub fn parse_ledger(bytes: &[u8]) -> Result<ParsedLedger, LedgerError> {
    if bytes.len() < 5 || bytes[..4] != LEDGER_MAGIC {
        return Err(LedgerError::BadMagic);
    }
    if bytes[4] != LEDGER_VERSION {
        return Err(LedgerError::BadVersion(bytes[4]));
    }
    let mut cur = Cursor { buf: bytes, pos: 5 };
    let mut records = Vec::new();
    let mut boundaries = vec![5usize];
    let mut torn = None;
    loop {
        let record_start = cur.pos;
        let Some(tag) = cur.u8() else {
            break; // clean end at a record boundary
        };
        let len = match cur.varint() {
            VarintRead::Value(v) => v,
            VarintRead::Eof => {
                torn = Some(record_start);
                break;
            }
            VarintRead::Overflow => {
                return Err(LedgerError::VarintOverflow {
                    offset: record_start,
                })
            }
        };
        if len > MAX_RECORD_LEN {
            return Err(LedgerError::Oversized {
                declared: len,
                offset: record_start,
            });
        }
        let len = len as usize;
        if cur.buf.len() - cur.pos < len {
            torn = Some(record_start);
            break;
        }
        let payload = &cur.buf[cur.pos..cur.pos + len];
        cur.pos += len;
        records.push(decode_payload(tag, payload, record_start)?);
        boundaries.push(cur.pos);
    }
    Ok(ParsedLedger {
        records,
        boundaries,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::ids::{JobId, Round};
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_workloads::request::RequestId;
    use flstore_workloads::taxonomy::WorkloadKind;

    fn sample_records() -> Vec<LedgerRecord> {
        let job = FlJobConfig::quick_test(JobId::new(3));
        let round = FlJobSim::new(job).next().expect("one round");
        let request = WorkloadRequest::new(
            RequestId::new(9),
            WorkloadKind::Inference,
            JobId::new(3),
            round.round,
            None,
        );
        vec![
            LedgerRecord::Ingest {
                now: SimTime::from_micros(1_000_000),
                record: round,
            },
            LedgerRecord::Serve {
                now: SimTime::from_micros(2_000_000),
                request,
            },
            LedgerRecord::ServeBatch {
                now: SimTime::from_micros(3_000_000),
                requests: vec![request, request],
            },
            LedgerRecord::Evict {
                key: MetaKey::aggregate(JobId::new(3), Round::new(1)),
            },
            LedgerRecord::Reclaim {
                need: ByteSize::from_mb(12),
            },
            LedgerRecord::Digest(StateDigest {
                rows: vec!["k size=1".to_string()],
                resident: ByteSize::from_mb(1),
                served: 3,
                faults: 1,
                background_cost: Default::default(),
            }),
        ]
    }

    fn ledger_of(records: &[LedgerRecord]) -> Vec<u8> {
        let mut bytes = header().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = sample_records();
        let bytes = ledger_of(&records);
        let parsed = parse_ledger(&bytes).unwrap();
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.torn, None);
        assert_eq!(parsed.boundaries.len(), records.len() + 1);
        assert_eq!(*parsed.boundaries.last().unwrap(), bytes.len());
    }

    #[test]
    fn truncation_at_every_offset_is_classified() {
        // Total decoder: any truncation either lands on a boundary (clean)
        // or reports a torn tail at the last intact boundary — never a
        // panic, never a hard error for a mere prefix.
        let records = sample_records();
        let bytes = ledger_of(&records);
        let full = parse_ledger(&bytes).unwrap();
        for cut in 5..bytes.len() {
            let parsed = parse_ledger(&bytes[..cut]).unwrap();
            let intact = full.boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(parsed.records, full.records[..intact], "cut at {cut}");
            if full.boundaries.contains(&cut) {
                assert_eq!(parsed.torn, None, "cut at {cut} is a boundary");
            } else {
                assert_eq!(parsed.torn, Some(full.boundaries[intact]), "cut at {cut}");
            }
        }
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(parse_ledger(b""), Err(LedgerError::BadMagic));
        assert_eq!(parse_ledger(b"FLS"), Err(LedgerError::BadMagic));
        assert_eq!(parse_ledger(b"XXXX\x01"), Err(LedgerError::BadMagic));
        assert_eq!(parse_ledger(b"FLSL\x02"), Err(LedgerError::BadVersion(2)));
        assert!(parse_ledger(b"FLSL\x01").unwrap().records.is_empty());
    }

    #[test]
    fn unknown_tag_is_hard_corruption() {
        let mut bytes = header().to_vec();
        bytes.extend_from_slice(&frame(0x7f, vec![1, 2, 3]));
        assert_eq!(
            parse_ledger(&bytes),
            Err(LedgerError::UnknownTag {
                tag: 0x7f,
                offset: 5
            })
        );
    }

    #[test]
    fn oversized_length_is_hard_corruption() {
        let mut bytes = header().to_vec();
        bytes.push(TAG_RECLAIM);
        put_varint(&mut bytes, MAX_RECORD_LEN + 1);
        assert_eq!(
            parse_ledger(&bytes),
            Err(LedgerError::Oversized {
                declared: MAX_RECORD_LEN + 1,
                offset: 5
            })
        );
    }

    #[test]
    fn runaway_length_varint_is_hard_corruption() {
        let mut bytes = header().to_vec();
        bytes.push(TAG_RECLAIM);
        bytes.extend_from_slice(&[0xff; 10]);
        assert_eq!(
            parse_ledger(&bytes),
            Err(LedgerError::VarintOverflow { offset: 5 })
        );
    }

    #[test]
    fn trailing_payload_bytes_are_hard_corruption() {
        let mut payload = Vec::new();
        put_varint(&mut payload, 42);
        payload.push(0xAA); // junk after the need varint
        let mut bytes = header().to_vec();
        bytes.extend_from_slice(&frame(TAG_RECLAIM, payload));
        assert!(matches!(
            parse_ledger(&bytes),
            Err(LedgerError::Corrupt { offset: 5, .. })
        ));
    }

    #[test]
    fn record_table_matches_tags() {
        let tags: Vec<u8> = RECORDS.iter().map(|(t, ..)| *t).collect();
        assert_eq!(
            tags,
            vec![
                TAG_INGEST,
                TAG_SERVE,
                TAG_SERVE_BATCH,
                TAG_EVICT,
                TAG_RECLAIM,
                TAG_DIGEST
            ]
        );
    }
}
