//! # flstore-durability — the durability plane
//!
//! FLStore's serving state is RAM-resident; this crate makes it survive
//! crashes and memory pressure (ROADMAP item 2):
//!
//! * [`records`] — the append-only ledger's on-disk record format
//!   (docs/LEDGER.md): length-prefixed binary records in the wire
//!   protocol's varint discipline, with a total decoder that never
//!   panics on a torn tail.
//! * [`ledger`] — [`DiskLedgerSink`]: the write-ahead sink with
//!   group-commit batching and AOF-rewrite-style segment sealing
//!   (periodic compact snapshots, after which the ledger prefix is
//!   truncated into verified segments).
//! * [`spill`] — [`DiskSpill`]: the cold tier. Quota/capacity pressure
//!   victims spill their encoded bytes to disk instead of being dropped
//!   — the third outcome between keep and evict — and fault back
//!   transparently on serve.
//! * [`recover`] — [`attach`] / [`recover()`](recover::recover):
//!   deterministic crash recovery. Replaying manifest + segments + tail
//!   rebuilds a store bit-identical to the pre-crash one.
//! * [`testkit`] — seeded temp dirs and the fault-injecting
//!   [`KillPointFile`] medium behind the kill-point recovery property.
//!
//! ## Quickstart
//!
//! ```
//! use flstore_core::policy::TailoredPolicy;
//! use flstore_core::store::{FlStore, FlStoreConfig};
//! use flstore_durability::recover::{attach, recover};
//! use flstore_durability::testkit::DetTempDir;
//! use flstore_fl::ids::JobId;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_sim::time::SimTime;
//!
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let dir = DetTempDir::new("doc-quickstart", 7);
//! let mut store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! attach(&mut store, dir.path()).unwrap();
//! let record = FlJobSim::new(cfg).next().unwrap();
//! store.ingest_round(SimTime::ZERO, &record);
//! drop(store); // crash
//! let recovered = recover(dir.path()).unwrap();
//! assert_eq!(recovered.engine().len(), {
//!     // the recovered placement index matches the pre-crash one
//!     recovered.durability_digest().rows.len()
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ledger;
pub mod records;
pub mod recover;
pub mod spill;
pub mod testkit;

pub use ledger::{DiskLedgerSink, LedgerMedium, ACTIVE_LEDGER};
pub use records::{parse_ledger, LedgerError, LedgerRecord, ParsedLedger, RECORDS};
pub use recover::{attach, attach_tenants, policy_by_name, DurabilityError, Manifest};
pub use spill::DiskSpill;
pub use testkit::{DetTempDir, KillPointFile};
