//! The disk-backed write-ahead sink: group commit and segment sealing.
//!
//! One [`DiskLedgerSink`] serves one `FlStore` deployment (one tenant
//! directory). The sharded executor hands whole deployments to worker
//! threads by ownership transfer, so each worker-owned shard carries its
//! own sink — one writer per shard, no shared locks anywhere near the
//! serve path.
//!
//! Layout inside a tenant directory:
//!
//! ```text
//! MANIFEST              deployment identity + config (json, written once)
//! segment-000000.log    sealed replay segments, oldest first; each ends
//! segment-000001.log    with a Digest record fingerprinting the state
//! ledger.log            the active tail; may end torn after a crash
//! spill/                the cold tier (when spill is enabled)
//! ```
//!
//! Sealing is AOF-rewrite style: the active file gains a final `Digest`
//! record, is fsynced, renamed to the next `segment-NNNNNN.log`, and a
//! fresh `ledger.log` is opened. Recovery replays segments in name order,
//! verifying each digest, then the active tail, tolerating a torn final
//! record there and only there.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use flstore_core::durable::{DurabilityConfig, LedgerEvent, RecordSink, StateDigest};

use crate::records::{encode_event, encode_record, header, LedgerRecord};

/// Name of the active ledger file inside a tenant directory.
pub const ACTIVE_LEDGER: &str = "ledger.log";

/// Formats the name of sealed segment `index`.
pub fn segment_name(index: u32) -> String {
    format!("segment-{index:06}.log")
}

/// Where a sink's bytes go: a real file (or a fault-injecting stand-in
/// for kill-point tests). `sync` is the durability barrier — for files,
/// `File::sync_data`.
pub trait LedgerMedium: Write + Send + fmt::Debug {
    /// Flushes OS buffers to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl LedgerMedium for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// The write-ahead sink a durable `FlStore` appends to.
#[derive(Debug)]
pub struct DiskLedgerSink {
    dir: PathBuf,
    medium: Option<Box<dyn LedgerMedium>>,
    cfg: DurabilityConfig,
    /// Records appended to the active file since its header (or since
    /// recovery counted them).
    active_records: u32,
    /// Records appended since the last flush+sync.
    unflushed: u32,
    /// Index the next sealed segment will take.
    next_segment: u32,
    /// Whether the medium is the real `ledger.log` (seals rename it). An
    /// injected medium cannot be sealed.
    real_file: bool,
}

fn create_active(dir: &Path) -> io::Result<File> {
    let mut file = File::create(dir.join(ACTIVE_LEDGER))?;
    file.write_all(&header())?;
    file.sync_data()?;
    Ok(file)
}

impl DiskLedgerSink {
    /// Creates a fresh sink in `dir` (which must exist), writing a new
    /// empty `ledger.log`.
    pub fn create(dir: &Path, cfg: DurabilityConfig) -> io::Result<Self> {
        let file = create_active(dir)?;
        Ok(DiskLedgerSink {
            dir: dir.to_path_buf(),
            medium: Some(Box::new(file)),
            cfg,
            active_records: 0,
            unflushed: 0,
            next_segment: 0,
            real_file: true,
        })
    }

    /// Reopens the active ledger of a recovered deployment in append
    /// mode. `active_records` is how many records recovery found intact
    /// in it; `next_segment` is one past the highest sealed segment.
    pub fn append_existing(
        dir: &Path,
        cfg: DurabilityConfig,
        active_records: u32,
        next_segment: u32,
    ) -> io::Result<Self> {
        let path = dir.join(ACTIVE_LEDGER);
        let file = if path.exists() {
            OpenOptions::new().append(true).open(&path)?
        } else {
            create_active(dir)?
        };
        Ok(DiskLedgerSink {
            dir: dir.to_path_buf(),
            medium: Some(Box::new(file)),
            cfg,
            active_records,
            unflushed: 0,
            next_segment,
            real_file: true,
        })
    }

    /// A sink writing through an injected medium (fault injection for
    /// kill-point tests). The caller owns writing the 5-byte header into
    /// the medium's backing store beforehand; sealing is disabled.
    pub fn with_medium(dir: &Path, cfg: DurabilityConfig, medium: Box<dyn LedgerMedium>) -> Self {
        DiskLedgerSink {
            dir: dir.to_path_buf(),
            medium: Some(medium),
            cfg,
            active_records: 0,
            unflushed: 0,
            next_segment: 0,
            real_file: false,
        }
    }

    /// The tenant directory this sink writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        let medium = self.medium.as_mut().expect("sink medium present");
        medium
            .write_all(bytes)
            .expect("ledger append failed: write-ahead log is unavailable");
        self.active_records += 1;
        self.unflushed += 1;
        if self.unflushed >= self.cfg.flush_every.max(1) {
            self.flush_now();
        }
    }

    fn flush_now(&mut self) {
        if self.unflushed == 0 {
            return;
        }
        let medium = self.medium.as_mut().expect("sink medium present");
        medium.flush().expect("ledger flush failed");
        medium.sync().expect("ledger fsync failed");
        self.unflushed = 0;
    }
}

impl RecordSink for DiskLedgerSink {
    fn append(&mut self, event: LedgerEvent<'_>) {
        let bytes = encode_event(&event);
        self.write_bytes(&bytes);
    }

    fn should_seal(&self) -> bool {
        self.real_file
            && self.cfg.snapshot_every > 0
            && self.active_records >= self.cfg.snapshot_every
    }

    fn seal(&mut self, digest: &StateDigest) {
        let bytes = encode_record(&LedgerRecord::Digest(digest.clone()));
        self.write_bytes(&bytes);
        self.flush_now();
        if !self.real_file {
            return;
        }
        // Close the active file before renaming it into the segment
        // sequence, then start a fresh tail.
        drop(self.medium.take());
        let sealed = self.dir.join(segment_name(self.next_segment));
        std::fs::rename(self.dir.join(ACTIVE_LEDGER), &sealed).expect("segment seal rename failed");
        self.next_segment += 1;
        let file = create_active(&self.dir).expect("fresh ledger after seal");
        self.medium = Some(Box::new(file));
        self.active_records = 0;
        self.unflushed = 0;
    }

    fn flush(&mut self) {
        self.flush_now();
    }
}

impl Drop for DiskLedgerSink {
    fn drop(&mut self) {
        if self.medium.is_some() {
            self.flush_now();
        }
    }
}
