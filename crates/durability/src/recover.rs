//! Attach, replay, recover: the lifecycle of a durable deployment.
//!
//! [`attach`] makes a freshly built `FlStore` durable: it wipes the
//! tenant directory, records the deployment's identity in a `MANIFEST`
//! file, installs the cold tier (when configured), and starts the
//! write-ahead ledger. [`recover`] is its inverse: it rebuilds the store
//! from the manifest, replays every sealed segment (verifying each
//! embedded digest) and the active tail (tolerating a torn final
//! record), and re-attaches the ledger in append mode — the recovered
//! store is bit-identical to the pre-crash one, because replay drives
//! the exact same public methods the original envelopes did and the
//! store is deterministic.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use flstore_core::policy::{CachingPolicy, EvictionDiscipline, ReactivePolicy, TailoredPolicy};
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_fl::ids::JobId;
use flstore_fl::zoo::ModelArch;

use crate::ledger::{segment_name, DiskLedgerSink, ACTIVE_LEDGER};
use crate::records::{parse_ledger, LedgerError, LedgerRecord};
use crate::spill::DiskSpill;

/// Name of the deployment-identity file inside a tenant directory.
pub const MANIFEST: &str = "MANIFEST";

/// Name of the cold-tier directory inside a tenant directory.
pub const SPILL_DIR: &str = "spill";

/// The deployment identity written once at attach time: everything
/// `recover` needs to rebuild an empty store identical to the one that
/// first attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// The tenant.
    pub job: u32,
    /// Model architecture, by canonical zoo name.
    pub model: String,
    /// Caching policy, by its reported name.
    pub policy: String,
    /// The full store configuration (durability section included).
    pub config: FlStoreConfig,
}

/// Why attaching or recovering a deployment failed.
#[derive(Debug)]
pub enum DurabilityError {
    /// Filesystem failure.
    Io(io::Error),
    /// A ledger or segment file is corrupt.
    Ledger {
        /// The offending file name.
        file: String,
        /// The parse failure.
        error: LedgerError,
    },
    /// A file that is not the active tail ended torn.
    TornInterior {
        /// The offending file name.
        file: String,
    },
    /// The manifest is missing or undecodable.
    Manifest(String),
    /// The manifest names a model the zoo does not know.
    UnknownModel(String),
    /// The manifest names a policy that cannot be rebuilt from its name
    /// (`FLStore-Random` draws from a consumed RNG stream; `FLStore-Static`
    /// captures an ablation snapshot) — such deployments are not durable.
    UnreconstructiblePolicy(String),
    /// A sealed segment's digest does not match the replayed state.
    DigestMismatch {
        /// The offending file name.
        file: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability i/o: {e}"),
            DurabilityError::Ledger { file, error } => write!(f, "{file}: {error}"),
            DurabilityError::TornInterior { file } => {
                write!(f, "{file}: torn tail in a non-final ledger file")
            }
            DurabilityError::Manifest(what) => write!(f, "manifest: {what}"),
            DurabilityError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            DurabilityError::UnreconstructiblePolicy(name) => {
                write!(f, "policy {name:?} cannot be rebuilt by name; not durable")
            }
            DurabilityError::DigestMismatch { file } => {
                write!(f, "{file}: replayed state does not match the sealed digest")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Rebuilds a caching policy from its reported name. Returns `None` for
/// policies whose behaviour is not a function of their name.
pub fn policy_by_name(name: &str, seed: u64) -> Option<Box<dyn CachingPolicy>> {
    match name {
        "FLStore" => Some(Box::new(TailoredPolicy::new())),
        "FLStore-LRU" => Some(Box::new(ReactivePolicy::new(EvictionDiscipline::Lru, seed))),
        "FLStore-FIFO" => Some(Box::new(ReactivePolicy::new(
            EvictionDiscipline::Fifo,
            seed,
        ))),
        "FLStore-LFU" => Some(Box::new(ReactivePolicy::new(EvictionDiscipline::Lfu, seed))),
        _ => None,
    }
}

/// Makes `store` durable in `dir`: wipes the directory, writes the
/// manifest, installs the cold tier when configured, and starts the
/// write-ahead ledger. From this point every state-mutating envelope is
/// persisted before it executes.
///
/// # Errors
///
/// [`DurabilityError::UnreconstructiblePolicy`] when the store's policy
/// cannot be rebuilt by name (recovery would be impossible, so attaching
/// is refused up front); [`DurabilityError::Io`] on filesystem failures.
pub fn attach(store: &mut FlStore, dir: &Path) -> Result<(), DurabilityError> {
    write_manifest(store, dir)?;
    if store.config().durability.spill {
        store.set_spill_backend(Box::new(DiskSpill::create(&dir.join(SPILL_DIR))?));
    }
    let sink = DiskLedgerSink::create(dir, store.config().durability)?;
    store.set_record_sink(Box::new(sink));
    Ok(())
}

/// The attach step without starting a ledger: wipes `dir` and records the
/// deployment's identity. Fault-injection harnesses use this and then
/// install their own [`DiskLedgerSink::with_medium`] sink.
pub fn write_manifest(store: &FlStore, dir: &Path) -> Result<(), DurabilityError> {
    let policy = store.policy_name().to_string();
    if policy_by_name(&policy, store.config().seed).is_none() {
        return Err(DurabilityError::UnreconstructiblePolicy(policy));
    }
    if dir.exists() {
        fs::remove_dir_all(dir)?;
    }
    fs::create_dir_all(dir)?;
    let manifest = Manifest {
        version: 1,
        job: store.catalog().job().as_u32(),
        model: store.catalog().model().name.to_string(),
        policy,
        config: store.config().clone(),
    };
    let json = serde_json::to_string(&manifest).expect("manifest serializes infallibly");
    fs::write(dir.join(MANIFEST), json)?;
    Ok(())
}

/// Attaches every tenant of a multi-tenant front end under
/// `root/job-<id>` — one independent ledger writer per tenant, so the
/// sharded executor keeps one writer per worker-owned shard for free.
pub fn attach_tenants(front: &mut MultiTenantStore, root: &Path) -> Result<(), DurabilityError> {
    for store in front.tenants_mut() {
        let dir = root.join(format!("job-{}", store.catalog().job().as_u32()));
        attach(store, &dir)?;
    }
    Ok(())
}

fn apply(store: &mut FlStore, record: LedgerRecord) {
    match record {
        LedgerRecord::Ingest { now, record } => {
            store.ingest_round(now, &record);
        }
        LedgerRecord::Serve { now, request } => {
            // The original serve may have errored (e.g. an unservable
            // round); replay reproduces the identical side effects and
            // the identical error.
            let _ = store.serve(now, &request);
        }
        LedgerRecord::ServeBatch { now, requests } => {
            let _ = store.serve_batch(now, &requests);
        }
        LedgerRecord::Evict { key } => {
            store.evict(&key);
        }
        LedgerRecord::Reclaim { need } => {
            store.reclaim(need);
        }
        LedgerRecord::Digest(_) => unreachable!("digests are verified by the replay loop"),
    }
}

fn replay_file(
    store: &mut FlStore,
    path: &Path,
    file: &str,
    torn_ok: bool,
) -> Result<(u32, Option<usize>), DurabilityError> {
    let bytes = fs::read(path)?;
    let parsed = parse_ledger(&bytes).map_err(|error| DurabilityError::Ledger {
        file: file.to_string(),
        error,
    })?;
    if parsed.torn.is_some() && !torn_ok {
        return Err(DurabilityError::TornInterior {
            file: file.to_string(),
        });
    }
    let mut applied = 0u32;
    for record in parsed.records {
        if let LedgerRecord::Digest(expected) = record {
            if store.durability_digest() != expected {
                return Err(DurabilityError::DigestMismatch {
                    file: file.to_string(),
                });
            }
            applied += 1;
            continue;
        }
        apply(store, record);
        applied += 1;
    }
    Ok((applied, parsed.torn))
}

/// Rebuilds the deployment persisted in `dir`, bit-identical to the
/// pre-crash store: same cache fingerprint, same cost ledger, same quota
/// occupancy, same responses to subsequent traffic. The returned store
/// has its ledger re-attached in append mode (and its cold tier
/// reinstalled, freshly cleared and deterministically re-filled by
/// replay), so serving can continue durably.
///
/// # Errors
///
/// Any [`DurabilityError`]: missing/corrupt manifest, corrupt ledger
/// bytes, a torn tail anywhere but the active file, a digest mismatch,
/// or an unreconstructible model/policy name.
pub fn recover(dir: &Path) -> Result<FlStore, DurabilityError> {
    let manifest_text = fs::read_to_string(dir.join(MANIFEST))
        .map_err(|e| DurabilityError::Manifest(format!("unreadable: {e}")))?;
    let manifest: Manifest = serde_json::from_str(&manifest_text)
        .map_err(|e| DurabilityError::Manifest(format!("undecodable: {e:?}")))?;
    if manifest.version != 1 {
        return Err(DurabilityError::Manifest(format!(
            "unsupported version {}",
            manifest.version
        )));
    }
    let model = ModelArch::by_name(&manifest.model)
        .ok_or_else(|| DurabilityError::UnknownModel(manifest.model.clone()))?;
    let policy = policy_by_name(&manifest.policy, manifest.config.seed)
        .ok_or_else(|| DurabilityError::UnreconstructiblePolicy(manifest.policy.clone()))?;
    let mut store = FlStore::new(
        manifest.config.clone(),
        policy,
        JobId::new(manifest.job),
        model,
    );

    // Cold tier before replay: replay re-derives every spill the
    // pre-crash store performed, so the tier's contents match exactly.
    // Clearing first (create wipes) is what keeps a stale entry from a
    // lost ledger tail out of the recovered store.
    if manifest.config.durability.spill {
        store.set_spill_backend(Box::new(DiskSpill::create(&dir.join(SPILL_DIR))?));
    }

    // Sealed segments in name order, digests verified...
    let mut segments: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("segment-") && name.ends_with(".log") {
            segments.push(name);
        }
    }
    // read_dir order is filesystem-dependent; the sort restores the
    // deterministic replay order the zero-padded names encode.
    segments.sort_unstable();
    for name in &segments {
        replay_file(&mut store, &dir.join(name), name, false)?;
    }
    // ...then the active tail, where a torn final record is a tolerated
    // crash artifact (its envelope was never acknowledged as durable).
    // The torn bytes are cut off before the ledger reopens for append,
    // so fresh records land at a valid boundary.
    let active = dir.join(ACTIVE_LEDGER);
    let active_records = if active.exists() {
        let (applied, torn) = replay_file(&mut store, &active, ACTIVE_LEDGER, true)?;
        if let Some(offset) = torn {
            let file = fs::OpenOptions::new().write(true).open(&active)?;
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        applied
    } else {
        0
    };

    let next_segment = segments
        .iter()
        .filter_map(|name| {
            name.strip_prefix("segment-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u32>().ok())
        })
        .max()
        .map(|max| max + 1)
        .unwrap_or(0);
    debug_assert_eq!(segment_name(next_segment).len(), "segment-000000.log".len());
    let sink = DiskLedgerSink::append_existing(
        dir,
        manifest.config.durability,
        active_records,
        next_segment,
    )?;
    store.set_record_sink(Box::new(sink));
    Ok(store)
}
