//! The disk-backed cold tier: pressure victims spill here instead of
//! being dropped, and serve-path misses fault them back.
//!
//! The tier is a *cache of the persistent store*, not a system of record:
//! every spilled object also exists in the (slow, billed) object store,
//! so recovery simply clears the directory and lets replay re-spill
//! deterministically — a stale on-disk entry from a lost ledger tail can
//! never leak into a recovered store. That is also why spill files are
//! written without fsync: losing one costs a re-fetch, never
//! correctness.
//!
//! One file per object, named by a percent-escaped rendering of the
//! object key (`/` → `%2F`, `%` → `%25` — injective, so distinct keys
//! never collide). File layout: `[logical-size u64 LE][payload bytes]`.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use flstore_core::durable::SpillBackend;
use flstore_fl::metadata::MetaKey;
use flstore_sim::bytes::ByteSize;

/// Disk-backed [`SpillBackend`].
#[derive(Debug)]
pub struct DiskSpill {
    dir: PathBuf,
    /// Authoritative index of what the tier holds (key → logical size).
    /// Rebuilt empty at attach/recovery (the directory is cleared), so it
    /// never disagrees with the files.
    index: BTreeMap<MetaKey, ByteSize>,
    /// Running logical-byte total, kept incrementally so `stats` is O(1).
    logical_total: ByteSize,
}

/// Escapes one object-key string into a safe, injective file name.
fn escape(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            other => out.push(other),
        }
    }
    out
}

impl DiskSpill {
    /// Opens (and wipes) the tier directory: the cold tier always starts
    /// empty and is refilled by live pressure or deterministic replay.
    pub fn create(dir: &Path) -> io::Result<Self> {
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        Ok(DiskSpill {
            dir: dir.to_path_buf(),
            index: BTreeMap::new(),
            logical_total: ByteSize::ZERO,
        })
    }

    fn path_of(&self, key: &MetaKey) -> PathBuf {
        self.dir.join(escape(key.object_key().as_str()))
    }
}

impl SpillBackend for DiskSpill {
    fn spill(&mut self, key: &MetaKey, payload: &[u8], logical: ByteSize) {
        let mut bytes = Vec::with_capacity(payload.len() + 8);
        bytes.extend_from_slice(&logical.as_bytes().to_le_bytes());
        bytes.extend_from_slice(payload);
        fs::write(self.path_of(key), bytes).expect("spill write failed");
        if let Some(prev) = self.index.insert(*key, logical) {
            self.logical_total = self.logical_total.saturating_sub(prev);
        }
        self.logical_total += logical;
    }

    fn fetch(&mut self, key: &MetaKey) -> Option<(Vec<u8>, ByteSize)> {
        let logical = self.index.remove(key)?;
        self.logical_total = self.logical_total.saturating_sub(logical);
        let path = self.path_of(key);
        let bytes = fs::read(&path).expect("spill read failed");
        let _ = fs::remove_file(&path);
        assert!(bytes.len() >= 8, "spill file shorter than its size prefix");
        let mut size = [0u8; 8];
        size.copy_from_slice(&bytes[..8]);
        let stored = ByteSize::from_bytes(u64::from_le_bytes(size));
        debug_assert_eq!(stored, logical, "spill index and file disagree");
        Some((bytes[8..].to_vec(), stored))
    }

    fn discard(&mut self, key: &MetaKey) {
        if let Some(logical) = self.index.remove(key) {
            self.logical_total = self.logical_total.saturating_sub(logical);
            let _ = fs::remove_file(self.path_of(key));
        }
    }

    fn stats(&self) -> (u64, ByteSize) {
        (self.index.len() as u64, self.logical_total)
    }
}
