//! Ledger tooling.
//!
//! ```text
//! flstore-durability --list-records
//! flstore-durability dump <ledger-or-segment-file>
//! ```

use std::process::ExitCode;

use flstore_durability::records::{parse_ledger, LedgerRecord, RECORDS};

fn usage() -> ExitCode {
    eprintln!(
        "usage: flstore-durability --list-records\n       flstore-durability dump <ledger-file>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-records") {
        // Machine-readable record inventory, tab-separated: tag byte,
        // name, payload layout, summary. docs/LEDGER.md's tag table is
        // diffed against this output in CI.
        for (tag, name, payload, summary) in RECORDS {
            println!("0x{tag:02x}\t{name}\t{payload}\t{summary}");
        }
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("dump") {
        let Some(path) = args.get(1) else {
            return usage();
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = match parse_ledger(&bytes) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (i, record) in parsed.records.iter().enumerate() {
            let line = match record {
                LedgerRecord::Ingest { now, record } => {
                    format!("Ingest\tt={now:?}\tround={}", record.round)
                }
                LedgerRecord::Serve { now, request } => {
                    format!("Serve\tt={now:?}\tid={:?}", request.id)
                }
                LedgerRecord::ServeBatch { now, requests } => {
                    format!("ServeBatch\tt={now:?}\tlen={}", requests.len())
                }
                LedgerRecord::Evict { key } => format!("Evict\t{key}"),
                LedgerRecord::Reclaim { need } => format!("Reclaim\tneed={need}"),
                LedgerRecord::Digest(d) => {
                    format!("Digest\trows={}\tserved={}", d.rows.len(), d.served)
                }
            };
            println!("{i}\t{line}");
        }
        if let Some(offset) = parsed.torn {
            println!("# torn tail after byte {offset}");
        }
        return ExitCode::SUCCESS;
    }
    usage()
}
