//! Criterion: work-stealing serves of a single hot tenant at 1/2/4/8
//! MetaKey shards. The inverse of `sharded_serve`'s setup: there the load
//! spreads over 16 tenants and job-hash routing alone scales it; here one
//! skewed tenant issues every request (compute-bound P2 filtering, all
//! same-replica-set cache hits), the worst case job sharding cannot touch
//! — its owner shard serializes everything while the other workers idle.
//!
//! Measured planes:
//!
//! * sequential `FlStore::submit_batch` (the baseline, no executor), and
//! * a `ShardedExecutor` with K workers over a K-key-shard store: the
//!   owner runs the bookkeeping, idle workers steal the deferred kernels.
//!
//! Responses are bit-for-bit identical everywhere (held by
//! `crates/core/tests/api_batch.rs` and the `keyshard` experiment's
//! checksum gate); this bench quantifies the wall-clock curve. Scaling is
//! bounded by `std::thread::available_parallelism` and the stealable
//! fraction of a serve (the `keyshard` experiment measures ~97% at this
//! workload shape). The stand-in criterion reports p50/p95/p99 alongside
//! mean/best.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::api::{Request, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

/// Serves per measured wave.
const WAVE: u64 = 64;

/// One hot tenant sized so the P2 kernel dominates per-serve overhead
/// (same shape as the `keyshard` experiment, smaller for bench cadence).
fn loaded_store(key_shards: usize) -> (FlStore, flstore_fl::ids::Round) {
    let cfg = FlJobConfig {
        rounds: 4,
        total_clients: 48,
        clients_per_round: 32,
        weight_dim: 2048,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    let store_cfg = FlStoreConfig {
        key_shards,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&cfg.model)
    };
    let mut store = FlStore::new(
        store_cfg,
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    );
    let mut last = flstore_fl::ids::Round::ZERO;
    let mut now = SimTime::ZERO;
    for record in FlJobSim::new(cfg) {
        last = record.round;
        store.ingest_round(now, &record);
        now += SimDuration::from_secs(60);
    }
    (store, last)
}

/// One wave of same-replica-set cache-hit P2 serves for the hot tenant.
fn wave(first_id: u64, round: flstore_fl::ids::Round) -> Vec<Request> {
    (0..WAVE)
        .map(|i| {
            Request::Serve(WorkloadRequest::new(
                RequestId::new(first_id + i),
                WorkloadKind::MaliciousFiltering,
                JobId::new(1),
                round,
                None,
            ))
        })
        .collect()
}

fn bench_key_sharded_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_sharded_serve");
    group.sample_size(10);

    group.bench_function(&format!("sequential_x{WAVE}"), |b| {
        let (mut store, round) = loaded_store(1);
        let mut now = SimTime::from_secs(3600);
        let mut id = 1u64;
        b.iter(|| {
            now += SimDuration::from_secs(60);
            let requests = wave(id, round);
            id += WAVE;
            black_box(store.submit_batch(now, &requests));
        });
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(&format!("keyshards{shards}_x{WAVE}"), |b| {
            let (store, round) = loaded_store(shards);
            let mut exec = ShardedExecutor::new(vec![store], shards);
            let mut now = SimTime::from_secs(3600);
            let mut id = 1u64;
            b.iter(|| {
                now += SimDuration::from_secs(60);
                let requests = wave(id, round);
                id += WAVE;
                black_box(exec.submit_batch(now, &requests));
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_key_sharded_serve);
criterion_main!(benches);
