//! Criterion: Cache Engine dictionary operations (paper §5.5 claims
//! sub-millisecond retrieve/use/remove; these land in nanoseconds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::engine::CacheEngine;
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::metadata::MetaKey;
use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

fn key(i: u32) -> MetaKey {
    MetaKey::update(JobId::new(1), Round::new(i / 16), ClientId::new(i % 16))
}

fn populated(n: u32) -> CacheEngine {
    let mut engine = CacheEngine::new();
    for i in 0..n {
        engine.record(
            key(i),
            vec![FunctionId::from_raw(u64::from(i % 64))],
            ByteSize::from_mb(83),
            SimTime::ZERO,
        );
    }
    engine
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_engine");
    group.sample_size(30);

    group.bench_function("record", |b| {
        let mut engine = populated(10_000);
        let mut i = 10_000u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            engine.record(
                key(i),
                vec![FunctionId::from_raw(u64::from(i % 64))],
                ByteSize::from_mb(83),
                SimTime::ZERO,
            );
        });
    });

    group.bench_function("locate", |b| {
        let engine = populated(10_000);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(engine.locations(&key(i)));
        });
    });

    group.bench_function("touch", |b| {
        let mut engine = populated(10_000);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(engine.touch(&key(i)));
        });
    });

    group.bench_function("drop_replica_10k_keys", |b| {
        b.iter_with_setup(
            || populated(10_000),
            |mut engine| {
                black_box(engine.drop_replica(FunctionId::from_raw(7)));
            },
        );
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
