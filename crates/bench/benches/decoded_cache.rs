//! Criterion: hit-path decode cost — decoded-value cache (`Arc` clone)
//! vs. re-running `Blob → JSON → MetaValue` on every access.
//!
//! Quantifies the tentpole win in isolation: a cache hit that re-parses
//! pays the full JSON decode of a client update per access; the decoded
//! layer pays it once per object lifetime. The end-to-end effect on
//! `FlStore::serve` is measured by `benches/serve_path.rs`
//! (`serve_p2_hit` / `serve_p1_inference_hit`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_fl::decoded::DecodedCache;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::metadata::{round_entries, MetaValue, RoundEntry};

fn entries() -> Vec<RoundEntry> {
    let cfg = FlJobConfig {
        rounds: 1,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    let model = cfg.model;
    let record = FlJobSim::new(cfg).next().expect("rounds");
    round_entries(&record, JobId::new(1), &model)
}

fn bench_hit_path(c: &mut Criterion) {
    let entries = entries();
    let mut group = c.benchmark_group("decoded_cache");
    group.sample_size(20);

    // Baseline: what the serve path did before the decoded layer — every
    // access re-parses the blob it already holds.
    group.bench_function("hit_reparse_per_access", |b| {
        b.iter(|| {
            let values: Vec<MetaValue> = entries
                .iter()
                .filter_map(|e| MetaValue::from_blob(&e.blob))
                .collect();
            black_box(values)
        });
    });

    // Decoded layer: the same read is an `Arc` clone after a one-time
    // parse (here seeded at ingest, as `FlStore::ingest_round` does).
    group.bench_function("hit_decoded_cache", |b| {
        let mut cache = DecodedCache::new();
        for e in &entries {
            cache.seed(e.key, &e.blob, e.value.clone());
        }
        b.iter(|| {
            let values: Vec<_> = entries
                .iter()
                .filter_map(|e| cache.get_or_decode(&e.key, &e.blob))
                .collect();
            black_box(values)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_hit_path);
criterion_main!(benches);
