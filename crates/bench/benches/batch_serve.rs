//! Criterion: batched vs sequential serving of same-replica-set requests
//! (simulation-side CPU cost). The batched path pays the per-request
//! liveness/refresh pass once per batch instead of once per request, so
//! `serve_batch` of N cache hits targeting the same replica set should
//! beat N sequential `serve` calls.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::api::{Request, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

fn job() -> FlJobConfig {
    FlJobConfig {
        rounds: 10,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(1))
    }
}

fn loaded_store(job: &FlJobConfig, records: &[RoundRecord]) -> FlStore {
    let cfg = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job.model)
    };
    let mut store = FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model);
    let mut now = SimTime::ZERO;
    for r in records {
        store.ingest_round(now, r);
        now += SimDuration::from_secs(60);
    }
    store
}

/// `n` P2 requests of one kind against the latest round: every request
/// needs the same keys, hence the same replica set — the batched liveness
/// pass and placement walk cover all of them at once.
fn p2_batch(
    job: &FlJobConfig,
    kind: WorkloadKind,
    round: flstore_fl::ids::Round,
    first_id: u64,
    n: usize,
) -> Vec<WorkloadRequest> {
    (0..n as u64)
        .map(|i| WorkloadRequest::new(RequestId::new(first_id + i), kind, job.job, round, None))
        .collect()
}

fn bench_batch_serve(c: &mut Criterion) {
    let job = job();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let round = records.last().expect("rounds").round;
    let mut group = c.benchmark_group("batch_serve");
    group.sample_size(20);

    // Two P2 workloads over the same full-round key set: tier scheduling
    // has a sub-µs kernel, so its serve cost is almost entirely the fixed
    // front-door work batching amortizes; malicious filtering shows the
    // same batch win diluted by a compute-heavy kernel.
    let cases = [
        ("sched", WorkloadKind::SchedulingCluster),
        ("filter", WorkloadKind::MaliciousFiltering),
    ];
    for (tag, kind) in cases {
        for n in [16usize, 64] {
            group.bench_function(&format!("{tag}_sequential_x{n}"), |b| {
                let mut store = loaded_store(&job, &records);
                let mut now = SimTime::from_secs(3600);
                let mut id = 0u64;
                b.iter(|| {
                    now += SimDuration::from_secs(60);
                    let requests = p2_batch(&job, kind, round, id, n);
                    id += n as u64;
                    for request in &requests {
                        black_box(store.serve(now, request).expect("servable"));
                    }
                });
            });

            group.bench_function(&format!("{tag}_batched_x{n}"), |b| {
                let mut store = loaded_store(&job, &records);
                let mut now = SimTime::from_secs(3600);
                let mut id = 0u64;
                b.iter(|| {
                    now += SimDuration::from_secs(60);
                    let requests = p2_batch(&job, kind, round, id, n);
                    id += n as u64;
                    for served in store.serve_batch(now, &requests) {
                        black_box(served.expect("servable"));
                    }
                });
            });

            // The same comparison through the typed front door (envelope
            // construction + routing included).
            group.bench_function(&format!("{tag}_front_door_batched_x{n}"), |b| {
                let mut store = loaded_store(&job, &records);
                let mut now = SimTime::from_secs(3600);
                let mut id = 0u64;
                b.iter(|| {
                    now += SimDuration::from_secs(60);
                    let requests: Vec<Request> = p2_batch(&job, kind, round, id, n)
                        .into_iter()
                        .map(Request::Serve)
                        .collect();
                    id += n as u64;
                    black_box(store.submit_batch(now, &requests));
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_batch_serve);
criterion_main!(benches);
