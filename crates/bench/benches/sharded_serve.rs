//! Criterion: sharded-executor scaling on the overhead-bound
//! same-replica-set workload. One wave of cache-hit tier-scheduling
//! requests (sub-µs kernel: serve cost is almost entirely fixed
//! front-door work) spread tenant-major over 16 tenants, served by:
//!
//! * the sequential `MultiTenantStore` front end (per-tenant
//!   `serve_batch` runs, single thread), and
//! * a `ShardedExecutor` at 1/2/4/8 shards (same per-tenant runs, fanned
//!   across worker threads).
//!
//! The executor's responses are bit-for-bit identical to the sequential
//! plane (enforced by `crates/core/tests/api_batch.rs`); this bench
//! quantifies the wall-clock side. Scaling is bounded by available cores
//! (`std::thread::available_parallelism`) and by the busiest shard's
//! tenant share (16 jobs hash to at most 6 on one shard at 4 shards).
//! The stand-in criterion reports p50/p95/p99 alongside mean/best.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::api::{Request, Service};
use flstore_core::store::FlStoreConfig;
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

const TENANTS: u32 = 16;

fn loaded_front() -> (MultiTenantStore, flstore_fl::ids::Round) {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&ModelArch::RESNET18)
    };
    let mut front = MultiTenantStore::new(template);
    let mut last = flstore_fl::ids::Round::ZERO;
    for j in 1..=TENANTS {
        let cfg = FlJobConfig {
            rounds: 6,
            ..FlJobConfig::quick_test(JobId::new(j))
        };
        front.register_job(cfg.job, cfg.model);
        let mut now = SimTime::ZERO;
        for record in FlJobSim::new(cfg.clone()) {
            last = record.round;
            front
                .ingest_round(now, cfg.job, &record)
                .expect("registered");
            now += SimDuration::from_secs(60);
        }
    }
    (front, last)
}

/// One wave: `per_tenant` consecutive cache-hit requests per tenant
/// (tenant-major, so both planes group them into per-tenant `serve_batch`
/// runs — the comparison isolates parallelism, not batching).
fn wave(first_id: u64, per_tenant: u64, round: flstore_fl::ids::Round) -> Vec<Request> {
    let mut requests = Vec::with_capacity((TENANTS as u64 * per_tenant) as usize);
    let mut id = first_id;
    for j in 1..=TENANTS {
        for _ in 0..per_tenant {
            requests.push(Request::Serve(WorkloadRequest::new(
                RequestId::new(id),
                WorkloadKind::SchedulingCluster,
                JobId::new(j),
                round,
                None,
            )));
            id += 1;
        }
    }
    requests
}

fn bench_sharded_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_serve");
    group.sample_size(20);

    // Small and large waves: the small wave exposes the executor's fixed
    // per-batch fan-out/merge overhead, the large one amortizes it so
    // scaling tracks cores × shard balance.
    for per_tenant in [4u64, 16] {
        let n = TENANTS as u64 * per_tenant;
        group.bench_function(&format!("sequential_x{n}"), |b| {
            let (mut front, round) = loaded_front();
            let mut now = SimTime::from_secs(3600);
            let mut id = 0u64;
            b.iter(|| {
                now += SimDuration::from_secs(60);
                let requests = wave(id, per_tenant, round);
                id += n;
                black_box(front.submit_batch(now, &requests));
            });
        });

        for shards in [1usize, 2, 4, 8] {
            group.bench_function(&format!("sharded{shards}_x{n}"), |b| {
                let (front, round) = loaded_front();
                let mut exec = ShardedExecutor::from_tenants(front, shards);
                let mut now = SimTime::from_secs(3600);
                let mut id = 0u64;
                b.iter(|| {
                    now += SimDuration::from_secs(60);
                    let requests = wave(id, per_tenant, round);
                    id += n;
                    black_box(exec.submit_batch(now, &requests));
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_sharded_serve);
criterion_main!(benches);
