//! Criterion: caching-policy decision costs (on_ingest / on_request /
//! victim selection) over a realistically sized cache index.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::engine::CacheEngine;
use flstore_core::policy::{CachingPolicy, EvictionDiscipline, ReactivePolicy, TailoredPolicy};
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::metadata::{round_blobs, MetaKey};
use flstore_serverless::function::FunctionId;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;
use flstore_workloads::request::{JobCatalog, RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

struct Fixture {
    catalog: JobCatalog,
    engine: CacheEngine,
    last_keys: Vec<MetaKey>,
    request: WorkloadRequest,
}

fn fixture() -> Fixture {
    let cfg = FlJobConfig {
        rounds: 12,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    let mut catalog = JobCatalog::new(cfg.job, cfg.model);
    let mut engine = CacheEngine::new();
    let mut last_keys = Vec::new();
    let mut last_round = flstore_fl::ids::Round::ZERO;
    for record in FlJobSim::new(cfg.clone()) {
        catalog.observe_round(&record);
        last_keys = round_blobs(&record, cfg.job, &cfg.model)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in &last_keys {
            engine.record(
                *k,
                vec![FunctionId::from_raw(0)],
                ByteSize::from_mb(45),
                SimTime::ZERO,
            );
        }
        last_round = record.round;
    }
    let request = WorkloadRequest::new(
        RequestId::new(1),
        WorkloadKind::MaliciousFiltering,
        cfg.job,
        last_round,
        None,
    );
    Fixture {
        catalog,
        engine,
        last_keys,
        request,
    }
}

fn bench_policies(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("policy_decisions");
    group.sample_size(30);

    group.bench_function("tailored_on_ingest", |b| {
        let mut policy = TailoredPolicy::new();
        b.iter(|| black_box(policy.on_ingest(&f.last_keys, &f.catalog, &f.engine)));
    });

    group.bench_function("tailored_on_request", |b| {
        let mut policy = TailoredPolicy::new();
        b.iter(|| black_box(policy.on_request(&f.request, &f.catalog, &f.engine)));
    });

    group.bench_function("tailored_victims", |b| {
        let mut policy = TailoredPolicy::new();
        b.iter(|| black_box(policy.victims(ByteSize::from_mb(100), &f.engine)));
    });

    group.bench_function("lru_victims", |b| {
        let mut policy = ReactivePolicy::new(EvictionDiscipline::Lru, 3);
        b.iter(|| black_box(policy.victims(ByteSize::from_mb(100), &f.engine)));
    });

    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
