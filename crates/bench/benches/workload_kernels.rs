//! Criterion: the numerical kernels behind the ten workloads, on a
//! realistic 10-update round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_fl::update::ModelUpdate;
use flstore_workloads::apps;

fn sample_round() -> RoundRecord {
    let cfg = FlJobConfig {
        rounds: 5,
        total_clients: 30,
        clients_per_round: 10,
        malicious_fraction: 0.2,
        weight_dim: 256,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    FlJobSim::new(cfg).last().expect("configured rounds")
}

fn bench_kernels(c: &mut Criterion) {
    let record = sample_round();
    let updates: Vec<&ModelUpdate> = record.updates.iter().collect();
    let mut group = c.benchmark_group("workload_kernels");
    group.sample_size(30);

    group.bench_function("cosine_similarity_round", |b| {
        b.iter(|| black_box(apps::cosine::run(&updates, &record.aggregate)));
    });

    group.bench_function("malicious_filtering_round", |b| {
        b.iter(|| black_box(apps::filtering::run(&updates)));
    });

    group.bench_function("kmeans_clustering_round", |b| {
        b.iter(|| black_box(apps::clustering::run(&updates, 5, 7)));
    });

    group.bench_function("incentives_leave_one_out", |b| {
        b.iter(|| black_box(apps::incentives::run(&updates, &record.aggregate)));
    });

    group.bench_function("tier_scheduling_round", |b| {
        b.iter(|| black_box(apps::sched_cluster::run(&updates)));
    });

    group.bench_function("inference_batch32", |b| {
        b.iter(|| black_box(apps::inference::run(&record.aggregate, 32, 9)));
    });

    let metrics = [&record.metrics];
    group.bench_function("oort_scheduling_pool30", |b| {
        b.iter(|| black_box(apps::sched_perf::run(&metrics, 10)));
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
