//! Criterion: end-to-end FLStore paths — round ingest and the cache-hit
//! serve path (simulation-side CPU cost, not virtual latency).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

fn job() -> FlJobConfig {
    FlJobConfig {
        rounds: 10,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(1))
    }
}

fn store_for(job: &FlJobConfig) -> FlStore {
    let cfg = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job.model)
    };
    FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model)
}

fn bench_serve(c: &mut Criterion) {
    let job = job();
    let records: Vec<RoundRecord> = FlJobSim::new(job.clone()).collect();
    let mut group = c.benchmark_group("flstore_paths");
    group.sample_size(20);

    group.bench_function("ingest_round", |b| {
        b.iter_with_setup(
            || store_for(&job),
            |mut store| {
                let mut now = SimTime::ZERO;
                for r in &records {
                    black_box(store.ingest_round(now, r));
                    now += SimDuration::from_secs(60);
                }
            },
        );
    });

    group.bench_function("serve_p2_hit", |b| {
        let mut store = store_for(&job);
        let mut now = SimTime::ZERO;
        for r in &records {
            store.ingest_round(now, r);
            now += SimDuration::from_secs(60);
        }
        let round = records.last().expect("rounds").round;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let request = WorkloadRequest::new(
                RequestId::new(i),
                WorkloadKind::MaliciousFiltering,
                job.job,
                round,
                None,
            );
            now += SimDuration::from_secs(60);
            black_box(store.serve(now, &request).expect("servable"));
        });
    });

    group.bench_function("serve_p1_inference_hit", |b| {
        let mut store = store_for(&job);
        let mut now = SimTime::ZERO;
        for r in &records {
            store.ingest_round(now, r);
            now += SimDuration::from_secs(60);
        }
        let round = records.last().expect("rounds").round;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let request = WorkloadRequest::new(
                RequestId::new(i),
                WorkloadKind::Inference,
                job.job,
                round,
                None,
            );
            now += SimDuration::from_secs(60);
            black_box(store.serve(now, &request).expect("servable"));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
