//! Criterion: Request Tracker operations (paper §5.5: <1 ms per op).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use flstore_core::tracker::RequestTracker;
use flstore_serverless::function::FunctionId;
use flstore_workloads::request::RequestId;

fn bench_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_tracker");
    group.sample_size(30);

    group.bench_function("dispatch", |b| {
        let tracker = RequestTracker::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracker.dispatch(RequestId::new(i), vec![FunctionId::from_raw(i % 64)]);
        });
    });

    group.bench_function("complete", |b| {
        let tracker = RequestTracker::new();
        for i in 0..100_000u64 {
            tracker.dispatch(RequestId::new(i), vec![FunctionId::from_raw(i % 64)]);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(tracker.complete(RequestId::new(i)));
        });
    });

    group.bench_function("status_read", |b| {
        let tracker = RequestTracker::new();
        for i in 0..100_000u64 {
            tracker.dispatch(RequestId::new(i), vec![FunctionId::from_raw(i % 64)]);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(tracker.is_done(RequestId::new(i)));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_tracker);
criterion_main!(benches);
