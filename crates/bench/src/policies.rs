//! Policy experiments: Fig. 11 (tailored vs traditional on the live trace),
//! Table 2 (hit rates on per-class lockstep traces), Fig. 18
//! (FLStore-Static ablation).

use serde_json::{json, Value};

use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_sim::stats::reduction_pct;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_trace::driver::TraceConfig;
use flstore_trace::scenario::{eval_job, flstore_for, PolicyVariant};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

use crate::util::{dollars, drive_unit, header, save_json, secs, subheader, Scale};

/// Fig. 11: per-request latency and cost of the policy variants.
pub fn fig11(scale: Scale) -> Value {
    header("Fig 11 — caching policies in FLStore: per-request latency and cost");
    let job = eval_job(ModelArch::EFFICIENTNET_V2_S, scale.rounds());
    let trace = TraceConfig {
        seed: 0xAB,
        requests: scale.requests(),
        window: scale.window(),
        kinds: WorkloadKind::ALL.to_vec(),
        events: None,
    };
    println!(
        "{:<18} {:>9} {:>11} {:>11} {:>12} {:>12}",
        "policy", "hit%", "mean lat", "p99 lat", "mean $/req", "total $"
    );
    let mut rows = Vec::new();
    for variant in PolicyVariant::FIG11 {
        let (report, _) = drive_unit(flstore_for(&job, variant, 0xF3), &job, &trace);
        let lat = report.latency_summary().expect("served");
        let cost = report.amortized_cost_summary().expect("served");
        println!(
            "{:<18} {:>8.1}% {:>11} {:>11} {:>12} {:>12}",
            variant.label(),
            report.hit_rate() * 100.0,
            secs(lat.mean),
            secs(lat.p99),
            dollars(cost.mean),
            dollars(report.total_cost.total().as_dollars()),
        );
        rows.push(json!({
            "policy": variant.label(),
            "hit_rate": report.hit_rate(),
            "mean_latency_secs": lat.mean,
            "p99_latency_secs": lat.p99,
            "mean_cost": cost.mean,
            "total_cost": report.total_cost.total().as_dollars(),
        }));
    }
    let v = json!({ "experiment": "fig11", "rows": rows });
    save_json("fig11", &v);
    v
}

/// One Table 2 lockstep trace: ingest round → request, with `cadence`
/// rounds between requests. Returns (hits, misses).
fn lockstep(kind: WorkloadKind, variant: PolicyVariant, rounds: u32, cadence: u32) -> (u64, u64) {
    let job = FlJobConfig {
        rounds,
        ..FlJobConfig::paper_eval(JobId::new(1), ModelArch::EFFICIENTNET_V2_S)
    };
    let mut store = flstore_for(&job, variant, 0xF4);
    let mut now = SimTime::ZERO;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut req = 0u64;
    let mut audited = None;
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        now += SimDuration::from_secs(45);
        if record.round.as_u32() > 0 && record.round.as_u32() % cadence == 0 {
            req += 1;
            let client = match kind.policy_class() {
                PolicyClass::P3AcrossRounds => {
                    if audited.is_none() {
                        audited = Some(record.updates[0].client);
                    }
                    audited
                }
                _ => None,
            };
            let request =
                WorkloadRequest::new(RequestId::new(req), kind, job.job, record.round, client);
            if let Ok(served) = store.serve(now, &request) {
                hits += served.measured.cache_hits as u64;
                misses += served.measured.cache_misses as u64;
            }
        }
        now += SimDuration::from_secs(45);
    }
    (hits, misses)
}

/// Table 2: cache-policy hit rates across the P2/P3/P4 workload classes.
pub fn table2(scale: Scale) -> Value {
    header("Table 2 — cache-policy performance across workload classes");
    let rounds = scale.table2_rounds();
    let policies = [
        PolicyVariant::Tailored,
        PolicyVariant::Fifo,
        PolicyVariant::Lfu,
        PolicyVariant::Lru,
    ];
    // (class label, workload, request cadence in rounds)
    let classes = [
        (
            "P2 (per-round apps)",
            WorkloadKind::MaliciousFiltering,
            1u32,
        ),
        ("P3 (across-round apps)", WorkloadKind::ReputationCalc, 6u32),
        ("P4 (metadata apps)", WorkloadKind::SchedulingPerf, 1u32),
    ];
    let mut out = Vec::new();
    for (label, kind, cadence) in classes {
        subheader(label);
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>7}",
            "policy", "hits", "misses", "total", "hit%"
        );
        for variant in policies {
            let name = if variant == PolicyVariant::Tailored {
                format!("FLStore ({})", kind.policy_class().short_name())
            } else {
                variant.label().replace("FLStore-", "")
            };
            let (hits, misses) = lockstep(kind, variant, rounds, cadence);
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            println!(
                "{:<18} {:>9} {:>9} {:>9} {:>6.2}",
                name, hits, misses, total, rate
            );
            out.push(json!({
                "class": label,
                "policy": name,
                "hits": hits,
                "misses": misses,
                "total": total,
                "hit_rate": rate,
            }));
        }
    }
    println!("\n(paper: FLStore 0.98–1.00 hit rate per class; FIFO/LFU/LRU 0.00)");
    let v = json!({ "experiment": "table2", "rows": out });
    save_json("table2", &v);
    v
}

/// Fig. 18: the FLStore-Static ablation — the workload switches from model
/// inference (P1) to malicious filtering (P2); the static policy keeps
/// caching for inference and pays the miss path on every request.
pub fn fig18(scale: Scale) -> Value {
    header("Fig 18 — FLStore vs FLStore-Static under a workload switch");
    let job = eval_job(ModelArch::MOBILENET_V3_SMALL, scale.rounds().min(200));
    let mut results = Vec::new();
    for variant in [PolicyVariant::Tailored, PolicyVariant::Static] {
        let mut store = flstore_for(&job, variant, 0xF5);
        let mut now = SimTime::ZERO;
        let mut sim = FlJobSim::new(job.clone());
        let mut latencies = Vec::new();
        let mut costs = Vec::new();
        let mut req = 0u64;
        // Phase 1: inference requests (both policies serve these from cache).
        // Phase 2 (after round 10): the workload switches to filtering.
        while let Some(record) = sim.next_round() {
            store.ingest_round(now, &record);
            now += SimDuration::from_secs(60);
            req += 1;
            let kind = if record.round.as_u32() < 10 {
                WorkloadKind::Inference
            } else {
                WorkloadKind::MaliciousFiltering
            };
            let request =
                WorkloadRequest::new(RequestId::new(req), kind, job.job, record.round, None);
            if let Ok(served) = store.serve(now, &request) {
                if kind == WorkloadKind::MaliciousFiltering {
                    latencies.push(served.measured.latency.total().as_secs_f64());
                    costs.push(served.measured.cost.total().as_dollars());
                }
            }
            now += SimDuration::from_secs(60);
        }
        let mean_lat = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let mean_cost = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
        println!(
            "{:<18} mean latency {:>10}   mean cost {:>12}  ({} filtering requests)",
            variant.label(),
            secs(mean_lat),
            dollars(mean_cost),
            latencies.len(),
        );
        results.push(json!({
            "policy": variant.label(),
            "mean_latency_secs": mean_lat,
            "mean_cost": mean_cost,
        }));
    }
    let lat_red = reduction_pct(
        results[1]["mean_latency_secs"].as_f64().unwrap_or(0.0),
        results[0]["mean_latency_secs"].as_f64().unwrap_or(0.0),
    );
    let cost_ratio = results[1]["mean_cost"].as_f64().unwrap_or(0.0)
        / results[0]["mean_cost"].as_f64().unwrap_or(1.0).max(1e-12);
    println!(
        "\n  adapting the policy cuts latency {lat_red:.1}% and cost {cost_ratio:.1}x \
         (paper: 99% and ~3x)"
    );
    let v = json!({
        "experiment": "fig18",
        "rows": results,
        "latency_reduction_pct": lat_red,
        "cost_ratio": cost_ratio,
    });
    save_json("fig18", &v);
    v
}
