//! # flstore-bench — the figure/table harness
//!
//! Regenerates every table and figure of the FLStore paper's evaluation
//! from the workspace's simulators. Each experiment prints the same
//! rows/series the paper reports and persists machine-readable JSON under
//! `results/`.
//!
//! Run everything:
//! ```sh
//! cargo run --release -p flstore-bench --bin figures -- all
//! ```
//! or a single experiment (`fig7`, `table2`, `overhead`, ...):
//! ```sh
//! cargo run --release -p flstore-bench --bin figures -- fig12
//! ```
//! Append `--fast` for one-tenth-scale smoke runs.
//!
//! Criterion microbenches (`cargo bench`) cover the per-operation costs of
//! the Cache Engine, Request Tracker, caching policies, workload kernels,
//! and the end-to-end serve path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breakdown;
pub mod cluster;
pub mod durability;
pub mod headline;
pub mod inventory;
pub mod jobs;
pub mod keyshard;
pub mod motivation;
pub mod netserve;
pub mod policies;
pub mod robustness;
pub mod tenancy;
pub mod util;

pub use util::Scale;
