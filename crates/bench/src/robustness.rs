//! Robustness experiments: Fig. 12 (scalability under parallel requests),
//! Fig. 13 (fault tolerance vs replica count), Fig. 14 (replication vs
//! re-fetching).

use serde_json::{json, Value};

use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::ReclaimModel;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_trace::driver::TraceConfig;
use flstore_trace::scenario::{eval_job, flstore_with_faults};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{dollars, drive_unit, header, save_json, secs, subheader, Scale};

/// Fig. 12's workload set.
const FIG12_WORKLOADS: [WorkloadKind; 5] = [
    WorkloadKind::MaliciousFiltering,
    WorkloadKind::CosineSimilarity,
    WorkloadKind::SchedulingCluster,
    WorkloadKind::Clustering,
    WorkloadKind::Inference,
];

/// Cached parallel function instances in Fig. 12.
const FIG12_REPLICAS: usize = 5;

/// Fig. 12: mean per-request latency/cost of `k` simultaneous requests,
/// k = 1..=10, with 5 cached function instances.
pub fn fig12(_scale: Scale) -> Value {
    header("Fig 12 — scalability: parallel requests vs 5 cached functions");
    let job = FlJobConfig {
        rounds: 20,
        ..eval_job(ModelArch::EFFICIENTNET_V2_S, 20)
    };
    println!(
        "{:<20} {}",
        "workload",
        (1..=10).map(|k| format!("{k:>8}")).collect::<String>()
    );
    let mut rows = Vec::new();
    for kind in FIG12_WORKLOADS {
        let mut lat_by_k = Vec::new();
        let mut cost_by_k = Vec::new();
        for k in 1..=10usize {
            // Fresh deployment per burst so queues start empty.
            let mut store = flstore_with_faults(&job, FIG12_REPLICAS, ReclaimModel::DISABLED, 7);
            let mut now = SimTime::ZERO;
            let mut last = None;
            for record in FlJobSim::new(job.clone()) {
                store.ingest_round(now, &record);
                last = Some(record.round);
                now += SimDuration::from_secs(60);
            }
            let round = last.expect("job ran");
            let mut lat_sum = 0.0;
            let mut cost_sum = 0.0;
            for i in 0..k {
                let request =
                    WorkloadRequest::new(RequestId::new(i as u64 + 1), kind, job.job, round, None);
                let served = store.serve(now, &request).expect("servable");
                lat_sum += served.measured.latency.total().as_secs_f64();
                cost_sum += served.measured.cost.total().as_dollars();
            }
            lat_by_k.push(lat_sum / k as f64);
            cost_by_k.push(cost_sum / k as f64);
        }
        println!(
            "{:<20} {}",
            kind.label(),
            lat_by_k
                .iter()
                .map(|l| format!("{:>7.2}s", l))
                .collect::<String>()
        );
        rows.push(json!({
            "workload": kind.label(),
            "mean_latency_by_parallelism": lat_by_k,
            "mean_cost_by_parallelism": cost_by_k,
        }));
    }
    println!("\n(latency stays flat up to 5 parallel requests — the cached instance");
    println!(" count — then queueing sets in, as in the paper's Fig. 12)");
    let v = json!({
        "experiment": "fig12",
        "cached_functions": FIG12_REPLICAS,
        "rows": rows
    });
    save_json("fig12", &v);
    v
}

/// Figs. 13/14: drive the 50-hour trace with fault injection at FI=1..5
/// replicas; report per-FI latency/cost and the replication-vs-refetch
/// comparison.
pub fn fig13_fig14(scale: Scale) -> Value {
    header("Fig 13 — fault tolerance: latency and cost vs function instances (FI)");
    let job = eval_job(ModelArch::EFFICIENTNET_V2_S, scale.rounds());
    let trace = TraceConfig {
        seed: 0xFA,
        requests: scale.requests(),
        window: scale.window(),
        kinds: WorkloadKind::ALL.to_vec(),
        events: None,
    };
    let reclaim = ReclaimModel::FAULT_INJECTION;
    println!(
        "{:<6} {:>11} {:>11} {:>10} {:>12} {:>12} {:>9}",
        "FI", "mean lat", "p99 lat", "miss/req", "refetch $", "replic. $", "faults"
    );
    let mut rows = Vec::new();
    for fi in 1..=5usize {
        let (report, store) = drive_unit(
            flstore_with_faults(&job, fi, reclaim, 0xF6 + fi as u64),
            &job,
            &trace,
        );
        let lat = report.latency_summary().expect("served");
        let misses: u64 = report.outcomes.iter().map(|o| o.cache_misses as u64).sum();
        let miss_rate = misses as f64 / report.outcomes.len().max(1) as f64;
        // Fig 14's two sides: transfer spend on re-fetching vs the spend on
        // keeping replicas alive and repaired.
        let refetch_cost: f64 = report
            .outcomes
            .iter()
            .map(|o| o.cost.transfer.as_dollars() + o.cost.requests.as_dollars())
            .sum();
        let replication_cost =
            report.infra_cost.as_dollars() + report.total_cost.compute.as_dollars() * 0.0; // repair billed in background compute
        println!(
            "{:<6} {:>11} {:>11} {:>10.2} {:>12} {:>12} {:>9}",
            fi,
            secs(lat.mean),
            secs(lat.p99),
            miss_rate,
            dollars(refetch_cost),
            dollars(replication_cost),
            store.faults_observed(),
        );
        rows.push(json!({
            "function_instances": fi,
            "mean_latency_secs": lat.mean,
            "p99_latency_secs": lat.p99,
            "misses_per_request": miss_rate,
            "refetch_cost": refetch_cost,
            "replication_cost": replication_cost,
            "faults_observed": store.faults_observed(),
            "total_cost": report.total_cost.total().as_dollars(),
        }));
    }

    subheader("Fig 14 — replication vs re-fetching");
    let fi1_refetch = rows[0]["refetch_cost"].as_f64().unwrap_or(0.0);
    let fi5_refetch = rows[4]["refetch_cost"].as_f64().unwrap_or(0.0);
    let fi5_replication = rows[4]["replication_cost"].as_f64().unwrap_or(0.0);
    println!(
        "  FI=1 re-fetch spend {} vs FI=5 re-fetch {} + replication upkeep {}",
        dollars(fi1_refetch),
        dollars(fi5_refetch),
        dollars(fi5_replication),
    );
    println!(
        "  latency: FI=1 {} -> FI=3 {} -> FI=5 {} (plateau from FI=3, paper Fig. 13)",
        secs(rows[0]["mean_latency_secs"].as_f64().unwrap_or(0.0)),
        secs(rows[2]["mean_latency_secs"].as_f64().unwrap_or(0.0)),
        secs(rows[4]["mean_latency_secs"].as_f64().unwrap_or(0.0)),
    );

    let v = json!({ "experiment": "fig13_fig14", "rows": rows });
    save_json("fig13_fig14", &v);
    v
}
