//! Regenerate the paper's tables and figures. See `flstore-bench` docs.

#![forbid(unsafe_code)]

use flstore_bench::{
    breakdown, cluster, durability, headline, inventory, jobs, keyshard, motivation, netserve,
    policies, robustness, tenancy, Scale,
};

type Experiment = fn(Scale) -> serde_json::Value;

/// `(id, runner, output)` — `output` is the JSON file each runner emits
/// under `results/` via `save_json`. `figures -- --list` prints this
/// column so the CI/verify output check derives its expected-file list
/// from the same table that runs the experiments; a mismatch between the
/// column and the runner's actual `save_json` name fails that check.
const EXPERIMENTS: &[(&str, Experiment, &str)] = &[
    ("fig1", motivation::fig1_fig2_fig10, "fig1_fig2_fig10"),
    ("fig4", breakdown::fig4, "fig4"),
    ("fig7", headline::fig7_fig8, "fig7_fig8"),
    ("fig9", headline::fig9_fig17, "fig9_fig17"),
    ("fig11", policies::fig11, "fig11"),
    ("fig12", robustness::fig12, "fig12"),
    ("fig13", robustness::fig13_fig14, "fig13_fig14"),
    ("fig15", headline::fig15_fig16, "fig15_fig16"),
    ("fig18", policies::fig18, "fig18"),
    ("fig19", inventory::fig19, "fig19"),
    ("table1", inventory::table1, "table1"),
    ("table2", policies::table2, "table2"),
    ("jobs", jobs::jobs, "jobs"),
    ("tenancy", tenancy::tenancy, "tenancy"),
    ("capacity", inventory::capacity, "capacity"),
    ("overhead", inventory::overhead, "overhead"),
    ("netserve", netserve::netserve, "netserve"),
    ("durability", durability::durability, "durability"),
    ("keyshard", keyshard::keyshard, "keyshard"),
    ("cluster", cluster::cluster, "cluster"),
];

/// Criterion bench targets (`cargo bench --bench <name>`), one per hot
/// path. `figures -- --list-benches` prints this inventory so tooling
/// discovers the microbenches from the same binary that runs the
/// experiments; keep it in sync with `[[bench]]` in Cargo.toml.
const BENCHES: &[(&str, &str)] = &[
    ("engine_ops", "Cache Engine record/touch/remove"),
    ("tracker_ops", "Request Tracker dispatch/complete"),
    (
        "policy_decisions",
        "caching-policy ingest/request/victim decisions",
    ),
    ("workload_kernels", "the ten workload compute kernels"),
    ("serve_path", "end-to-end round ingest and cache-hit serve"),
    ("decoded_cache", "decoded-value layer hits vs re-parsing"),
    (
        "batch_serve",
        "batched vs sequential serving of same-replica-set requests",
    ),
    (
        "sharded_serve",
        "sharded-executor scaling (1/2/4/8 shards) vs sequential serve_batch",
    ),
    (
        "key_sharded_serve",
        "one hot tenant: work-stealing serves at 1/2/4/8 key shards vs sequential",
    ),
];

/// The statistics every bench target reports per benchmark (the vendored
/// criterion stand-in): printed as the third `--list-benches` column so
/// tooling knows tail latency (p95/p99) is available.
const BENCH_STATS: &str = "mean/best/p50/p95/p99";

/// Aliases: a figure produced jointly with another maps to the same run.
const ALIASES: &[(&str, &str)] = &[
    ("fig2", "fig1"),
    ("fig10", "fig1"),
    ("fig8", "fig7"),
    ("fig17", "fig9"),
    ("fig14", "fig13"),
    ("fig16", "fig15"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        // Machine-readable manifest: one output file stem per experiment.
        for (_, _, output) in EXPERIMENTS {
            println!("{output}");
        }
        return;
    }
    if args.iter().any(|a| a == "--list-benches") {
        // Machine-readable bench inventory: one Criterion target per line,
        // tab-separated: name, what it measures, statistics reported.
        for (name, what) in BENCHES {
            println!("{name}\t{what}\t{BENCH_STATS}");
        }
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::Fast } else { Scale::Full };

    // `--threads N`: serve every experiment through an N-shard concurrent
    // executor; `--threads 0` resolves to every available core. Outputs
    // are byte-identical to a sequential run for ANY shard count (the
    // executor is bit-for-bit equivalent; CI diffs both runs to prove it).
    let mut threads = 1usize;
    // `--key-shards K`: partition every cache engine's MetaKey state into
    // K shards (the process-wide default; serialized configs keep the
    // field at 0, so ledger bytes are identical across settings).
    let mut key_shards: Option<usize> = None;
    let mut targets: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--fast" {
            continue;
        }
        if arg == "--threads" {
            threads = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads needs a shard count (0 = all available cores)");
                std::process::exit(2);
            });
            continue;
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().ok().unwrap_or_else(|| {
                eprintln!("--threads needs a shard count (0 = all available cores)");
                std::process::exit(2);
            });
            continue;
        }
        if arg == "--key-shards" {
            key_shards = Some(iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--key-shards needs a positive shard count");
                std::process::exit(2);
            }));
            continue;
        }
        if let Some(v) = arg.strip_prefix("--key-shards=") {
            key_shards = Some(v.parse().ok().unwrap_or_else(|| {
                eprintln!("--key-shards needs a positive shard count");
                std::process::exit(2);
            }));
            continue;
        }
        targets.push(arg.as_str());
    }
    if threads == 0 {
        threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        eprintln!("--threads 0: resolved to {threads} available core(s)");
    }
    flstore_bench::util::set_serving_threads(threads);
    if let Some(shards) = key_shards {
        flstore_bench::util::set_key_shards(shards);
    }

    let resolve = |name: &str| -> Option<&'static str> {
        if let Some((n, _, _)) = EXPERIMENTS.iter().find(|(n, _, _)| *n == name) {
            return Some(*n);
        }
        ALIASES.iter().find(|(a, _)| *a == name).map(|(_, t)| *t)
    };

    let to_run: Vec<&str> = if targets.is_empty() || targets.contains(&"all") {
        EXPERIMENTS.iter().map(|(n, _, _)| *n).collect()
    } else {
        let mut chosen = Vec::new();
        for t in &targets {
            match resolve(t) {
                Some(name) if !chosen.contains(&name) => chosen.push(name),
                Some(_) => {}
                None => {
                    eprintln!("unknown experiment '{t}'");
                    eprintln!(
                        "available: all {} (+aliases {})",
                        EXPERIMENTS
                            .iter()
                            .map(|(n, _, _)| *n)
                            .collect::<Vec<_>>()
                            .join(" "),
                        ALIASES
                            .iter()
                            .map(|(a, _)| *a)
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    std::process::exit(2);
                }
            }
        }
        chosen
    };

    println!(
        "FLStore reproduction — experiment harness ({} scale)",
        if fast { "fast" } else { "paper" }
    );
    if threads > 1 {
        println!("serving plane: sharded executor, {threads} worker threads");
    }
    if let Some(shards) = key_shards {
        println!("cache engines: {shards} MetaKey shard(s) per job");
    }
    #[cfg(feature = "lock-order")]
    eprintln!(
        "lock-order deadlock detector: active — every lock acquisition is \
         checked against the global acquisition-order graph"
    );
    for name in to_run {
        let run = EXPERIMENTS
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, f, _)| *f)
            .expect("resolved above");
        // Progress timing goes to stderr so stdout stays byte-reproducible;
        // allowlisted in analyze-allowlist.txt.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let _ = run(scale);
        eprintln!("[{name} done in {:.1}s]", started.elapsed().as_secs_f64());
    }
}
