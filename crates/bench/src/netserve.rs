//! Network serving plane experiment: the TCP front door measured over
//! real sockets.
//!
//! Two phases against an in-process [`NetServer`]:
//!
//! 1. **Closed loop** — one pipelined connection replays a synthetic
//!    trace (the same [`materialize_schedule`] envelopes the in-process
//!    driver serves) with a bounded window. The response checksum and
//!    outcome counts are pure payload facts and must be byte-identical
//!    run-to-run and across `--threads N`; latency and goodput are real
//!    wall-clock measurements and carry the `_wall` suffix that
//!    `scripts/compare_results.sh` normalizes.
//! 2. **Overload** — an open-loop burst over several connections against
//!    a deliberately tiny admission window (`max_inflight`), plus a
//!    connection-limit probe. Backpressure must surface as typed
//!    `Overloaded` envelopes: the transport-error count (resets,
//!    truncated streams) stays zero by contract and is asserted here.

use flstore_core::api::Service;
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_loadgen::{probe_connection_limit, run_closed, run_open_burst, LoadReport};
use flstore_net::server::{NetServer, ServerConfig};
use flstore_trace::driver::{materialize_schedule, TraceConfig};
use serde_json::{json, Value};

use crate::util::{header, save_json, secs, serving_threads, subheader, Scale};

/// Builds the served deployment, honouring the `--threads` knob the way
/// every other experiment does: N > 1 serves through an N-shard
/// [`ShardedExecutor`], which is bit-for-bit equivalent to sequential
/// submission — so the deterministic fields below must not move.
fn backend() -> Box<dyn Service + Send> {
    let cfg = FlJobConfig::quick_test(JobId::new(1));
    let store = FlStore::new(
        FlStoreConfig::for_model(&cfg.model),
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    );
    let threads = serving_threads();
    if threads > 1 {
        Box::new(ShardedExecutor::new(vec![store], threads))
    } else {
        Box::new(store)
    }
}

fn print_latency(report: &LoadReport) {
    if let Some(lat) = &report.latency {
        println!(
            "  latency: p50 {} / p95 {} / p99 {} (wall)",
            secs(lat.p50_us / 1e6),
            secs(lat.p95_us / 1e6),
            secs(lat.p99_us / 1e6),
        );
    }
    println!(
        "  goodput: {:.0} responses/s over {} (wall)",
        report.goodput_rps_wall,
        secs(report.elapsed_wall_s)
    );
}

/// The `netserve` experiment: closed-loop service through the network
/// front door, then deliberate overload.
pub fn netserve(scale: Scale) -> Value {
    header("Network serving plane: TCP front door under replay and overload");
    let job_cfg = FlJobConfig::quick_test(JobId::new(1));
    let mut trace = TraceConfig::smoke(11);
    trace.requests = scale.requests();
    trace.window = scale.window();
    let schedule = materialize_schedule(&job_cfg, &trace);

    // Phase 1: closed loop, ample admission — every envelope served.
    subheader(&format!(
        "closed loop: {} requests, one pipelined connection, window 16",
        schedule.len()
    ));
    let server = NetServer::bind(backend(), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let closed = run_closed(&addr, &schedule, 16, 0).expect("connect to in-process server");
    server.shutdown();
    assert_eq!(
        closed.transport_errors, 0,
        "closed-loop run lost responses in transport"
    );
    assert_eq!(
        closed.overloaded, 0,
        "closed-loop run was rejected despite default admission limits"
    );
    println!(
        "  {} sent, {} served, {} rejected (admission), checksum {:016x}",
        closed.sent, closed.ok, closed.rejected, closed.checksum
    );
    print_latency(&closed);

    // Phase 2a: open-loop burst against a tiny in-flight window. Every
    // request still gets a typed response; the split between served and
    // Overloaded depends on real socket timing, so those counts are
    // wall-clock facts (`_wall`), while `sent` and the zero
    // transport-error contract stay deterministic.
    let burst_conns = 4usize;
    let overload_config = ServerConfig {
        max_connections: 8,
        max_inflight: 2,
        ..ServerConfig::default()
    };
    subheader(&format!(
        "overload burst: {} requests over {} connections, max_inflight 2",
        schedule.len(),
        burst_conns
    ));
    let server = NetServer::bind(backend(), overload_config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let burst = run_open_burst(&addr, &schedule, burst_conns);
    server.shutdown();
    assert_eq!(
        burst.transport_errors, 0,
        "overload must surface as typed envelopes, not resets"
    );
    println!(
        "  {} sent, {} served, {} overloaded, {} rejected (admission) — 0 resets",
        burst.sent, burst.ok, burst.overloaded, burst.rejected
    );
    print_latency(&burst);

    // Phase 2b: connection-limit probe. Connections are admitted in
    // arrival order against a cap of 2, so the outcome split is exact:
    // the excess connections each read one typed Overloaded envelope and
    // a clean EOF.
    let probe_attempts = 5usize;
    let probe_config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    subheader(&format!(
        "connection probe: {probe_attempts} simultaneous connections, max_connections 2"
    ));
    let server = NetServer::bind(backend(), probe_config).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let (served, overloaded, errors) = probe_connection_limit(&addr, probe_attempts);
    server.shutdown();
    assert_eq!(errors, 0, "over-limit connections must close cleanly");
    assert_eq!((served, overloaded), (2, 3), "admission is exact and typed");
    println!("  {served} served, {overloaded} overloaded, {errors} transport errors");

    let v = json!({
        "experiment": "netserve",
        "closed_loop": {
            "requests": closed.sent,
            "ok": closed.ok,
            "rejected": closed.rejected,
            "checksum": format!("{:016x}", closed.checksum),
            "elapsed_s_wall": closed.elapsed_wall_s,
            "goodput_rps_wall": closed.goodput_rps_wall,
            "p50_us_wall": closed.latency.map(|l| l.p50_us).unwrap_or(0.0),
            "p95_us_wall": closed.latency.map(|l| l.p95_us).unwrap_or(0.0),
            "p99_us_wall": closed.latency.map(|l| l.p99_us).unwrap_or(0.0),
        },
        "overload_burst": {
            "requests": burst.sent,
            "connections": burst_conns,
            "max_inflight": 2,
            "transport_errors": burst.transport_errors,
            "ok_wall": burst.ok,
            "overloaded_wall": burst.overloaded,
            "rejected_wall": burst.rejected,
            "goodput_rps_wall": burst.goodput_rps_wall,
            "p99_us_wall": burst.latency.map(|l| l.p99_us).unwrap_or(0.0),
        },
        "connection_probe": {
            "attempts": probe_attempts,
            "max_connections": 2,
            "served": served,
            "overloaded": overloaded,
            "transport_errors": errors,
        },
    });
    save_json("netserve", &v);
    v
}
