//! Motivation experiments: Fig. 1 (non-training share of per-round
//! latency), Fig. 2 (share of per-round cost), Fig. 10 (overall per-round
//! cost with vs without FLStore).

use serde_json::{json, Value};

use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_sim::stats::reduction_pct;
use flstore_trace::driver::{DriveReport, TraceConfig};
use flstore_trace::scenario::{flstore_for, objstore_agg, PolicyVariant};
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{dollars, drive_unit, header, save_json, secs, Scale};

/// Aggregator-side seconds spent per training round (receiving updates and
/// running FedAvg) — the only part of training the aggregator bills for.
const AGGREGATION_SECS: f64 = 12.0;

struct TrainingProfile {
    /// Mean wall-clock seconds per training round (slowest participant).
    round_secs: f64,
    /// Aggregator cost per training round (dollars).
    round_cost: f64,
}

fn training_profile(scale: Scale) -> TrainingProfile {
    let job = FlJobConfig {
        rounds: scale.rounds().min(200), // the trajectory stabilizes quickly
        ..FlJobConfig::motivation(flstore_fl::ids::JobId::new(1))
    };
    let records: Vec<_> = FlJobSim::new(job).collect();
    let round_secs = records
        .iter()
        .map(|r| r.metrics.training_round_secs + AGGREGATION_SECS)
        .sum::<f64>()
        / records.len() as f64;
    // The aggregator is busy for the aggregation slice of each round.
    let vm = flstore_cloud::pricing::VmPricing::ML_M5_4XLARGE;
    let round_cost = vm
        .duration(flstore_sim::time::SimDuration::from_secs_f64(
            AGGREGATION_SECS,
        ))
        .as_dollars();
    TrainingProfile {
        round_secs,
        round_cost,
    }
}

fn per_kind_means(report: &DriveReport) -> Vec<(WorkloadKind, f64, f64)> {
    let n = report.outcomes.len().max(1);
    let infra_share = report.infra_cost.as_dollars() / n as f64;
    WorkloadKind::ALL
        .iter()
        .filter_map(|kind| {
            let outcomes = report.by_kind(*kind);
            if outcomes.is_empty() {
                return None;
            }
            let lat = outcomes
                .iter()
                .map(|o| o.latency.total().as_secs_f64())
                .sum::<f64>()
                / outcomes.len() as f64;
            let cost = outcomes
                .iter()
                .map(|o| o.cost.total().as_dollars() + infra_share)
                .sum::<f64>()
                / outcomes.len() as f64;
            Some((*kind, lat, cost))
        })
        .collect()
}

/// Figs. 1, 2, 10 share one pair of drives (ObjStore-Agg and FLStore on the
/// motivation job), so they are produced together.
pub fn fig1_fig2_fig10(scale: Scale) -> Value {
    header("Fig 1/2/10 — non-training share of per-round latency and cost");
    println!("setup: 200-client pool, EfficientNetV2-S, CIFAR-10-class job\n");

    let training = training_profile(scale);
    let job = FlJobConfig {
        rounds: scale.rounds(),
        ..FlJobConfig::motivation(flstore_fl::ids::JobId::new(1))
    };
    let trace = TraceConfig {
        seed: 0xCAFE,
        requests: scale.requests(),
        window: scale.window(),
        kinds: WorkloadKind::ALL.to_vec(),
        events: None,
    };
    let (base_report, _) = drive_unit(objstore_agg(&job), &job, &trace);
    let (fl_report, _) = drive_unit(
        flstore_for(&job, PolicyVariant::Tailored, 0xF2),
        &job,
        &trace,
    );

    let base_rows = per_kind_means(&base_report);
    let fl_rows = per_kind_means(&fl_report);

    println!(
        "{:<20} {:>11} {:>11} {:>8} | {:>11} {:>11} {:>8}",
        "application", "train s", "nontrain s", "share%", "train $", "nontrain $", "share%"
    );
    let mut rows = Vec::new();
    for (kind, lat, cost) in &base_rows {
        let lat_share = lat / (lat + training.round_secs) * 100.0;
        let cost_share = cost / (cost + training.round_cost) * 100.0;
        println!(
            "{:<20} {:>11} {:>11} {:>7.0}% | {:>11} {:>11} {:>7.0}%",
            kind.label(),
            secs(training.round_secs),
            secs(*lat),
            lat_share,
            dollars(training.round_cost),
            dollars(*cost),
            cost_share,
        );
        rows.push(json!({
            "workload": kind.label(),
            "training_secs": training.round_secs,
            "nontraining_secs": lat,
            "latency_share_pct": lat_share,
            "training_cost": training.round_cost,
            "nontraining_cost": cost,
            "cost_share_pct": cost_share,
        }));
    }

    crate::util::subheader("Fig 10 — per-round cost with vs without FLStore");
    println!(
        "{:<20} {:>13} {:>13} {:>9}",
        "application", "without", "with FLStore", "reduce%"
    );
    let mut fig10 = Vec::new();
    for ((kind, _, base_cost), (_, _, fl_cost)) in base_rows.iter().zip(&fl_rows) {
        let without = training.round_cost + base_cost;
        let with = training.round_cost + fl_cost;
        println!(
            "{:<20} {:>13} {:>13} {:>8.0}%",
            kind.label(),
            dollars(without),
            dollars(with),
            reduction_pct(without, with),
        );
        fig10.push(json!({
            "workload": kind.label(),
            "without_flstore": without,
            "with_flstore": with,
            "reduction_pct": reduction_pct(without, with),
        }));
    }

    let v = json!({
        "experiment": "fig1_fig2_fig10",
        "training_round_secs": training.round_secs,
        "training_round_cost": training.round_cost,
        "fig1_fig2": rows,
        "fig10": fig10,
    });
    save_json("fig1_fig2_fig10", &v);
    v
}
