//! Headline comparisons: Figs. 7, 8 (FLStore vs ObjStore-Agg per request),
//! Fig. 9 + 17 (vs Cache-Agg), Figs. 15, 16 (total time/cost breakups).

use serde_json::{json, Value};

use flstore_fl::zoo::ModelArch;
use flstore_sim::stats::{reduction_pct, Summary};
use flstore_trace::driver::DriveReport;
use flstore_trace::scenario::{cache_agg, eval_job, flstore_for, objstore_agg, PolicyVariant};
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{dollars, drive_unit, header, save_json, secs, subheader, Scale};

/// Per-workload latency and amortized-cost summaries of one drive.
fn kind_rows(report: &DriveReport, kinds: &[WorkloadKind]) -> Vec<Value> {
    let n = report.outcomes.len().max(1);
    let infra_share = report.infra_cost.as_dollars() / n as f64;
    kinds
        .iter()
        .filter_map(|kind| {
            let lat: Vec<f64> = report
                .by_kind(*kind)
                .iter()
                .map(|o| o.latency.total().as_secs_f64())
                .collect();
            let cost: Vec<f64> = report
                .by_kind(*kind)
                .iter()
                .map(|o| o.cost.total().as_dollars() + infra_share)
                .collect();
            let lat = Summary::from_values(&lat)?;
            let cost = Summary::from_values(&cost)?;
            Some(json!({
                "workload": kind.label(),
                "latency": { "mean": lat.mean, "p25": lat.p25, "p50": lat.p50,
                              "p75": lat.p75, "max": lat.max },
                "cost": { "mean": cost.mean, "p50": cost.p50, "max": cost.max },
            }))
        })
        .collect()
}

fn print_rows(label_a: &str, rows_a: &[Value], label_b: &str, rows_b: &[Value], money: bool) {
    println!(
        "{:<20} {:>12} {:>12} {:>10} | {:>12} {:>12}",
        "workload",
        format!("{label_a} mean"),
        "p50",
        "reduce%",
        format!("{label_b} mean"),
        "p50"
    );
    for (a, b) in rows_a.iter().zip(rows_b) {
        let field = if money { "cost" } else { "latency" };
        let fmt = |v: f64| if money { dollars(v) } else { secs(v) };
        let mean_a = a[field]["mean"].as_f64().unwrap_or(0.0);
        let mean_b = b[field]["mean"].as_f64().unwrap_or(0.0);
        println!(
            "{:<20} {:>12} {:>12} {:>9.1}% | {:>12} {:>12}",
            a["workload"].as_str().unwrap_or("?"),
            fmt(mean_a),
            fmt(a[field]["p50"].as_f64().unwrap_or(0.0)),
            reduction_pct(mean_b, mean_a),
            fmt(mean_b),
            fmt(b[field]["p50"].as_f64().unwrap_or(0.0)),
        );
    }
}

fn run_pair(model: ModelArch, scale: Scale, baseline: &str) -> (DriveReport, DriveReport) {
    let job = eval_job(model, scale.rounds());
    let trace = flstore_trace::driver::TraceConfig {
        seed: 0xBEEF,
        requests: scale.requests(),
        window: scale.window(),
        kinds: if baseline == "cache" {
            WorkloadKind::CACHE_AGG_SET.to_vec()
        } else {
            WorkloadKind::ALL.to_vec()
        },
        events: None,
    };
    let (fl_report, _) = drive_unit(
        flstore_for(&job, PolicyVariant::Tailored, 0xF1),
        &job,
        &trace,
    );
    let base_report = if baseline == "cache" {
        drive_unit(cache_agg(&job), &job, &trace).0
    } else {
        drive_unit(objstore_agg(&job), &job, &trace).0
    };
    (fl_report, base_report)
}

/// Fig. 7 (latency) and Fig. 8 (cost): FLStore vs ObjStore-Agg per request,
/// ten workloads, four models.
pub fn fig7_fig8(scale: Scale) -> Value {
    header("Fig 7/8 — FLStore vs ObjStore-Agg: per-request latency and cost");
    let mut out = Vec::new();
    for model in ModelArch::EVALUATION {
        subheader(&format!("model: {}", model.name));
        let (fl, base) = run_pair(model, scale, "objstore");
        let fl_rows = kind_rows(&fl, &WorkloadKind::ALL);
        let base_rows = kind_rows(&base, &WorkloadKind::ALL);
        println!("latency:");
        print_rows("FLStore", &fl_rows, "ObjStore", &base_rows, false);
        println!("cost (infra amortized):");
        print_rows("FLStore", &fl_rows, "ObjStore", &base_rows, true);

        let fl_lat = fl.latency_summary().expect("served");
        let base_lat = base.latency_summary().expect("served");
        let fl_cost = fl.amortized_cost_summary().expect("served");
        let base_cost = base.amortized_cost_summary().expect("served");
        println!(
            "\n  overall: latency {} -> {} ({:.1}% less), cost {} -> {} ({:.1}% less)",
            secs(base_lat.mean),
            secs(fl_lat.mean),
            reduction_pct(base_lat.mean, fl_lat.mean),
            dollars(base_cost.mean),
            dollars(fl_cost.mean),
            reduction_pct(base_cost.mean, fl_cost.mean),
        );
        out.push(json!({
            "model": model.name,
            "flstore": fl_rows,
            "objstore_agg": base_rows,
            "overall": {
                "latency_reduction_pct": reduction_pct(base_lat.mean, fl_lat.mean),
                "cost_reduction_pct": reduction_pct(base_cost.mean, fl_cost.mean),
                "flstore_hit_rate": fl.hit_rate(),
            },
        }));
    }
    let v = json!({ "experiment": "fig7_fig8", "models": out });
    save_json("fig7_fig8", &v);
    v
}

/// Fig. 9 (per request) and Fig. 17 (window totals): FLStore vs Cache-Agg,
/// six workloads, EfficientNet.
pub fn fig9_fig17(scale: Scale) -> Value {
    header("Fig 9/17 — FLStore vs Cache-Agg (ElastiCache-class data plane)");
    let (fl, base) = run_pair(ModelArch::EFFICIENTNET_V2_S, scale, "cache");
    let fl_rows = kind_rows(&fl, &WorkloadKind::CACHE_AGG_SET);
    let base_rows = kind_rows(&base, &WorkloadKind::CACHE_AGG_SET);
    println!("latency:");
    print_rows("FLStore", &fl_rows, "Cache-Agg", &base_rows, false);
    println!("cost (infra amortized):");
    print_rows("FLStore", &fl_rows, "Cache-Agg", &base_rows, true);

    let fl_lat = fl.latency_summary().expect("served");
    let base_lat = base.latency_summary().expect("served");
    let fl_cost = fl.amortized_cost_summary().expect("served");
    let base_cost = base.amortized_cost_summary().expect("served");

    subheader("Fig 17 — window totals");
    let fl_hours: f64 = fl
        .outcomes
        .iter()
        .map(|o| o.latency.total().as_hours_f64())
        .sum();
    let base_hours: f64 = base
        .outcomes
        .iter()
        .map(|o| o.latency.total().as_hours_f64())
        .sum();
    println!(
        "  accumulated request time: Cache-Agg {base_hours:.2} h vs FLStore {fl_hours:.2} h \
         ({:.1}% less)",
        reduction_pct(base_hours, fl_hours)
    );
    let fl_total = fl.total_cost.total().as_dollars();
    let base_total = base.total_cost.total().as_dollars();
    println!(
        "  window cost: Cache-Agg {} vs FLStore {} ({:.1}% less, {} saved)",
        dollars(base_total),
        dollars(fl_total),
        reduction_pct(base_total, fl_total),
        dollars(base_total - fl_total),
    );

    let v = json!({
        "experiment": "fig9_fig17",
        "flstore": fl_rows,
        "cache_agg": base_rows,
        "overall": {
            "latency_reduction_pct": reduction_pct(base_lat.mean, fl_lat.mean),
            "cost_reduction_pct": reduction_pct(base_cost.mean, fl_cost.mean),
            "window_hours": { "cache_agg": base_hours, "flstore": fl_hours },
            "window_cost": { "cache_agg": base_total, "flstore": fl_total },
        },
    });
    save_json("fig9_fig17", &v);
    v
}

/// Figs. 15/16: total time and cost breakup (communication vs computation)
/// over the window, per model.
pub fn fig15_fig16(scale: Scale) -> Value {
    header("Fig 15/16 — total time and cost breakup over the window");
    let mut out = Vec::new();
    println!(
        "{:<26} {:>11} {:>11} {:>11} | {:>11} {:>11}",
        "model", "base comm", "base comp", "FLStore", "base $", "FLStore $"
    );
    for model in ModelArch::EVALUATION {
        let (fl, base) = run_pair(model, scale, "objstore");
        let base_comm: f64 = base
            .outcomes
            .iter()
            .map(|o| o.latency.communication.as_hours_f64())
            .sum();
        let base_comp: f64 = base
            .outcomes
            .iter()
            .map(|o| (o.latency.computation + o.latency.queueing).as_hours_f64())
            .sum();
        let fl_total: f64 = fl
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_hours_f64())
            .sum();
        let base_cost = base.total_cost.total().as_dollars();
        let fl_cost = fl.total_cost.total().as_dollars();
        println!(
            "{:<26} {:>10.2}h {:>10.2}h {:>10.2}h | {:>11} {:>11}",
            model.name,
            base_comm,
            base_comp,
            fl_total,
            dollars(base_cost),
            dollars(fl_cost),
        );
        out.push(json!({
            "model": model.name,
            "objstore_agg": {
                "comm_hours": base_comm,
                "comp_hours": base_comp,
                "comm_fraction": base_comm / (base_comm + base_comp).max(1e-12),
                "total_cost": base_cost,
                "comm_cost": base.total_cost.communication().as_dollars(),
            },
            "flstore": { "total_hours": fl_total, "total_cost": fl_cost },
            "time_reduction_pct": reduction_pct(base_comm + base_comp, fl_total),
            "cost_reduction_pct": reduction_pct(base_cost, fl_cost),
        }));
    }
    println!("\n(the baseline is communication-bound; FLStore's total sits near the");
    println!(" baseline's computation column, as in the paper's Figs. 15–16)");
    let v = json!({ "experiment": "fig15_fig16", "models": out });
    save_json("fig15_fig16", &v);
    v
}
