//! Report formatting, result persistence, and the experiment-wide
//! serving-parallelism knob.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use flstore_exec::ShardUnit;
use flstore_fl::job::FlJobConfig;
use flstore_trace::driver::{drive_parallel, BatchConfig, DriveReport, TraceConfig};
use serde_json::Value;

/// Worker shards the experiments serve through (`figures -- --threads N`).
/// 1 (the default) drives every system in-thread, exactly as before the
/// parallel plane existed.
static SERVING_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the shard count every subsequent drive uses (clamped to ≥ 1).
pub fn set_serving_threads(n: usize) {
    SERVING_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The configured shard count.
pub fn serving_threads() -> usize {
    SERVING_THREADS.load(Ordering::Relaxed)
}

/// Sets the process-wide default MetaKey shard count every cache engine
/// built from a `key_shards: 0` config uses (`figures -- --key-shards K`).
/// The engine's state split is unobservable by construction — responses,
/// ledgers, and window costs are byte-identical at any K (CI-enforced by
/// diffing a `--threads 4 --key-shards 4` sweep against sequential) —
/// and serialized configs keep the field at 0, so ledger bytes never
/// encode the knob.
pub fn set_key_shards(n: usize) {
    flstore_core::engine::set_default_key_shards(n);
}

/// Drives a serving system through the trace, honouring the `--threads`
/// knob: with N > 1 the system serves behind an N-shard
/// `flstore_exec::ShardedExecutor`. The executor is bit-for-bit
/// equivalent to sequential submission, so figure data is byte-identical
/// either way — that equivalence is CI-enforced by diffing sequential
/// and `--threads 4` runs. Returns the report plus the system itself for
/// post-drive inspection.
pub fn drive_unit<U: ShardUnit + 'static>(
    unit: U,
    job: &FlJobConfig,
    trace: &TraceConfig,
) -> (DriveReport, U) {
    drive_parallel(unit, job, trace, BatchConfig::SEQUENTIAL, serving_threads())
}

/// Experiment scale: `Full` reproduces the paper's parameters; `Fast`
/// divides rounds/requests by ten for quick smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (1000 rounds, 3000 requests, 50 h).
    Full,
    /// One-tenth scale for smoke runs.
    Fast,
}

impl Scale {
    /// Training rounds per job.
    pub fn rounds(self) -> u32 {
        match self {
            Scale::Full => 1000,
            Scale::Fast => 100,
        }
    }

    /// Rounds for the Table 2 hit-rate trace (paper: 2000).
    pub fn table2_rounds(self) -> u32 {
        match self {
            Scale::Full => 2000,
            Scale::Fast => 200,
        }
    }

    /// Non-training requests per drive.
    pub fn requests(self) -> usize {
        match self {
            Scale::Full => 3000,
            Scale::Fast => 300,
        }
    }

    /// Experiment window.
    pub fn window(self) -> flstore_sim::time::SimDuration {
        match self {
            Scale::Full => flstore_sim::time::SimDuration::from_hours(50),
            Scale::Fast => flstore_sim::time::SimDuration::from_hours(5),
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Prints a sub-header.
pub fn subheader(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Writes an experiment's JSON payload under `results/` (override the
/// directory with `FLSTORE_RESULTS_DIR`, e.g. so smoke runs don't clobber
/// full-scale outputs).
pub fn save_json(name: &str, value: &Value) {
    let dir = std::env::var("FLSTORE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if fs::create_dir_all(&dir).is_err() {
        return; // read-only checkout: printing is enough
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(body) = serde_json::to_string_pretty(value) {
        let _ = fs::write(&path, body);
        println!("[saved {}]", path.display());
    }
}

/// Formats seconds compactly.
pub fn secs(v: f64) -> String {
    if v < 0.001 {
        format!("{:.1}µs", v * 1e6)
    } else if v < 1.0 {
        format!("{:.1}ms", v * 1e3)
    } else if v < 600.0 {
        format!("{v:.2}s")
    } else {
        format!("{:.2}h", v / 3600.0)
    }
}

/// Formats dollars compactly.
pub fn dollars(v: f64) -> String {
    if v == 0.0 {
        "$0".to_string()
    } else if v < 0.001 {
        format!("${v:.2e}")
    } else if v < 1.0 {
        format!("${v:.4}")
    } else {
        format!("${v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert_eq!(Scale::Full.rounds(), 1000);
        assert_eq!(Scale::Fast.rounds(), 100);
        assert!(Scale::Full.window() > Scale::Fast.window());
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.01), "10.0ms");
        assert_eq!(secs(7200.0), "2.00h");
        assert_eq!(dollars(0.05), "$0.0500");
        assert_eq!(dollars(12.0), "$12.00");
        assert_eq!(dollars(0.0), "$0");
    }
}
