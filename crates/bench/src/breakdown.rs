//! Fig. 4: communication vs computation latency of non-training workloads
//! when a serverless function fetches its inputs from a cloud object store
//! (the paper's §2.3 measurement that motivates unifying the planes).

use serde_json::{json, Value};

use flstore_cloud::network::NetworkProfile;
use flstore_fl::zoo::ModelArch;
use flstore_serverless::function::FunctionConfig;
use flstore_sim::bytes::ByteSize;
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{header, save_json, secs, Scale};

/// The five workloads and three models of the paper's Fig. 4.
const FIG4_WORKLOADS: [WorkloadKind; 5] = [
    WorkloadKind::CosineSimilarity,
    WorkloadKind::Debugging,
    WorkloadKind::Inference,
    WorkloadKind::MaliciousFiltering,
    WorkloadKind::SchedulingCluster,
];

const FIG4_MODELS: [ModelArch; 3] = [
    ModelArch::RESNET18,
    ModelArch::EFFICIENTNET_V2_S,
    ModelArch::MOBILENET_V3_SMALL,
];

/// Inputs per request: a 10-client round of updates plus the aggregate.
const ROUND_OBJECTS: usize = 11;

pub(crate) fn comm_comp(kind: WorkloadKind, model: &ModelArch) -> (f64, f64) {
    let round_bytes = ByteSize::from_mb_f64(model.size_mb) * ROUND_OBJECTS as u64;
    let comm = NetworkProfile::OBJECT_STORE
        .batch_transfer_time(ROUND_OBJECTS, round_bytes, 10)
        .as_secs_f64();
    let function = if model.size_mb > 50.0 {
        FunctionConfig::LARGE
    } else {
        FunctionConfig::SMALL
    };
    let comp = kind
        .work_units(ROUND_OBJECTS, model.compute_scale())
        .duration_on(function.compute_profile())
        .as_secs_f64();
    (comm, comp)
}

/// Fig. 4: per-workload communication and computation latency.
pub fn fig4(_scale: Scale) -> Value {
    header("Fig 4 — communication vs computation latency of non-training workloads");
    println!("(serverless function compute; inputs fetched from the object store)\n");
    println!(
        "{:<20} {:>16} {:>12} {:>12}",
        "workload", "model", "comm", "comp"
    );
    let mut rows = Vec::new();
    let mut comm_sum = 0.0;
    let mut comp_sum = 0.0;
    let mut count = 0.0;
    for kind in FIG4_WORKLOADS {
        for model in &FIG4_MODELS {
            let (comm, comp) = comm_comp(kind, model);
            println!(
                "{:<20} {:>16} {:>12} {:>12}",
                kind.label(),
                model.name,
                secs(comm),
                secs(comp)
            );
            comm_sum += comm;
            comp_sum += comp;
            count += 1.0;
            rows.push(json!({
                "workload": kind.label(),
                "model": model.name,
                "comm_secs": comm,
                "comp_secs": comp,
            }));
        }
    }
    let avg_comm = comm_sum / count;
    let avg_comp = comp_sum / count;
    println!(
        "\n  averages: comm {} | comp {} | ratio {:.0}x  (paper: 89 s vs 2.8 s ≈ 31x)",
        secs(avg_comm),
        secs(avg_comp),
        avg_comm / avg_comp.max(1e-9),
    );
    let v = json!({
        "experiment": "fig4",
        "rows": rows,
        "avg_comm_secs": avg_comm,
        "avg_comp_secs": avg_comp,
    });
    save_json("fig4", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficientnet_round_fetch_near_paper() {
        let (comm, comp) = comm_comp(
            WorkloadKind::MaliciousFiltering,
            &ModelArch::EFFICIENTNET_V2_S,
        );
        assert!((80.0..105.0).contains(&comm), "comm {comm}");
        assert!(comp < 5.0, "comp {comp}");
    }

    #[test]
    fn communication_dominates_everywhere() {
        for kind in FIG4_WORKLOADS {
            for model in &FIG4_MODELS {
                let (comm, comp) = comm_comp(kind, model);
                assert!(comm > comp, "{kind} on {}: {comm} vs {comp}", model.name);
            }
        }
    }
}
