//! §A.1 (second aspect): scalability across *parallel FL jobs* — multiple
//! tenants on one FLStore deployment (paper Appendix A multi-tenancy).
//!
//! Each job gets an isolated cache (functions, placement index, policy), so
//! adding tenants must not degrade any one tenant's latency; total cost
//! grows linearly with active tenants instead of requiring a bigger
//! always-on aggregator.

use std::sync::Arc;

use serde_json::{json, Value};

use flstore_core::api::{Request, Response, Service};
use flstore_core::store::FlStoreConfig;
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{dollars, header, save_json, secs, serving_threads, Scale};

const ROUNDS: u32 = 20;
const REQUESTS_PER_JOB: usize = 20;

fn job_cfg(job: u32) -> FlJobConfig {
    FlJobConfig {
        rounds: ROUNDS,
        ..FlJobConfig::paper_eval(JobId::new(job), ModelArch::EFFICIENTNET_V2_S)
    }
}

/// Runs `n_jobs` tenants through training + a request mix; returns
/// (mean per-request latency secs, total cost dollars).
///
/// The tenants serve through the typed front door; with
/// `figures -- --threads N` the front end is split across an N-shard
/// `ShardedExecutor`, so each request wave fans out across worker
/// threads. The executor is bit-for-bit equivalent to the sequential
/// front end, so the figure's numbers do not depend on the thread count.
fn run_tenants(n_jobs: u32) -> (f64, f64) {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&ModelArch::EFFICIENTNET_V2_S)
    };
    let mut front = MultiTenantStore::new(template);
    let mut sims = Vec::new();
    for j in 1..=n_jobs {
        let cfg = job_cfg(j);
        front.register_job(cfg.job, cfg.model);
        sims.push((cfg.job, FlJobSim::new(cfg)));
    }
    let threads = serving_threads();
    if threads > 1 {
        let mut exec = ShardedExecutor::from_tenants(front, threads);
        run_tenant_waves(&mut exec, sims)
    } else {
        run_tenant_waves(&mut front, sims)
    }
}

/// The experiment body, generic over the serving plane (sequential
/// front end or sharded executor).
fn run_tenant_waves<S: Service>(front: &mut S, mut sims: Vec<(JobId, FlJobSim)>) -> (f64, f64) {
    let n_jobs = sims.len() as u32;

    // Interleaved training: all jobs progress in lockstep.
    let mut now = SimTime::ZERO;
    let mut last_round = None;
    for _ in 0..ROUNDS {
        for (job, sim) in sims.iter_mut() {
            if let Some(record) = sim.next_round() {
                last_round = Some(record.round);
                let response = front.submit(
                    now,
                    Request::Ingest {
                        job: *job,
                        record: Arc::new(record),
                    },
                );
                assert!(response.is_ok(), "registered tenants ingest");
            }
        }
        now += SimDuration::from_secs(120);
    }
    let round = last_round.expect("trained");

    // Every tenant receives the same request mix concurrently: each wave
    // is one batch of `n_jobs` simultaneous requests, one per tenant.
    let mut lat_sum = 0.0;
    let mut served = 0usize;
    let mut req_id = 0u64;
    for i in 0..REQUESTS_PER_JOB {
        let kind = WorkloadKind::ALL[i % WorkloadKind::ALL.len()];
        if kind.policy_class() == flstore_workloads::taxonomy::PolicyClass::P3AcrossRounds {
            continue; // client-specific audits are covered elsewhere
        }
        let mut wave = Vec::with_capacity(n_jobs as usize);
        for j in 1..=n_jobs {
            req_id += 1;
            wave.push(Request::Serve(WorkloadRequest::new(
                RequestId::new(req_id),
                kind,
                JobId::new(j),
                round,
                None,
            )));
        }
        for response in front.submit_batch(now, &wave) {
            if let Response::Served(done) = response {
                lat_sum += done.measured.latency.total().as_secs_f64();
                served += 1;
            }
        }
        now += SimDuration::from_secs(60);
    }
    let total = front.window_cost(now).total().as_dollars();
    (lat_sum / served.max(1) as f64, total)
}

/// Parallel-jobs scalability: per-request latency stays flat as tenants are
/// added; cost grows ~linearly.
pub fn jobs(_scale: Scale) -> Value {
    header("§A.1 — scalability across parallel FL jobs (multi-tenancy)");
    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "jobs", "mean latency", "total cost", "cost per job"
    );
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8] {
        let (lat, cost) = run_tenants(n);
        println!(
            "{:<10} {:>14} {:>14} {:>16}",
            n,
            secs(lat),
            dollars(cost),
            dollars(cost / n as f64),
        );
        rows.push(json!({
            "jobs": n,
            "mean_latency_secs": lat,
            "total_cost": cost,
            "cost_per_job": cost / n as f64,
        }));
    }
    println!("\n(isolated per-tenant caches: latency is flat in the tenant count and");
    println!(" cost per job is constant — no shared aggregator to saturate)");
    let v = json!({ "experiment": "jobs", "rows": rows });
    save_json("jobs", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adding_tenants_keeps_latency_flat() {
        let (lat1, cost1) = run_tenants(1);
        let (lat4, cost4) = run_tenants(4);
        assert!(
            lat4 < lat1 * 1.25,
            "latency must stay flat: 1 job {lat1:.2}s vs 4 jobs {lat4:.2}s"
        );
        assert!(cost4 > cost1, "more tenants cost more in total");
        // Per-job cost roughly constant (within 50%).
        let per1 = cost1;
        let per4 = cost4 / 4.0;
        assert!(
            (per4 / per1) < 1.5 && (per4 / per1) > 0.5,
            "per-job cost should be ~constant: {per1} vs {per4}"
        );
    }
}
