//! Inventory experiments: Fig. 19 (model memory footprints), Table 1 (the
//! taxonomy), the §2.2/§4.4 capacity analysis, and the §5.5 component
//! overheads.

use std::time::Instant;

use serde_json::{json, Value};

use flstore_core::engine::CacheEngine;
use flstore_core::tracker::RequestTracker;
use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::job::FlJobConfig;
use flstore_fl::metadata::MetaKey;
use flstore_fl::zoo::{average_size, ModelArch, ZOO};
use flstore_serverless::function::{FunctionConfig, FunctionId};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::RequestId;
use flstore_workloads::taxonomy::WorkloadKind;

use crate::util::{dollars, header, save_json, subheader, Scale};

/// Fig. 19: serialized footprint of the 23-model zoo.
pub fn fig19(_scale: Scale) -> Value {
    header("Fig 19 — memory footprint of models commonly used in FL");
    let mut models: Vec<&ModelArch> = ZOO.iter().collect();
    models.sort_by(|a, b| a.size_mb.partial_cmp(&b.size_mb).expect("finite"));
    for m in &models {
        let bar_len = (m.size_mb / 10.0).round() as usize;
        println!(
            "{:<22} {:>8.1} MB {}",
            m.name,
            m.size_mb,
            "#".repeat(bar_len)
        );
    }
    let avg = average_size();
    println!(
        "\n  average: {:.2} MB (paper: 160.88 MB; torchvision fp32 checkpoints)",
        avg.as_mb_f64()
    );
    println!("  every model fits a 10 GB function; most fit a 2 GB one.");
    let v = json!({
        "experiment": "fig19",
        "models": ZOO.iter().map(|m| json!({
            "name": m.name, "params_m": m.params_m, "size_mb": m.size_mb,
        })).collect::<Vec<_>>(),
        "average_mb": avg.as_mb_f64(),
    });
    save_json("fig19", &v);
    v
}

/// Table 1: the workload taxonomy and policy mapping.
pub fn table1(_scale: Scale) -> Value {
    header("Table 1 — taxonomy of non-training workloads and policy mapping");
    println!("{:<6} {:<28} workloads", "class", "data need");
    let classes = [
        (
            flstore_workloads::taxonomy::PolicyClass::P1IndividualOrAggregate,
            "individual / aggregated model",
        ),
        (
            flstore_workloads::taxonomy::PolicyClass::P2AllUpdatesInRound,
            "all updates in a round",
        ),
        (
            flstore_workloads::taxonomy::PolicyClass::P3AcrossRounds,
            "client updates across rounds",
        ),
        (
            flstore_workloads::taxonomy::PolicyClass::P4Metadata,
            "metadata & hyperparameters",
        ),
    ];
    let mut rows = Vec::new();
    for (class, need) in classes {
        let members: Vec<&str> = WorkloadKind::ALL
            .iter()
            .filter(|k| k.policy_class() == class)
            .map(|k| k.label())
            .collect();
        println!(
            "{:<6} {:<28} {}",
            class.short_name(),
            need,
            members.join(", ")
        );
        rows.push(json!({
            "class": class.short_name(),
            "data_need": need,
            "workloads": members,
        }));
    }
    let v = json!({ "experiment": "table1", "rows": rows });
    save_json("table1", &v);
    v
}

/// §2.2 / §4.4 capacity analysis: raw metadata volumes vs the tailored hot
/// set, with monthly prices.
pub fn capacity(_scale: Scale) -> Value {
    header("Capacity analysis (§2.2, §4.4) — metadata volume and cache cost");
    let model = ModelArch::EFFICIENTNET_V2_S;

    // §2.2: 100 jobs, 10 clients/round, CIFAR-10-class training.
    let job = FlJobConfig::paper_eval(JobId::new(1), model);
    let per_job = job.round_metadata_bytes() * u64::from(job.rounds);
    let hundred_jobs = per_job * 100;
    println!(
        "one 1000-round job emits {per_job} of metadata; 100 jobs: {hundred_jobs} \
         (paper: >1500 TB including datasets)"
    );

    // §4.4: 1000 clients x 1000 rounds on EfficientNet.
    let big_round = model.size() * 1000 + ByteSize::from_kb(100);
    let big_total = big_round * 1000;
    let lambda_gb = FunctionConfig::MAX.memory.as_gb_f64();
    let functions_needed = (big_total.as_gb_f64() / lambda_gb).ceil();
    println!(
        "\n1000-client x 1000-round job: {big_total} total ({} functions to hold it all)",
        functions_needed
    );

    // Keeping everything warm vs the tailored working set.
    let warm_memory_price = 0.09 / 30.0 / 24.0; // $/GB-hour proxy via provisioned-memory pricing
    let all_hot_hourly = big_total.as_gb_f64() * warm_memory_price;
    let working_set = job.round_metadata_bytes() * 2; // keep_rounds = 2
    let tailored_fns = (working_set.as_gb_f64() / 3.75).ceil().max(1.0);
    println!(
        "keeping it all warm: ~{}/h; tailored hot set: {working_set} on {tailored_fns} \
         functions (paper: 1.2 GB on 2 functions)",
        dollars(all_hot_hourly)
    );

    // Persistent storage is the cheap plane.
    let s3 = flstore_cloud::pricing::ObjectStorePricing::AWS_S3;
    let s3_month = s3.storage(per_job, SimDuration::from_hours(730));
    println!(
        "object-store rent for one job's metadata: {}/month",
        dollars(s3_month.as_dollars())
    );

    let v = json!({
        "experiment": "capacity",
        "per_job_bytes": per_job.as_bytes(),
        "hundred_jobs_tb": hundred_jobs.as_tb_f64(),
        "big_job_tb": big_total.as_tb_f64(),
        "tailored_working_set_gb": working_set.as_gb_f64(),
        "s3_month_dollars": s3_month.as_dollars(),
    });
    save_json("capacity", &v);
    v
}

/// §5.5 component overheads: Cache Engine and Request Tracker memory and
/// operation latency at 1k and 100k in-flight requests.
///
/// The whole point of this experiment is to measure *real* wall-clock
/// latency of tracker/engine operations, so it is the sanctioned home of
/// `Instant::now()` (with `analyze-allowlist.txt` and
/// `scripts/compare_results.sh` both naming it): the `*_us` fields it
/// emits are the only run-dependent bytes in the result corpus.
#[allow(clippy::disallowed_methods)]
pub fn overhead(_scale: Scale) -> Value {
    header("§5.5 — Cache Engine and Request Tracker overhead");
    let mut out = Vec::new();
    for n in [1_000usize, 100_000] {
        subheader(&format!("{n} concurrent requests"));
        // Request Tracker.
        let tracker = RequestTracker::new();
        let t0 = Instant::now();
        for i in 0..n {
            tracker.dispatch(
                RequestId::new(i as u64),
                vec![FunctionId::from_raw(i as u64 % 64)],
            );
        }
        let dispatch_us = t0.elapsed().as_micros() as f64 / n as f64;
        let t0 = Instant::now();
        for i in 0..n {
            tracker.complete(RequestId::new(i as u64));
        }
        let complete_us = t0.elapsed().as_micros() as f64 / n as f64;
        let tracker_mem = tracker.estimated_memory();

        // Cache Engine.
        let mut engine = CacheEngine::new();
        let t0 = Instant::now();
        for i in 0..n {
            let key = MetaKey::update(
                JobId::new(1),
                Round::new(i as u32 / 16),
                ClientId::new(i as u32 % 16),
            );
            engine.record(
                key,
                vec![FunctionId::from_raw(i as u64 % 64)],
                ByteSize::from_mb(83),
                SimTime::ZERO,
            );
        }
        let record_us = t0.elapsed().as_micros() as f64 / n as f64;
        let engine_mem = engine.estimated_memory();

        println!(
            "  Request Tracker: {tracker_mem} resident, dispatch {dispatch_us:.2} µs/op, \
             complete {complete_us:.2} µs/op"
        );
        println!("  Cache Engine:    {engine_mem} resident, record {record_us:.2} µs/op");
        out.push(json!({
            "requests": n,
            "tracker_bytes": tracker_mem.as_bytes(),
            "engine_bytes": engine_mem.as_bytes(),
            "dispatch_us": dispatch_us,
            "complete_us": complete_us,
            "record_us": record_us,
        }));
    }
    println!("\n(paper: 0.19 MB / 0.6 MB at 1k requests, 20.3 MB / 63.2 MB at 100k,");
    println!(" all operations under one millisecond)");
    let v = json!({ "experiment": "overhead", "rows": out });
    save_json("overhead", &v);
    v
}
