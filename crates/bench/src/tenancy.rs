//! Tenancy & quotas experiment (paper Appendix A resource governance):
//! N tenants share one FLStore front end under *skewed* load, and a quota
//! sweep shows what per-tenant budgets and the cross-tenant pressure
//! plane do to residency and hit rates.
//!
//! Configurations swept:
//!
//! * `none` — no budgets (the pre-quota multi-tenant behaviour);
//! * `elastic-2.0x/1.0x/0.5x` — every tenant gets an elastic budget of
//!   that many round-working-sets, with a global budget of the per-tenant
//!   sum: over-budget tenants are reclaimed deterministically at every
//!   stats barrier;
//! * `strict-1.0x` — every tenant gets a hard budget; ingests whose hot
//!   set cannot be admitted surface as typed `QuotaExceeded` rejections.
//!
//! Like every experiment, the drive is `Service`-envelope traffic, so
//! `figures -- --threads N` serves it through the sharded executor —
//! byte-identical output either way (CI diffs both runs).

use std::sync::Arc;

use serde_json::{json, Value};

use flstore_core::api::{ApiError, Request, Response, Service};
use flstore_core::quota::{QuotaPolicy, TenantQuota};
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::{JobId, Round};
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

use crate::util::{header, save_json, serving_threads, subheader, Scale};

const TENANTS: u32 = 5;
const ROUNDS: u32 = 8;
const WAVES: usize = 10;
/// Skewed per-wave request counts: tenant 1 is hot, the tail is cold.
const SKEW: [usize; TENANTS as usize] = [5, 3, 2, 1, 1];

fn job_cfg(job: u32) -> FlJobConfig {
    FlJobConfig {
        rounds: ROUNDS,
        ..FlJobConfig::quick_test(JobId::new(job))
    }
}

/// The budget unit: one round's metadata (the tailored hot set holds
/// about two of these, so a 1.0x budget genuinely bites).
fn budget_unit() -> ByteSize {
    job_cfg(1).round_metadata_bytes()
}

fn scaled(mult: f64) -> ByteSize {
    ByteSize::from_bytes((budget_unit().as_bytes() as f64 * mult) as u64)
}

/// What one drive observed, independent of the serving plane.
struct DriveOutcome {
    stores: Vec<FlStore>,
    quota_rejections: usize,
    total_cost: f64,
}

/// Replays `WAVES` skewed request waves (each wave closes with a Stats
/// barrier — the pressure plane's trigger point) through the typed front
/// door, returning the window cost. Quota rejections only exist on the
/// ingest path (serving falls back to pass-through misses), so the waves
/// have nothing to count.
fn drive<S: Service>(plane: &mut S, rounds_of: &[Vec<Round>]) -> f64 {
    let mut now = SimTime::from_secs(60 * u64::from(ROUNDS) * 2);
    let mut req_id = 0u64;
    for wave in 0..WAVES {
        let mut envelopes: Vec<Request> = Vec::new();
        for (t, &count) in SKEW.iter().enumerate() {
            let job = JobId::new(t as u32 + 1);
            for slot in 0..count {
                // Cycle workloads (skipping client-specific P3 audits) and
                // rounds, so cold tenants and cold rounds both appear.
                let mut k = wave + slot;
                let kind = loop {
                    let kind = WorkloadKind::ALL[k % WorkloadKind::ALL.len()];
                    if kind.policy_class() != PolicyClass::P3AcrossRounds {
                        break kind;
                    }
                    k += 1;
                };
                let rounds = &rounds_of[t];
                let round = rounds[(wave + slot) % rounds.len()];
                req_id += 1;
                envelopes.push(Request::Serve(WorkloadRequest::new(
                    RequestId::new(req_id),
                    kind,
                    job,
                    round,
                    None,
                )));
            }
        }
        // The stats barrier: aggregates occupancy and, when a global
        // budget is armed, runs the deterministic pressure pass.
        envelopes.push(Request::Stats);
        plane.submit_batch(now, &envelopes);
        now += SimDuration::from_secs(60);
    }
    plane.window_cost(now).total().as_dollars()
}

/// Builds, trains, and drives one quota configuration, honouring the
/// `--threads` knob, and hands back the per-tenant deployments for
/// inspection.
fn run_config(
    quota_of: impl Fn(u32) -> Option<TenantQuota>,
    global: Option<ByteSize>,
) -> DriveOutcome {
    let template = FlStoreConfig {
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&ModelArch::RESNET18)
    };
    let mut front = MultiTenantStore::new(template);
    let mut sims = Vec::new();
    for j in 1..=TENANTS {
        let cfg = job_cfg(j);
        front.register_job_with_quota(cfg.job, cfg.model, quota_of(j));
        sims.push((cfg.job, FlJobSim::new(cfg)));
    }
    front.set_global_budget(global);

    let threads = serving_threads();
    let mut ingest_rejections = 0usize;
    let mut rounds_of: Vec<Vec<Round>> = vec![Vec::new(); TENANTS as usize];

    // Lockstep training through the front door (strict tenants may reject
    // hot sets they cannot admit — durability still happens).
    let mut ingest =
        |plane: &mut dyn Service, rounds_of: &mut Vec<Vec<Round>>, rejections: &mut usize| {
            let mut now = SimTime::ZERO;
            for _ in 0..ROUNDS {
                for (t, (job, sim)) in sims.iter_mut().enumerate() {
                    if let Some(record) = sim.next_round() {
                        rounds_of[t].push(record.round);
                        let response = plane.submit(
                            now,
                            Request::Ingest {
                                job: *job,
                                record: Arc::new(record),
                            },
                        );
                        if let Response::Rejected(ApiError::QuotaExceeded { .. }) = response {
                            *rejections += 1;
                        }
                    }
                }
                now += SimDuration::from_secs(120);
            }
        };

    if threads > 1 {
        let mut exec = ShardedExecutor::from_tenants(front, threads);
        ingest(&mut exec, &mut rounds_of, &mut ingest_rejections);
        let total_cost = drive(&mut exec, &rounds_of);
        DriveOutcome {
            stores: exec.into_units(),
            quota_rejections: ingest_rejections,
            total_cost,
        }
    } else {
        ingest(&mut front, &mut rounds_of, &mut ingest_rejections);
        let total_cost = drive(&mut front, &rounds_of);
        DriveOutcome {
            stores: front.into_tenants().into_iter().map(|(_, s)| s).collect(),
            quota_rejections: ingest_rejections,
            total_cost,
        }
    }
}

/// The quota sweep: per-tenant budgets (none / elastic multiples /
/// strict), skewed load, per-tenant residency and hit rates.
pub fn tenancy(_scale: Scale) -> Value {
    header("Tenancy & quotas (Appendix A) — per-tenant budgets under skewed load");
    println!(
        "{TENANTS} tenants, {ROUNDS} rounds each, {WAVES} request waves, skew {SKEW:?} \
         (budget unit = one round's metadata = {})",
        budget_unit()
    );

    let configs: &[(&str, Option<f64>, QuotaPolicy)] = &[
        ("none", None, QuotaPolicy::Elastic),
        ("elastic-2.0x", Some(2.0), QuotaPolicy::Elastic),
        ("elastic-1.0x", Some(1.0), QuotaPolicy::Elastic),
        ("elastic-0.5x", Some(0.5), QuotaPolicy::Elastic),
        ("strict-1.0x", Some(1.0), QuotaPolicy::Strict),
        // Starved: smaller than a single model update, so hot sets cannot
        // be admitted at all and ingests surface typed QuotaExceeded.
        ("strict-0.1x", Some(0.1), QuotaPolicy::Strict),
    ];

    let mut rows = Vec::new();
    for (label, mult, policy) in configs {
        // Elastic sweeps arm a global budget of the per-tenant sum, so the
        // aggregate overshoot is what the pressure plane reclaims; strict
        // tenants bound themselves and need no global budget.
        let global = match (mult, policy) {
            (Some(m), QuotaPolicy::Elastic) => Some(scaled(*m) * u64::from(TENANTS)),
            _ => None,
        };
        let outcome = run_config(
            |_| {
                mult.map(|m| TenantQuota {
                    bytes: scaled(m),
                    policy: *policy,
                })
            },
            global,
        );

        subheader(&format!("quota = {label}"));
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>12}",
            "tenant", "hits", "misses", "hit rate", "resident"
        );
        let mut tenant_rows = Vec::new();
        let mut resident_total = ByteSize::ZERO;
        for store in &outcome.stores {
            let ledger = store.ledger();
            let usage = store.quota_usage();
            resident_total += usage.resident;
            println!(
                "{:<8} {:>10} {:>10} {:>11.1}% {:>12}",
                usage.job.as_u32(),
                ledger.hits(),
                ledger.misses(),
                ledger.hit_rate() * 100.0,
                usage.resident,
            );
            tenant_rows.push(json!({
                "job": usage.job.as_u32(),
                "hits": ledger.hits(),
                "misses": ledger.misses(),
                "hit_rate": ledger.hit_rate(),
                "resident_bytes": usage.resident.as_bytes(),
                "budget_bytes": usage.quota.map(|q| q.bytes.as_bytes()),
            }));
        }
        println!(
            "  aggregate resident {} | global budget {} | quota rejections {} | cost ${:.4}",
            resident_total,
            global.map_or_else(|| "—".to_string(), |b| b.to_string()),
            outcome.quota_rejections,
            outcome.total_cost,
        );
        rows.push(json!({
            "config": label,
            "policy": mult.map(|_| format!("{policy:?}")),
            "budget_mult": mult,
            "global_budget_bytes": global.map(|b| b.as_bytes()),
            "resident_total_bytes": resident_total.as_bytes(),
            "quota_rejections": outcome.quota_rejections,
            "total_cost": outcome.total_cost,
            "tenants": tenant_rows,
        }));
    }
    println!("\n(strict budgets bound each tenant in isolation; elastic budgets let hot");
    println!(" tenants overshoot until the global budget triggers the deterministic");
    println!(" cross-tenant pressure pass at the stats barrier)");
    let v = json!({ "experiment": "tenancy", "rows": rows });
    save_json("tenancy", &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_budgets_bound_every_tenant() {
        // A one-round budget is feasible by self-eviction: every tenant
        // stays bounded and nothing needs rejecting.
        let outcome = run_config(|_| Some(TenantQuota::strict(scaled(1.0))), None);
        for store in &outcome.stores {
            assert!(
                store.resident_bytes() <= scaled(1.0),
                "tenant {} over its strict budget",
                store.catalog().job()
            );
        }

        // A starved budget (below one model update) cannot admit the hot
        // set at all: ingests surface typed QuotaExceeded rejections and
        // the bound still holds.
        let starved = run_config(|_| Some(TenantQuota::strict(scaled(0.1))), None);
        for store in &starved.stores {
            assert!(store.resident_bytes() <= scaled(0.1));
        }
        assert!(
            starved.quota_rejections > 0,
            "a starved strict budget must reject hot sets"
        );
    }

    #[test]
    fn elastic_pressure_reclaims_versus_unbounded() {
        let unbounded = run_config(|_| None, None);
        let squeezed = run_config(
            |_| Some(TenantQuota::elastic(scaled(0.5))),
            Some(scaled(0.5) * u64::from(TENANTS)),
        );
        let total = |o: &DriveOutcome| -> u64 {
            o.stores.iter().map(|s| s.resident_bytes().as_bytes()).sum()
        };
        assert!(
            total(&squeezed) < total(&unbounded),
            "pressure must shrink aggregate residency: {} vs {}",
            total(&squeezed),
            total(&unbounded)
        );
        assert_eq!(
            unbounded.quota_rejections, 0,
            "unbounded tenants never reject"
        );
    }
}
