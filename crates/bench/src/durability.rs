//! Durability plane experiment: crash recovery and the disk-spill cold
//! tier (ROADMAP item 2).
//!
//! Two phases, both fully deterministic (no wall-clock fields — the
//! whole output sits behind the sequential-vs-`--threads N` byte-diff
//! gate):
//!
//! 1. **Recovery drill** — a durable deployment serves the first half of
//!    a synthetic trace, is killed (dropped mid-run), recovered from its
//!    ledger, and serves the second half. An uninterrupted twin serves
//!    the whole trace; the response checksums of the two second halves
//!    must be identical, byte for byte. Ledger geometry (records,
//!    segments, bytes) is reported as measured facts.
//! 2. **Spill-vs-evict sweep** — under a tight strict quota, pressure
//!    victims either drop (evict) or spill to the cold tier (spill). The
//!    sweep reports hit rates, cold-tier faults, and the simulated
//!    serve-path communication latency and cost each mode pays.

use flstore_core::api::{Request, Response, Service};
use flstore_core::durable::DurabilityConfig;
use flstore_core::policy::TailoredPolicy;
use flstore_core::quota::TenantQuota;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_durability::records::parse_ledger;
use flstore_durability::recover::{attach, recover};
use flstore_durability::testkit::DetTempDir;
use flstore_durability::ACTIVE_LEDGER;
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_net::codec::encode_response;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_trace::driver::{materialize_schedule, TraceConfig};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;
use serde_json::{json, Value};

use crate::util::{header, save_json, serving_threads, subheader, Scale};

fn drill_config(durability: DurabilityConfig) -> (FlJobConfig, FlStoreConfig) {
    let job = FlJobConfig::quick_test(JobId::new(1));
    let cfg = FlStoreConfig {
        durability,
        ..FlStoreConfig::for_model(&job.model)
    };
    (job, cfg)
}

fn fresh_store(cfg: &FlStoreConfig, job: &FlJobConfig) -> FlStore {
    FlStore::new(
        cfg.clone(),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    )
}

/// Wraps `store` per the `--threads` knob, like every other experiment:
/// the sharded executor is bit-for-bit equivalent to sequential
/// submission, so nothing in this experiment's output may move.
fn service_of(store: FlStore) -> Box<dyn Service + Send> {
    let threads = serving_threads();
    if threads > 1 {
        Box::new(ShardedExecutor::new(vec![store], threads))
    } else {
        Box::new(store)
    }
}

/// FNV-1a over each response's canonical wire encoding, in submission
/// order — the same payload-fact checksum the load generator reports.
fn drive(service: &mut dyn Service, slice: &[(SimTime, Request)]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (now, request) in slice {
        let response = service.submit(*now, request.clone());
        let (tag, payload) = encode_response(&response);
        for byte in std::iter::once(tag).chain(payload) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Ledger geometry on disk: (records, segment files, total bytes).
fn ledger_geometry(dir: &std::path::Path) -> (usize, usize, u64) {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("ledger dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| (n.starts_with("segment-") && n.ends_with(".log")) || n == ACTIVE_LEDGER)
        .collect();
    names.sort_unstable();
    let mut records = 0usize;
    let mut bytes = 0u64;
    let mut segments = 0usize;
    for name in names {
        let data = std::fs::read(dir.join(&name)).expect("ledger file readable");
        bytes += data.len() as u64;
        records += parse_ledger(&data).expect("intact ledger").records.len();
        if name != ACTIVE_LEDGER {
            segments += 1;
        }
    }
    (records, segments, bytes)
}

/// The `durability` experiment: crash-recovery drill, then the
/// spill-vs-evict cold-tier sweep.
pub fn durability(scale: Scale) -> Value {
    header("Durability plane: crash recovery and the disk-spill cold tier");

    // Phase 1: ingest/serve, kill mid-trace, recover, serve the rest.
    let durability_cfg = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 32,
        ..DurabilityConfig::DISABLED
    };
    let (job, cfg) = drill_config(durability_cfg);
    let mut trace = TraceConfig::smoke(17);
    trace.requests = scale.requests();
    trace.window = scale.window();
    let schedule = materialize_schedule(&job, &trace);
    let kill_after = schedule.len() / 2;
    subheader(&format!(
        "recovery drill: {} envelopes, kill after {}, flush every record, seal every 32",
        schedule.len(),
        kill_after
    ));

    let dir = DetTempDir::new("bench-durability", 17);
    let mut durable = fresh_store(&cfg, &job);
    attach(&mut durable, dir.path()).expect("attach durable deployment");
    let mut durable_service = service_of(durable);
    let first_half = drive(durable_service.as_mut(), &schedule[..kill_after]);
    drop(durable_service); // the kill

    let (records, segments, ledger_bytes) = ledger_geometry(dir.path());
    let recovered = recover(dir.path()).expect("recover from ledger");
    let mut recovered_service = service_of(recovered);
    let second_half = drive(recovered_service.as_mut(), &schedule[kill_after..]);
    drop(recovered_service);

    let (_, cfg_plain) = drill_config(DurabilityConfig::DISABLED);
    let mut twin_service = service_of(fresh_store(&cfg_plain, &job));
    let twin_first = drive(twin_service.as_mut(), &schedule[..kill_after]);
    let twin_second = drive(twin_service.as_mut(), &schedule[kill_after..]);

    assert_eq!(
        first_half, twin_first,
        "the ledger sink must not perturb served responses"
    );
    assert_eq!(
        second_half, twin_second,
        "post-recovery responses must be byte-identical to the uninterrupted run"
    );
    println!(
        "  {records} records across {segments} sealed segment(s) + active ledger, {ledger_bytes} ledger bytes"
    );
    println!("  second-half checksum {second_half:016x} == uninterrupted twin {twin_second:016x}");

    // Phase 2: spill vs evict under quota pressure. Latency/cost here are
    // simulated (SimTime accounting), hence deterministic.
    subheader("cold tier: spill vs evict under strict quota pressure");
    let sweep_job = FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    let records_all: Vec<RoundRecord> = FlJobSim::new(sweep_job.clone()).collect();
    let round_bytes = sweep_job.round_metadata_bytes().as_bytes();
    let mut sweep = Vec::new();
    for (fi, fraction) in [4u64, 2, 1].into_iter().enumerate() {
        for spill in [false, true] {
            let cell_cfg = FlStoreConfig {
                quota: Some(TenantQuota::strict(ByteSize::from_bytes(
                    round_bytes / fraction,
                ))),
                durability: DurabilityConfig {
                    flush_every: 1,
                    spill,
                    ..DurabilityConfig::DISABLED
                },
                ..FlStoreConfig::for_model(&sweep_job.model)
            };
            let mut store = fresh_store(&cell_cfg, &sweep_job);
            let cell_dir = DetTempDir::new("bench-spill", (fi as u64) << 1 | u64::from(spill));
            attach(&mut store, cell_dir.path()).expect("attach sweep cell");
            let mut now = SimTime::ZERO;
            for r in &records_all {
                store.ingest_round(now, r);
                now += SimDuration::from_secs(60);
            }
            // Probe: sweep every observed round with a P2-class workload,
            // so shed rounds must come back from disk (spill) or the
            // persistent store (evict).
            let mut id = 0u64;
            for r in &records_all {
                for kind in [WorkloadKind::Inference, WorkloadKind::Clustering] {
                    id += 1;
                    let _ = store.serve(
                        now,
                        &WorkloadRequest::new(
                            RequestId::new(id),
                            kind,
                            sweep_job.job,
                            r.round,
                            None,
                        ),
                    );
                }
            }
            let (hits, misses, comm_us, cost) = {
                let ledger = store.ledger();
                let hits: usize = ledger.outcomes.iter().map(|o| o.cache_hits).sum();
                let misses: usize = ledger.outcomes.iter().map(|o| o.cache_misses).sum();
                let comm_us: u64 = ledger
                    .outcomes
                    .iter()
                    .map(|o| o.latency.communication.as_micros())
                    .sum();
                let cost: f64 = ledger
                    .outcomes
                    .iter()
                    .map(|o| o.cost.total().as_dollars())
                    .sum();
                (hits, misses, comm_us, cost)
            };
            let report = match store.submit(now, Request::Stats) {
                Response::Stats(report) => report,
                other => panic!("expected stats, got {other:?}"),
            };
            let mode = if spill { "spill" } else { "evict" };
            println!(
                "  quota 1/{fraction} round, {mode:>5}: hit rate {:.3}, {} cold-tier faults, \
                 serve communication {comm_us} us, serve cost ${cost:.6}",
                report.hit_rate, report.spill_faults
            );
            sweep.push(json!({
                "quota_fraction_of_round": format!("1/{fraction}"),
                "mode": mode,
                "hit_rate": report.hit_rate,
                "cache_hits": hits,
                "cache_misses": misses,
                "spilled_objects": report.spilled_objects,
                "spilled_bytes": report.spilled_bytes.as_bytes(),
                "spill_faults": report.spill_faults,
                "serve_communication_us": comm_us,
                "serve_cost_dollars": cost,
            }));
            drop(store.take_record_sink());
        }
    }

    let v = json!({
        "experiment": "durability",
        "recovery_drill": {
            "envelopes": schedule.len(),
            "kill_after": kill_after,
            "ledger_records": records,
            "sealed_segments": segments,
            "ledger_bytes": ledger_bytes,
            "first_half_checksum": format!("{first_half:016x}"),
            "second_half_checksum": format!("{second_half:016x}"),
            "matches_uninterrupted": true,
        },
        "spill_sweep": sweep,
    });
    save_json("durability", &v);
    v
}
