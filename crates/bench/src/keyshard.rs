//! Intra-job parallelism experiment: MetaKey-sharded cache state served
//! with work-stealing (ROADMAP item 3, "beat the job-sharded ceiling").
//!
//! Job-hash routing parallelizes *across* tenants but pins a single hot
//! tenant to one core. This experiment drives exactly that worst case —
//! one job, a skewed stream of compute-bound P2 serves (malicious-client
//! filtering over one round's updates, all hitting the same replica set)
//! — through two planes:
//!
//! 1. **Determinism sweep** — the same batch served sequentially with the
//!    cache engine partitioned into 1/2/4/8 MetaKey shards, plus once
//!    through a 4-worker stealing executor. Responses, the response
//!    checksum (FNV-1a over the wire encoding), and the window cost must
//!    be identical everywhere: the shard count and the steal plane are
//!    unobservable in the bytes.
//! 2. **Scaling sweep** — the serve phase timed at 1/2/4/8 key shards,
//!    each served by a matching worker count so idle workers steal the
//!    hot tenant's deferred kernels. Wall-clock fields carry the `_wall`
//!    suffix that `scripts/compare_results.sh` normalizes; everything
//!    else reproduces byte-for-byte.

use flstore_core::api::{DeferredResponse, Request, Response, Service};
use flstore_core::policy::TailoredPolicy;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_exec::ShardedExecutor;
use flstore_fl::ids::{JobId, Round};
use flstore_fl::job::{FlJobConfig, FlJobSim};
use flstore_net::codec::encode_response;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;
use serde_json::{json, Value};

use crate::util::{header, save_json, secs, subheader, Scale};

/// Key-shard counts both sweeps cover.
const KEY_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// The hot tenant: one job sized so the P2 kernel (O(clients × dims))
/// dominates the per-serve bookkeeping — the regime key sharding exists
/// for.
fn hot_job() -> FlJobConfig {
    FlJobConfig {
        rounds: 6,
        total_clients: 64,
        clients_per_round: 48,
        weight_dim: 4096,
        ..FlJobConfig::quick_test(JobId::new(1))
    }
}

/// Builds and loads the hot tenant with its cache state partitioned into
/// `key_shards` MetaKey shards.
fn loaded_store(key_shards: usize) -> (FlStore, Round) {
    let cfg = hot_job();
    let store_cfg = FlStoreConfig {
        key_shards,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&cfg.model)
    };
    let mut store = FlStore::new(
        store_cfg,
        Box::new(TailoredPolicy::new()),
        cfg.job,
        cfg.model,
    );
    let mut last = Round::ZERO;
    let mut now = SimTime::ZERO;
    for record in FlJobSim::new(cfg) {
        last = record.round;
        store.ingest_round(now, &record);
        now += SimDuration::from_secs(60);
    }
    (store, last)
}

/// The skewed stream: every request is a cache-hit P2 serve against the
/// same round (same replica set) of the one hot job.
fn hot_batch(requests: usize, round: Round) -> Vec<Request> {
    (0..requests as u64)
        .map(|i| {
            Request::Serve(WorkloadRequest::new(
                RequestId::new(i + 1),
                WorkloadKind::MaliciousFiltering,
                JobId::new(1),
                round,
                None,
            ))
        })
        .collect()
}

/// FNV-1a over every response's wire encoding: a pure payload fact that
/// must reproduce bit-for-bit across key-shard counts, worker counts, and
/// runs.
fn checksum(responses: &[Response]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for response in responses {
        let (tag, payload) = encode_response(response);
        for byte in std::iter::once(tag).chain(payload) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Times one closure on the real clock.
// Wall-clock is the measurement here, reported only in `_wall` fields
// (see analyze-allowlist.txt).
#[allow(clippy::disallowed_methods)]
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = std::time::Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64())
}

/// The `keyshard` experiment: byte-equivalence across MetaKey shard
/// counts, then the serve-phase scaling curve under work stealing.
pub fn keyshard(scale: Scale) -> Value {
    header("Intra-job parallelism: MetaKey-sharded cache, work-stealing serves");
    let cfg = hot_job();
    let requests = scale.requests();
    let now = SimTime::from_secs(3600);

    // Phase 1: determinism sweep. Sequential submission at every key-shard
    // count must produce identical bytes.
    subheader(&format!(
        "determinism: {requests} hot-tenant P2 serves at key shards {KEY_SHARDS:?}"
    ));
    let mut baseline: Option<(Vec<Response>, f64)> = None;
    for shards in KEY_SHARDS {
        let (mut store, round) = loaded_store(shards);
        let responses = store.submit_batch(now, &hot_batch(requests, round));
        let cost = Service::window_cost(&mut store, now).total().as_dollars();
        match &baseline {
            None => baseline = Some((responses, cost)),
            Some((expected, expected_cost)) => {
                assert_eq!(
                    &responses, expected,
                    "key shards must be unobservable in responses (K={shards})"
                );
                assert!(
                    cost == *expected_cost,
                    "key shards must be unobservable in window costs (K={shards})"
                );
            }
        }
    }
    let (expected, cost) = baseline.expect("sweep ran");
    let served = expected
        .iter()
        .filter(|r| matches!(r, Response::Served(_)))
        .count();
    assert_eq!(served, requests, "every hot serve hits the cache");
    let sum = checksum(&expected);

    // The stealing executor (4 workers, 4 key shards) must reproduce the
    // sequential bytes too — the tentpole's held line, re-proven at
    // experiment scale.
    let (store, round) = loaded_store(4);
    let mut exec = ShardedExecutor::new(vec![store], 4);
    let stolen = exec.submit_batch(now, &hot_batch(requests, round));
    assert_eq!(
        checksum(&stolen),
        sum,
        "work stealing must be unobservable in response bytes"
    );
    drop(exec);
    println!("  {served}/{requests} served, checksum {sum:016x} — identical at every K");

    // Phase 2a: serve-phase decomposition through the public deferred
    // API — how much of a serve is owner-serialized bookkeeping (cache,
    // ledger, placement; submission order is mandatory) versus pure
    // kernels (stealable by any worker). The stealable fraction bounds
    // the scaling curve by Amdahl's law: speedup(K) = 1/((1-p) + p/K).
    subheader("decomposition: owner-serialized bookkeeping vs stealable kernels");
    let (mut store, round) = loaded_store(4);
    let batch = hot_batch(requests, round);
    let (deferred, book_s) = timed(|| store.submit_batch_deferred(now, &batch));
    let (finished, kernel_s) = timed(|| {
        deferred
            .into_iter()
            .map(DeferredResponse::finish)
            .collect::<Vec<_>>()
    });
    assert_eq!(
        checksum(&finished),
        sum,
        "deferred finishing diverged from inline serving"
    );
    let stealable = kernel_s / (book_s + kernel_s);
    println!(
        "  bookkeeping {} + kernels {} per {requests} serves — {:.1}% stealable (wall)",
        secs(book_s),
        secs(kernel_s),
        stealable * 100.0
    );

    // Phase 2b: scaling sweep. Key shards and workers move together; the
    // owner serializes bookkeeping while idle workers steal kernels.
    // Measured wall clock tracks the projection only when real cores
    // exist to steal on (this box: `available_parallelism` cores).
    subheader("scaling: serve-phase wall clock, key shards = workers = K");
    let mut scaling = Vec::new();
    let mut base_s = 0.0f64;
    for shards in KEY_SHARDS {
        let (store, round) = loaded_store(shards);
        let batch = hot_batch(requests, round);
        let mut exec = ShardedExecutor::new(vec![store], shards);
        let (responses, elapsed) = timed(|| exec.submit_batch(now, &batch));
        assert_eq!(
            checksum(&responses),
            sum,
            "scaling run diverged (K={shards})"
        );
        if shards == 1 {
            base_s = elapsed;
        }
        let measured = if elapsed > 0.0 { base_s / elapsed } else { 1.0 };
        let projected = 1.0 / ((1.0 - stealable) + stealable / shards as f64);
        println!(
            "  K={shards}: {} for {requests} serves — {measured:.2}x measured, \
             {projected:.2}x Amdahl-projected (wall)",
            secs(elapsed)
        );
        scaling.push(json!({
            "key_shards": shards,
            "workers": shards,
            "serve_s_wall": elapsed,
            "speedup_x_wall": measured,
            "projected_speedup_x_wall": projected,
        }));
    }

    let v = json!({
        "experiment": "keyshard",
        "hot_job": {
            "jobs": 1,
            "kind": "MaliciousFiltering",
            "requests": requests,
            "clients_per_round": cfg.clients_per_round,
            "weight_dim": cfg.weight_dim,
        },
        "determinism": {
            "key_shards_checked": KEY_SHARDS.to_vec(),
            "served": served,
            "checksum": format!("{sum:016x}"),
            "window_cost_usd": cost,
        },
        "decomposition": {
            "bookkeeping_s_wall": book_s,
            "kernels_s_wall": kernel_s,
            "stealable_fraction_wall": stealable,
        },
        "scaling": scaling,
    });
    save_json("keyshard", &v);
    v
}
