//! Replication & failover plane experiment (ROADMAP item 5): measured
//! availability under node loss, failover time, and re-replication
//! volume — plus the equivalence and recovery drills the cluster layer
//! holds as hard lines.
//!
//! Everything here runs on the virtual clock: the failure schedule, the
//! detection interval, the redirect hints, and the client's retry
//! stamps are all simulated time, so the whole output is deterministic
//! and sits behind the sequential-vs-`--threads N` byte-diff gate (no
//! `_wall` fields).
//!
//! 1. **Equivalence gate** — a 1-node, replication-factor-1
//!    `ClusterStore` serves the experiment trace next to a bare
//!    `FlStore`; every response and the window cost must be identical,
//!    byte for byte (the property `crates/core/tests/api_batch.rs`
//!    proves exhaustively, re-proven at experiment scale).
//! 2. **Failover drill** — a 3-node rf=2 cluster serves the trace while
//!    its primary for job 1 is killed mid-window. A retrying client
//!    (the `flstore-loadgen --retries` model: a `Relocated` redirect is
//!    re-submitted with its stamp advanced by the hint) must land every
//!    envelope on the same final response a churn-free twin produces;
//!    first-attempt availability may dip only for envelopes stamped
//!    inside the detection window. Failover time and re-replication
//!    bytes are reported as measured facts.
//! 3. **Rejoin drill** — a durable 2-node rf=2 cluster (no spare to
//!    repair onto) loses its primary mid-run, serves through on the
//!    survivor, and the killed node rejoins from its own write-ahead
//!    ledger: the recovered state must land exactly on the kill-time
//!    digest, and after catch-up both replicas must be bit-identical
//!    twins.

use flstore_cluster::cluster::{ClusterConfig, ClusterStore};
use flstore_cluster::failure::{FailureKind, FailurePlan};
use flstore_core::api::{ApiError, Request, Response, Service};
use flstore_core::durable::DurabilityConfig;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_durability::testkit::DetTempDir;
use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_net::codec::encode_response;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_trace::driver::{materialize_schedule, TraceConfig};
use serde_json::{json, Value};

use crate::util::{header, save_json, subheader, Scale};

/// The job under churn. Job 1 slots to replica set `[1, 2]` on a 3-node
/// cluster, so node 1 is its home primary and node 0 the repair spare.
const JOB: JobId = JobId::new(1);

/// When node 1 dies, halfway through the trace window.
const KILL_AT: SimTime = SimTime::from_secs(1800);

/// Failure-detection interval (and redirect hint: one hint-advanced
/// retry is guaranteed to land past failover detection).
const DETECT: SimDuration = SimDuration::from_secs(60);

fn experiment_trace(scale: Scale) -> (FlJobConfig, TraceConfig) {
    let job_cfg = FlJobConfig::quick_test(JOB);
    let mut trace = TraceConfig::smoke(7);
    trace.requests = scale.requests();
    (job_cfg, trace)
}

fn cluster_config(nodes: usize, rf: usize, job_cfg: &FlJobConfig) -> ClusterConfig {
    let mut cfg = ClusterConfig::sim_default(nodes, rf, FlStoreConfig::for_model(&job_cfg.model));
    cfg.detection_interval = DETECT;
    cfg.redirect_hint = DETECT;
    cfg
}

/// FNV-1a over each response's canonical wire encoding, in submission
/// order — the same payload-fact checksum the load generator reports.
fn fold(mut hash: u64, response: &Response) -> u64 {
    let (tag, payload) = encode_response(response);
    for byte in std::iter::once(tag).chain(payload) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// What the retrying client observed over one drive.
struct ClientReport {
    /// FNV-1a over every envelope's *final* response.
    checksum: u64,
    /// Final responses that were not rejections.
    ok: usize,
    /// Final typed rejections (the trace's own application-level ones).
    rejected: usize,
    /// Envelopes whose first attempt was redirected (`Relocated`).
    redirected: usize,
}

/// Drives the schedule one envelope at a time with the load generator's
/// retry model: a `Relocated` redirect is re-submitted with its virtual
/// stamp advanced by the server's hint, up to `budget` times; only the
/// final response counts.
fn drive_retrying(
    service: &mut dyn Service,
    schedule: &[(SimTime, Request)],
    budget: usize,
) -> ClientReport {
    let mut report = ClientReport {
        checksum: FNV_OFFSET,
        ok: 0,
        rejected: 0,
        redirected: 0,
    };
    for (stamp, request) in schedule {
        let mut now = *stamp;
        let mut attempt = 0usize;
        loop {
            let response = service.submit(now, request.clone());
            if let Response::Rejected(ApiError::Relocated {
                retry_after_hint, ..
            }) = &response
            {
                if attempt < budget {
                    if attempt == 0 {
                        report.redirected += 1;
                    }
                    now += *retry_after_hint;
                    attempt += 1;
                    continue;
                }
            }
            report.checksum = fold(report.checksum, &response);
            match response {
                Response::Rejected(_) => report.rejected += 1,
                _ => report.ok += 1,
            }
            break;
        }
    }
    report
}

fn digest_of(cluster: &ClusterStore, node: usize) -> String {
    let store = cluster.node_store(node, JOB).expect("node hosts the job");
    format!("{:?}", store.durability_digest())
}

/// The `cluster` experiment: equivalence gate, failover drill, rejoin
/// drill.
pub fn cluster(scale: Scale) -> Value {
    header("Replication & failover plane: availability under node loss");
    let (job_cfg, trace) = experiment_trace(scale);
    let schedule = materialize_schedule(&job_cfg, &trace);

    // --- 1. equivalence: 1-node rf=1 cluster ≡ bare FlStore ----------
    subheader(&format!(
        "equivalence: 1-node rf=1 cluster vs bare store over {} envelopes",
        schedule.len()
    ));
    // The bare reference registers through the same tenancy path so its
    // per-job seed derivation matches the cluster tenant's.
    let mut front = MultiTenantStore::new(FlStoreConfig::for_model(&job_cfg.model));
    assert!(front.register_job(JOB, job_cfg.model));
    let (_, mut bare): (JobId, FlStore) = front.into_tenants().pop().expect("one tenant");
    let mut single = ClusterStore::new(cluster_config(1, 1, &job_cfg));
    single
        .register_job(JOB, job_cfg.model)
        .expect("memory-only registration");
    let mut single_sum = FNV_OFFSET;
    let mut bare_sum = FNV_OFFSET;
    let mut end = SimTime::ZERO;
    for (now, request) in &schedule {
        let ours = single.submit(*now, request.clone());
        let reference = bare.submit(*now, request.clone());
        assert_eq!(ours, reference, "1-node rf=1 must answer like a bare store");
        single_sum = fold(single_sum, &ours);
        bare_sum = fold(bare_sum, &reference);
        end = *now;
    }
    assert_eq!(
        single.total_cost(end),
        bare.total_cost(end),
        "cost accounting must match"
    );
    println!(
        "  {} envelopes, checksum {single_sum:016x} — bit-identical responses and costs",
        schedule.len()
    );

    // --- 2. failover drill: 3-node rf=2, primary killed mid-window ---
    subheader("failover drill: 3-node rf=2, node 1 killed at t=1800s, retrying client");
    let build = |plan: &FailurePlan| {
        let mut c = ClusterStore::new(cluster_config(3, 2, &job_cfg));
        c.register_job(JOB, job_cfg.model).expect("memory-only");
        c.inject_plan(plan);
        c
    };
    let mut churned = build(&FailurePlan::none().with(KILL_AT, 1, FailureKind::Kill));
    let mut twin = build(&FailurePlan::none());
    let churn_report = drive_retrying(&mut churned, &schedule, 2);
    let twin_report = drive_retrying(&mut twin, &schedule, 2);

    // Zero requests failed by the failover: final counts equal the
    // churn-free twin's exactly.
    assert_eq!(churn_report.ok, twin_report.ok, "failover lost requests");
    assert_eq!(churn_report.rejected, twin_report.rejected);
    assert_eq!(twin_report.redirected, 0, "churn-free twin redirected");
    // First-attempt availability may dip only for envelopes stamped
    // inside the detection window — the in-flight window the bound
    // allows.
    let in_window = schedule
        .iter()
        .filter(|(at, _)| *at >= KILL_AT && *at < KILL_AT + DETECT)
        .count();
    assert!(
        churn_report.redirected <= in_window,
        "{} redirects but only {in_window} envelopes stamped in the detection window",
        churn_report.redirected
    );
    let stats = churned.stats().clone();
    assert_eq!(
        stats.failover_delays,
        vec![DETECT],
        "failover missed its detection interval"
    );
    assert_eq!(stats.repaired_jobs, 1, "the spare was not repaired onto");
    // The promoted survivor and the repaired spare are bit-identical.
    assert_eq!(churned.route(JOB), &[2, 0]);
    assert_eq!(digest_of(&churned, 2), digest_of(&churned, 0));
    let total = schedule.len();
    let availability = 100.0 * (total - churn_report.redirected) as f64 / total as f64;
    let twin_availability = 100.0 * (total - twin_report.redirected) as f64 / total as f64;
    println!(
        "  first-attempt availability {availability:.2}% (churn-free {twin_availability:.2}%), \
         {} redirect(s) ridden through",
        churn_report.redirected
    );
    println!(
        "  failover in {}s (detection interval), {} job repaired, {} re-replicated",
        DETECT.as_micros() / 1_000_000,
        stats.repaired_jobs,
        stats.repl_bytes
    );

    // --- 3. rejoin drill: durable 2-node rf=2, no spare --------------
    subheader("rejoin drill: durable 2-node rf=2, killed node recovers from its own ledger");
    let dir = DetTempDir::new("bench-cluster-rejoin", 11);
    let mut cfg = cluster_config(2, 2, &job_cfg);
    cfg.store_template.durability = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 8,
        ..DurabilityConfig::DISABLED
    };
    cfg.durable_root = Some(dir.path().to_path_buf());
    let mut durable = ClusterStore::new(cfg);
    durable
        .register_job(JOB, job_cfg.model)
        .expect("durable registration");
    let back = KILL_AT + SimDuration::from_secs(600);
    durable.inject_plan(&FailurePlan::none().kill_and_rejoin(1, KILL_AT, back));
    let rejoin_report = drive_retrying(&mut durable, &schedule, 2);
    assert_eq!(rejoin_report.ok, twin_report.ok, "rejoin run lost requests");
    let rejoin_stats = durable.stats().clone();
    assert_eq!(rejoin_stats.kills, 1);
    assert_eq!(rejoin_stats.rejoins, 1);
    assert_eq!(
        rejoin_stats.rejoin_digest_mismatches, 0,
        "ledger recovery diverged from the kill-time state"
    );
    assert!(
        rejoin_stats.catchup_entries > 0,
        "the rejoined node replayed no history"
    );
    assert_eq!(
        digest_of(&durable, 0),
        digest_of(&durable, 1),
        "rejoined replica is not a bit-identical twin"
    );
    println!(
        "  node 1 rejoined from its ledger bit-identically ({} history entries caught up, \
         0 digest mismatches)",
        rejoin_stats.catchup_entries
    );

    let payload = json!({
        "trace": {"requests": trace.requests, "envelopes": schedule.len(), "seed": trace.seed},
        "equivalence": {
            "checksum": format!("{single_sum:016x}"),
            "bare_checksum": format!("{bare_sum:016x}"),
        },
        "failover": {
            "nodes": 3,
            "replication": 2,
            "kill_at_s": KILL_AT.as_micros() / 1_000_000,
            "detection_interval_s": DETECT.as_micros() / 1_000_000,
            "availability_pct": availability,
            "churn_free_availability_pct": twin_availability,
            "redirected": churn_report.redirected,
            "ok": churn_report.ok,
            "rejected": churn_report.rejected,
            "checksum": format!("{:016x}", churn_report.checksum),
            "failover_delay_s": stats.failover_delays[0].as_micros() / 1_000_000,
            "repaired_jobs": stats.repaired_jobs,
            "repl_bytes": stats.repl_bytes.as_bytes(),
        },
        "rejoin": {
            "nodes": 2,
            "replication": 2,
            "rejoin_at_s": back.as_micros() / 1_000_000,
            "catchup_entries": rejoin_stats.catchup_entries,
            "digest_mismatches": rejoin_stats.rejoin_digest_mismatches,
            "checksum": format!("{:016x}", rejoin_report.checksum),
        },
    });
    save_json("cluster", &payload);
    payload
}
