//! Failover drills: node kill, redirect window, survivor promotion,
//! re-replication, ledger-based rejoin, partition heal, and slow-node
//! demotion — all on the virtual clock, all bit-deterministic.
//!
//! Node layout used throughout: job 1 hashes to slot 1 (splitmix64), so
//! on a 3-node rf=2 cluster its replica set is `[1, 2]` — node 1 is the
//! home primary, node 2 the standing twin, node 0 the spare.

use flstore_cluster::cluster::{ClusterConfig, ClusterStore, NodeHealth};
use flstore_cluster::failure::{FailureKind, FailurePlan};
use flstore_core::api::{ApiError, Request, Response, Service};
use flstore_core::durable::DurabilityConfig;
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_durability::testkit::DetTempDir;
use flstore_fl::ids::JobId;
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_fl::metadata::MetaKey;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::taxonomy::WorkloadKind;

use std::sync::Arc;

const JOB: JobId = JobId::new(1);
const INGEST_GAP: SimDuration = SimDuration::from_secs(60);

fn job_config() -> FlJobConfig {
    FlJobConfig {
        rounds: 6,
        ..FlJobConfig::quick_test(JOB)
    }
}

fn records() -> Vec<RoundRecord> {
    FlJobSim::new(job_config()).collect()
}

fn cluster(nodes: usize, rf: usize) -> ClusterStore {
    let mut cluster = ClusterStore::new(ClusterConfig::sim_default(
        nodes,
        rf,
        FlStoreConfig::for_model(&job_config().model),
    ));
    cluster
        .register_job(JOB, job_config().model)
        .expect("memory-only");
    cluster
}

fn ingest(record: &RoundRecord) -> Request {
    Request::Ingest {
        job: JOB,
        record: Arc::new(record.clone()),
    }
}

fn serve(id: u64, record: &RoundRecord) -> Request {
    Request::Serve(WorkloadRequest::new(
        RequestId::new(id),
        WorkloadKind::Inference,
        JOB,
        record.round,
        None,
    ))
}

/// Ingests every round at 60 s intervals, returning the clock after the
/// last one.
fn load(cluster: &mut ClusterStore, records: &[RoundRecord]) -> SimTime {
    let mut now = SimTime::ZERO;
    for record in records {
        let response = cluster.submit(now, ingest(record));
        assert!(response.is_ok(), "ingest must land: {response:?}");
        now += INGEST_GAP;
    }
    now
}

fn digest_of(cluster: &ClusterStore, node: usize) -> String {
    let store = cluster.node_store(node, JOB).expect("node hosts the job");
    format!("{:?}", store.durability_digest())
}

#[test]
fn kill_redirects_until_detection_then_promotes_the_twin() {
    let mut cluster = cluster(3, 2);
    let records = records();
    let mut now = load(&mut cluster, &records);

    assert_eq!(cluster.route(JOB), &[1, 2]);
    cluster.inject_plan(&FailurePlan::none().with(now, 1, FailureKind::Kill));

    // Inside the detection window: a typed redirect, not an error and
    // not a hang. Nothing is executed, so the envelope is retry-safe.
    let redirected = cluster.submit(now, serve(100, &records[5]));
    let hint = cluster.config().redirect_hint;
    match redirected {
        Response::Rejected(ApiError::Relocated {
            job,
            retry_after_hint,
        }) => {
            assert_eq!(job, JOB);
            assert_eq!(retry_after_hint, hint);
        }
        other => panic!("expected a Relocated redirect, got {other:?}"),
    }

    // Past the detection interval the twin is promoted; the identical
    // retried envelope is served.
    now += cluster.config().detection_interval;
    let served = cluster.submit(now, serve(100, &records[5]));
    assert!(
        served.served().is_some(),
        "promoted twin serves: {served:?}"
    );

    let stats = cluster.stats();
    assert_eq!(stats.kills, 1);
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.redirects, 1);
    assert_eq!(
        stats.failover_delays,
        vec![cluster.config().detection_interval]
    );
}

#[test]
fn repair_restores_the_replication_factor_on_the_spare() {
    let mut cluster = cluster(3, 2);
    let records = records();
    let mut now = load(&mut cluster, &records);

    cluster.inject_plan(&FailurePlan::none().with(now, 1, FailureKind::Kill));
    now += cluster.config().detection_interval;
    let _ = cluster.submit(now, serve(100, &records[4]));

    // The lost member is dropped and the spare node 0 takes its place:
    // the survivor is ranked first (it is the acting primary).
    assert_eq!(cluster.route(JOB), &[2, 0]);
    assert_eq!(cluster.stats().repaired_jobs, 1);
    assert!(cluster.stats().repl_bytes.as_bytes() > 0);
    // Full-history replay makes the repaired replica a bit-identical
    // twin, including the serve that landed after the failover.
    assert_eq!(digest_of(&cluster, 0), digest_of(&cluster, 2));
}

#[test]
fn replicas_stay_bit_identical_twins_under_load() {
    let mut cluster = cluster(3, 2);
    let records = records();
    let mut now = load(&mut cluster, &records);
    for (i, record) in records.iter().enumerate() {
        let _ = cluster.submit(now, serve(200 + i as u64, record));
        now += SimDuration::from_secs(1);
    }
    let _ = cluster.submit(
        now,
        Request::Evict(MetaKey::aggregate(JOB, records[0].round)),
    );
    assert_eq!(digest_of(&cluster, 1), digest_of(&cluster, 2));
}

#[test]
fn killed_node_rejoins_from_its_own_ledger_bit_identically() {
    // 2 nodes, rf=2: both host the job, so there is no spare to repair
    // onto — the killed node itself must come back from its ledger.
    let dir = DetTempDir::new("cluster-rejoin", 7);
    let mut template = FlStoreConfig::for_model(&job_config().model);
    template.durability = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 8,
        ..DurabilityConfig::DISABLED
    };
    let mut cluster = ClusterStore::new(ClusterConfig {
        durable_root: Some(dir.path().to_path_buf()),
        ..ClusterConfig::sim_default(2, 2, template)
    });
    cluster
        .register_job(JOB, job_config().model)
        .expect("durable attach");
    assert_eq!(cluster.route(JOB), &[1, 0]);

    let records = records();
    let half = records.len() / 2;
    let mut now = load(&mut cluster, &records[..half]);

    // Kill the home primary, serve through the survivor meanwhile.
    let back = now + SimDuration::from_secs(300);
    cluster.inject_plan(&FailurePlan::none().kill_and_rejoin(1, now, back));
    now += cluster.config().detection_interval;
    for record in &records[half..] {
        let response = cluster.submit(now, ingest(record));
        assert!(response.is_ok(), "survivor keeps ingesting: {response:?}");
        now += INGEST_GAP;
    }
    assert_eq!(
        cluster.route(JOB),
        &[0],
        "no spare exists in a 2-node rf=2 cluster"
    );

    // Rejoin: ledger recovery must land exactly on the kill-time
    // digest, then history replay catches up the missed rounds.
    now = back + SimDuration::from_secs(1);
    let served = cluster.submit(now, serve(300, &records[half]));
    assert!(served.served().is_some(), "{served:?}");

    let stats = cluster.stats();
    assert_eq!(stats.rejoins, 1);
    assert_eq!(
        stats.rejoin_digest_mismatches, 0,
        "ledger recovery diverged from the kill-time state"
    );
    assert!(
        stats.catchup_entries > 0,
        "the rejoined node replayed the gap"
    );
    assert_eq!(cluster.route(JOB), &[0, 1], "membership restored");
    assert_eq!(digest_of(&cluster, 0), digest_of(&cluster, 1));
    assert_eq!(cluster.node_health(1), NodeHealth::Live);
}

#[test]
fn partition_heals_with_catch_up_and_no_repair_copies() {
    let mut cluster = cluster(3, 2);
    let records = records();
    let mut now = load(&mut cluster, &records[..4]);

    cluster.inject_plan(&FailurePlan::none().with(
        now,
        1,
        FailureKind::Partition {
            lasting: SimDuration::from_secs(120),
        },
    ));
    // Redirect window, then promotion of the twin — but membership is
    // untouched: partitions never trigger repair copies.
    let redirected = cluster.submit(now, serve(400, &records[3]));
    assert!(
        matches!(redirected, Response::Rejected(ApiError::Relocated { .. })),
        "{redirected:?}"
    );
    now += cluster.config().detection_interval;
    let response = cluster.submit(now, ingest(&records[4]));
    assert!(response.is_ok(), "{response:?}");
    assert_eq!(cluster.route(JOB), &[1, 2], "membership unchanged");
    assert_eq!(cluster.stats().repaired_jobs, 0);

    // After the heal, the partitioned node has caught up bit-identically.
    now += SimDuration::from_secs(120);
    let response = cluster.submit(now, ingest(&records[5]));
    assert!(response.is_ok(), "{response:?}");
    assert_eq!(cluster.node_health(1), NodeHealth::Live);
    assert!(cluster.stats().catchup_entries > 0);
    assert_eq!(digest_of(&cluster, 1), digest_of(&cluster, 2));
}

#[test]
fn slow_node_is_demoted_but_stays_current() {
    let mut cluster = cluster(3, 2);
    let records = records();
    let mut now = load(&mut cluster, &records[..5]);

    cluster.inject_plan(&FailurePlan::none().with(
        now,
        1,
        FailureKind::Slow {
            lasting: SimDuration::from_secs(60),
        },
    ));
    // No redirect for a straggler: the twin answers immediately, and the
    // slow node keeps applying writes so it never falls behind.
    let response = cluster.submit(now, ingest(&records[5]));
    assert!(response.is_ok(), "{response:?}");
    assert_eq!(cluster.stats().redirects, 0);
    assert_eq!(cluster.stats().failovers, 0);
    assert_eq!(digest_of(&cluster, 1), digest_of(&cluster, 2));

    // The degradation ends on the virtual clock; the home primary is
    // back in charge.
    now += SimDuration::from_secs(61);
    let _ = cluster.submit(now, serve(500, &records[5]));
    assert_eq!(cluster.node_health(1), NodeHealth::Live);
}

#[test]
fn one_node_rf1_cluster_answers_like_a_bare_store() {
    // The full cross-product property lives in
    // crates/core/tests/api_batch.rs; this is the smoke-sized version.
    // The bare reference goes through the same tenancy registration so
    // its per-job seed derivation matches the cluster tenant's.
    let mut front = MultiTenantStore::new(FlStoreConfig::for_model(&job_config().model));
    assert!(front.register_job(JOB, job_config().model));
    let (_, mut bare): (JobId, FlStore) = front.into_tenants().pop().expect("one tenant");

    let mut cluster = cluster(1, 1);
    let records = records();
    let mut now = SimTime::ZERO;
    for (i, record) in records.iter().enumerate() {
        let envelopes = [
            ingest(record),
            serve(600 + i as u64, record),
            Request::Stats,
        ];
        for request in envelopes {
            let ours = cluster.submit(now, request.clone());
            let reference = bare.submit(now, request);
            assert_eq!(ours, reference);
        }
        now += INGEST_GAP;
    }
    assert_eq!(
        cluster.total_cost(now),
        bare.total_cost(now),
        "cost accounting must match"
    );
    assert_eq!(
        format!("{:?}", bare.durability_digest()),
        digest_of(&cluster, 0)
    );
}

#[test]
fn unknown_jobs_are_rejected_at_the_front() {
    let mut cluster = cluster(3, 2);
    let records = records();
    load(&mut cluster, &records);
    let foreign = JobId::new(77);
    let response = cluster.submit(
        SimTime::from_secs(7200),
        Request::Serve(WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::Inference,
            foreign,
            records[0].round,
            None,
        )),
    );
    assert_eq!(
        response,
        Response::Rejected(ApiError::UnknownJob { job: foreign })
    );
}

#[test]
fn batch_submission_is_equivalent_to_sequential() {
    let records = records();
    let build = || {
        let mut c = cluster(3, 2);
        load(&mut c, &records[..4]);
        c
    };
    let now = SimTime::from_secs(3600);
    let batch: Vec<Request> = vec![
        serve(700, &records[0]),
        serve(701, &records[1]),
        Request::Stats,
        ingest(&records[4]),
        serve(702, &records[2]),
        Request::Evict(MetaKey::metrics(JOB, records[1].round)),
    ];

    let mut batched = build();
    let batch_responses = batched.submit_batch(now, &batch);

    let mut sequential = build();
    let seq_responses: Vec<Response> = batch
        .iter()
        .map(|request| sequential.submit(now, request.clone()))
        .collect();

    assert_eq!(batch_responses, seq_responses);
    assert_eq!(digest_of(&batched, 1), digest_of(&sequential, 1));
}
