//! # flstore-cluster — the replication & failover plane
//!
//! Lifts replica placement out of a single [`FlStore`] into a cluster of
//! N simulated store nodes: jobs route to placement slots with the same
//! splitmix64 mixer the execution plane shards keys with, each slot owns
//! a replica set of consecutive nodes, and deterministic failure
//! injection (node kill, slow node, partition — seeded, virtual-clock
//! driven) exercises automatic failover and ledger-based node recovery.
//! `docs/CLUSTER.md` is the normative spec.
//!
//! * [`slots`] — the pure-function slot router: `JobId → slot → replica
//!   set`.
//! * [`failure`] — seeded failure plans: data, not threads, so churn is
//!   bit-reproducible.
//! * [`cluster`] — [`ClusterStore`]: the [`Service`] implementation that
//!   state-machine-replicates every envelope across a job's reachable
//!   replicas, promotes survivors on node loss, re-replicates through
//!   the shared [`PlacementMap`] repair path, and recovers killed nodes
//!   from their own per-node ledgers.
//!
//! The equivalence line this crate holds (enforced by
//! `crates/core/tests/api_batch.rs`): a 1-node, replication-factor-1
//! `ClusterStore` answers **bit-for-bit** like a bare [`FlStore`] —
//! responses, ledger, costs, and cache fingerprint.
//!
//! [`FlStore`]: flstore_core::store::FlStore
//! [`Service`]: flstore_core::api::Service
//! [`PlacementMap`]: flstore_core::placement::PlacementMap
//!
//! ## Quickstart
//!
//! ```
//! use flstore_cluster::cluster::{ClusterConfig, ClusterStore};
//! use flstore_cluster::failure::{FailureKind, FailurePlan};
//! use flstore_core::api::{Request, Service};
//! use flstore_core::store::FlStoreConfig;
//! use flstore_fl::job::{FlJobConfig, FlJobSim};
//! use flstore_sim::time::{SimDuration, SimTime};
//! use std::sync::Arc;
//!
//! let job_cfg = FlJobConfig::quick_test(flstore_fl::ids::JobId::new(1));
//! let mut cluster = ClusterStore::new(ClusterConfig::sim_default(
//!     3,
//!     2,
//!     FlStoreConfig::for_model(&job_cfg.model),
//! ));
//! cluster.register_job(job_cfg.job, job_cfg.model).unwrap();
//!
//! // Kill the job's primary mid-run; once the detection interval
//! // elapses, the surviving replica is promoted and keeps answering.
//! cluster.inject_plan(&FailurePlan::none().with(
//!     SimTime::from_secs(90),
//!     1,
//!     FailureKind::Kill,
//! ));
//! let mut now = SimTime::ZERO;
//! for record in FlJobSim::new(job_cfg.clone()) {
//!     let response = cluster.submit(
//!         now,
//!         Request::Ingest { job: job_cfg.job, record: Arc::new(record) },
//!     );
//!     assert!(response.is_ok());
//!     now += SimDuration::from_secs(60);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod failure;
pub mod slots;

pub use cluster::{ClusterConfig, ClusterStats, ClusterStore, NodeHealth};
pub use failure::{FailureEvent, FailureKind, FailurePlan, FAILURE_EVENTS};
pub use slots::{replica_set, slot_of_job, DEFAULT_SLOTS};

// Thread-ownership audit: a whole cluster moves onto serving threads by
// ownership transfer (the net front door's engine thread owns it), so
// everything inside must be `Send` — this is a compile error here rather
// than deep inside the server.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<cluster::ClusterStore>();
    assert_send::<failure::FailurePlan>();
};
