//! Cluster-plane command line.
//!
//! ```text
//! # Machine-readable failure-event inventory (docs/CLUSTER.md drift guard):
//! flstore-cluster --list-events
//! ```

use flstore_cluster::failure::FAILURE_EVENTS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-events") {
        // Tab-separated: event name, semantics. docs/CLUSTER.md's
        // failure-model table is diffed against this output in CI by
        // scripts/check_cluster_doc.sh.
        for (name, summary) in FAILURE_EVENTS {
            println!("{name}\t{summary}");
        }
        return;
    }
    eprintln!("usage: flstore-cluster --list-events");
    std::process::exit(2);
}
