//! The slot router: `JobId → slot → replica set`.
//!
//! Placement is two deterministic pure functions and nothing else — no
//! rebalancing state, no gossip, no hash rings to persist. A job hashes
//! to one of `slots` placement slots with the same splitmix64 finalizer
//! the execution plane uses for key-shard routing (so a job's cluster
//! route and its executor shard are decorrelated but derived from the
//! same well-studied mixer), and a slot maps to `rf` consecutive nodes
//! starting at `slot % nodes`. Every node, client, and test can compute
//! the same route from `(job, slots, nodes, rf)` alone; docs/CLUSTER.md
//! §2 is the normative spec.

use flstore_fl::ids::JobId;

/// The default number of placement slots. Comfortably above any node
/// count this simulation runs (so slots spread evenly) while keeping
/// slot tables human-readable in doc examples.
pub const DEFAULT_SLOTS: usize = 16;

/// Routes a job to its placement slot: splitmix64 finalizer over the
/// raw job id, reduced modulo `slots`.
///
/// The mixer is bit-for-bit the one `flstore-exec` uses for key-shard
/// routing, applied to the same input — a deliberate choice documented
/// in docs/CLUSTER.md §2: routes must be derivable by every layer
/// (cluster, net front door, loadgen assertions) without consulting the
/// store, and splitmix64's avalanche keeps consecutive job ids off the
/// same slot.
///
/// # Panics
///
/// Panics if `slots` is zero.
pub fn slot_of_job(job: JobId, slots: usize) -> usize {
    assert!(slots > 0, "a cluster has at least one placement slot");
    let mut x = u64::from(job.as_u32()).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % slots as u64) as usize
}

/// The replica set of a slot: `min(rf, nodes)` distinct nodes, walking
/// the ring `slot % nodes, slot+1 % nodes, …`. The first member is the
/// slot's **home primary**; survivors keep their relative order during
/// failover, so promotion is always "next live member".
///
/// # Panics
///
/// Panics if `nodes` or `rf` is zero.
pub fn replica_set(slot: usize, nodes: usize, rf: usize) -> Vec<usize> {
    assert!(nodes > 0, "a cluster has at least one node");
    assert!(rf > 0, "replication factor is at least one");
    (0..rf.min(nodes)).map(|i| (slot + i) % nodes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_routing_is_stable_and_in_range() {
        for raw in 0..1000u32 {
            let job = JobId::new(raw);
            let slot = slot_of_job(job, DEFAULT_SLOTS);
            assert!(slot < DEFAULT_SLOTS);
            assert_eq!(slot, slot_of_job(job, DEFAULT_SLOTS), "stable for {job}");
        }
    }

    #[test]
    fn slot_routing_mirrors_the_exec_key_shard_mixer() {
        // Golden values pinned so the exec mixer and this one cannot
        // drift apart silently (both claim the same splitmix64).
        let golden: Vec<usize> = (1..=8)
            .map(|raw| slot_of_job(JobId::new(raw), 16))
            .collect();
        assert_eq!(golden, vec![1, 14, 13, 10, 10, 0, 7, 6]);
    }

    #[test]
    fn slots_spread_jobs_across_nodes() {
        // With many jobs, every node of a 4-node cluster fronts some.
        let mut fronted = [false; 4];
        for raw in 1..=64u32 {
            let slot = slot_of_job(JobId::new(raw), DEFAULT_SLOTS);
            fronted[replica_set(slot, 4, 2)[0]] = true;
        }
        assert_eq!(fronted, [true; 4]);
    }

    #[test]
    fn replica_sets_are_distinct_ring_walks() {
        assert_eq!(replica_set(5, 4, 2), vec![1, 2]);
        assert_eq!(replica_set(3, 4, 3), vec![3, 0, 1]);
        // rf is clamped to the node count: no duplicate members.
        assert_eq!(replica_set(2, 2, 5), vec![0, 1]);
        assert_eq!(replica_set(9, 1, 1), vec![0]);
    }
}
