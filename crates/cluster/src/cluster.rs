//! [`ClusterStore`]: N store nodes, slot-routed replica sets, automatic
//! failover, and ledger-based node recovery.
//!
//! # Replication model
//!
//! The cluster is a **state-machine replicator**: every state-touching
//! envelope (ingest, serve, evict — serving mutates cache state, so it
//! replicates too) is applied to *every reachable replica* of its job's
//! route, in route order; the acting primary's response is returned and
//! the twins' responses are discarded. Because every replica registered
//! the job identically (same template, same per-job seed derivation) and
//! applies the same envelope sequence, replicas are **bit-identical
//! twins** — failover changes which twin answers, never what the answer
//! is. `Stats` is read-only: answered by the primary, never recorded.
//!
//! # Failover state machine
//!
//! Failures are injected as virtual-clock events and drained at each
//! submit, so churn is bit-reproducible (docs/CLUSTER.md §4). A node is
//! `Live`, `Slow` (applies writes, demoted from primary duty),
//! `Partitioned` (unreachable, memory survives), or `Dead` (killed,
//! memory dropped — its ledgers flushed on the way down). An
//! *undetected* unreachable acting primary redirects clients with typed
//! [`ApiError::Relocated`] envelopes until the detection interval
//! elapses; detection promotes the next live member and, for kills,
//! re-replicates through the shared [`repair_after_loss`]
//! path to restore the target factor. A killed node rejoins by
//! recovering each tenant from its own per-node ledger directory and
//! replaying the history suffix it missed.

use flstore_core::api::{ApiError, Request, Response, Service, StatsReport};
use flstore_core::durable::StateDigest;
use flstore_core::placement::{repair_after_loss, PlacementMap};
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_core::tenancy::MultiTenantStore;
use flstore_durability::recover::{attach, recover};
use flstore_durability::DurabilityError;
use flstore_fl::ids::JobId;
use flstore_fl::zoo::ModelArch;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::des::EventQueue;
use flstore_sim::time::{SimDuration, SimTime};

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::failure::{FailureEvent, FailureKind, FailurePlan};
use crate::slots::{replica_set, slot_of_job, DEFAULT_SLOTS};

/// Configuration of a [`ClusterStore`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of store nodes.
    pub nodes: usize,
    /// Target replication factor per placement slot (clamped to the
    /// node count).
    pub replication: usize,
    /// Number of placement slots jobs hash into.
    pub slots: usize,
    /// How long an unreachable node serves redirects before failover
    /// promotes a survivor (the failure-detector timeout).
    pub detection_interval: SimDuration,
    /// The `retry_after_hint` carried by [`ApiError::Relocated`]
    /// redirects. Fixed by configuration so redirect envelopes are
    /// byte-deterministic under churn.
    pub redirect_hint: SimDuration,
    /// The per-tenant store configuration every node instantiates.
    /// Identical templates are what make replicas bit-identical twins.
    pub store_template: FlStoreConfig,
    /// When set, each node persists its tenants' ledgers under
    /// `<root>/node-<i>/job-<id>` and a killed node recovers from its
    /// own directory at rejoin. `None` runs memory-only (a rejoining
    /// node rebuilds from history replay alone).
    pub durable_root: Option<PathBuf>,
}

impl ClusterConfig {
    /// A memory-only cluster with the simulation defaults: 16 slots,
    /// 500 ms failure detection, 1 ms redirect hint.
    pub fn sim_default(nodes: usize, replication: usize, store_template: FlStoreConfig) -> Self {
        ClusterConfig {
            nodes,
            replication,
            slots: DEFAULT_SLOTS,
            detection_interval: SimDuration::from_millis(500),
            redirect_hint: SimDuration::from_millis(1),
            store_template,
            durable_root: None,
        }
    }
}

/// A node's availability state, advanced only by drained failure events
/// (never by wall-clock observation), so routing decisions are
/// bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving and applying.
    Live,
    /// A straggler until `until`: still applies every write (its
    /// replicas stay current) but is demoted from primary duty.
    Slow {
        /// When the degradation ends.
        until: SimTime,
    },
    /// Unreachable until `until`; memory survives and catches up at
    /// heal. `detected` flips when the detection interval elapses and a
    /// survivor is promoted.
    Partitioned {
        /// When the partition heals.
        until: SimTime,
        /// Whether failover has promoted a survivor yet.
        detected: bool,
    },
    /// Killed at `since`: in-memory state dropped (ledgers flushed on
    /// the way down), silent until an explicit rejoin.
    Dead {
        /// When the node died.
        since: SimTime,
        /// Whether failover has promoted a survivor and re-replicated.
        detected: bool,
    },
}

/// Counters a cluster accumulates across its lifetime — everything the
/// figures experiment and the smoke gates report. All counts are event
/// counts on the virtual clock, never wall-clock measurements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Nodes killed.
    pub kills: u64,
    /// Nodes rejoined.
    pub rejoins: u64,
    /// Failovers completed (kill or partition detections that promoted
    /// a survivor).
    pub failovers: u64,
    /// Envelopes answered with [`ApiError::Relocated`] redirects.
    pub redirects: u64,
    /// Job replicas repaired (copied onto a spare) after node loss.
    pub repaired_jobs: u64,
    /// Bytes moved by repair copies.
    pub repl_bytes: ByteSize,
    /// Envelopes replayed into healing or rejoining nodes.
    pub catchup_entries: u64,
    /// Rejoins whose ledger-recovered state digest did not match the
    /// digest snapshot taken at kill time (should stay zero).
    pub rejoin_digest_mismatches: u64,
    /// Per-failover promotion delay (the configured detection interval,
    /// recorded per event so availability math can integrate it).
    pub failover_delays: Vec<SimDuration>,
}

/// One replayable history entry, preserving the batch grouping the
/// original submission used so catch-up replay is bit-identical.
#[derive(Debug, Clone)]
enum HistEntry {
    One(Request),
    Run(Vec<Request>),
}

impl HistEntry {
    fn envelopes(&self) -> u64 {
        match self {
            HistEntry::One(_) => 1,
            HistEntry::Run(run) => run.len() as u64,
        }
    }
}

/// Internal failure-plane operations on the virtual-clock queue.
#[derive(Debug, Clone, Copy)]
enum Op {
    Kill(usize),
    Rejoin(usize),
    SlowStart { node: usize, until: SimTime },
    SlowEnd { node: usize, until: SimTime },
    PartitionStart { node: usize, until: SimTime },
    DetectKill { node: usize, since: SimTime },
    DetectPartition { node: usize, until: SimTime },
    Heal { node: usize, until: SimTime },
}

struct Node {
    /// The node's tenant stores; `None` while dead. Dropping this
    /// flushes every tenant's ledger sink — a kill persists exactly the
    /// applied prefix.
    tenants: Option<MultiTenantStore>,
    /// This node's own durable directory (`<root>/node-<i>`).
    dir: Option<PathBuf>,
    health: NodeHealth,
    /// Per hosted job: how many history entries this node has applied.
    applied: BTreeMap<JobId, usize>,
    /// State digests snapshotted at kill time, compared against the
    /// ledger-recovered state at rejoin.
    kill_digests: BTreeMap<JobId, StateDigest>,
}

impl Node {
    /// Whether writes replicate to this node right now. `Slow` nodes
    /// still apply (their replicas stay current); `Partitioned` and
    /// `Dead` nodes do not.
    fn reachable(&self) -> bool {
        matches!(self.health, NodeHealth::Live | NodeHealth::Slow { .. })
    }
}

/// A cluster of N simulated store nodes behind one [`Service`] front:
/// slot-routed replica sets, state-machine replication, deterministic
/// failure injection, automatic failover, ledger-based rejoin.
pub struct ClusterStore {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    /// Job → current replica members, best-ranked first. The first
    /// reachable member is the acting primary.
    routes: BTreeMap<JobId, Vec<usize>>,
    /// Job → model, kept for re-registration at repair and rejoin.
    models: BTreeMap<JobId, ModelArch>,
    /// Job → every state-touching entry ever applied, with its stamp —
    /// the replay source for catch-up and re-replication.
    history: BTreeMap<JobId, Vec<(SimTime, HistEntry)>>,
    ops: EventQueue<Op>,
    stats: ClusterStats,
}

impl ClusterStore {
    /// Builds a cluster of `cfg.nodes` live, empty nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `replication`, or `slots` is zero.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "a cluster has at least one node");
        assert!(cfg.replication > 0, "replication factor is at least one");
        assert!(cfg.slots > 0, "a cluster has at least one placement slot");
        let nodes = (0..cfg.nodes)
            .map(|i| Node {
                tenants: Some(MultiTenantStore::new(cfg.store_template.clone())),
                dir: cfg
                    .durable_root
                    .as_ref()
                    .map(|root| root.join(format!("node-{i}"))),
                health: NodeHealth::Live,
                applied: BTreeMap::new(),
                kill_digests: BTreeMap::new(),
            })
            .collect();
        ClusterStore {
            cfg,
            nodes,
            routes: BTreeMap::new(),
            models: BTreeMap::new(),
            history: BTreeMap::new(),
            ops: EventQueue::new(),
            stats: ClusterStats::default(),
        }
    }

    /// Registers `job` on its slot's replica set. Every member
    /// instantiates an identical tenant (same template, same per-job
    /// seed derivation), which is what makes the replicas bit-identical
    /// twins. Returns `Ok(false)` if the job was already registered.
    ///
    /// # Panics
    ///
    /// Panics if any member of the job's replica set is currently
    /// unreachable — register jobs on a healthy cluster.
    pub fn register_job(&mut self, job: JobId, model: ModelArch) -> Result<bool, DurabilityError> {
        if self.routes.contains_key(&job) {
            return Ok(false);
        }
        let slot = slot_of_job(job, self.cfg.slots);
        let members = replica_set(slot, self.cfg.nodes, self.cfg.replication);
        for &member in &members {
            assert!(
                self.nodes[member].reachable(),
                "register jobs on a healthy cluster (node {member} is unavailable)"
            );
            self.host_job(member, job, model)?;
        }
        self.models.insert(job, model);
        self.history.insert(job, Vec::new());
        self.routes.insert(job, members);
        Ok(true)
    }

    /// Registers `job` on node `n`'s tenant front and, when the cluster
    /// is durable, attaches the tenant to the node's own ledger
    /// directory. The node starts with zero history applied.
    fn host_job(&mut self, n: usize, job: JobId, model: ModelArch) -> Result<(), DurabilityError> {
        let node = &mut self.nodes[n];
        let tenants = node.tenants.as_mut().expect("hosting on a live node");
        assert!(tenants.register_job(job, model), "job not yet hosted here");
        if let Some(dir) = node.dir.clone() {
            let store = tenants.tenant_mut(job).expect("just registered");
            attach(store, &dir.join(format!("job-{}", job.as_u32())))?;
        }
        node.applied.insert(job, 0);
        Ok(())
    }

    /// Schedules one failure event on the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if the event names a node the cluster does not have.
    pub fn inject(&mut self, event: FailureEvent) {
        assert!(
            event.node < self.cfg.nodes,
            "node {} out of range (cluster has {})",
            event.node,
            self.cfg.nodes
        );
        let op = match event.kind {
            FailureKind::Kill => Op::Kill(event.node),
            FailureKind::Rejoin => Op::Rejoin(event.node),
            FailureKind::Slow { lasting } => Op::SlowStart {
                node: event.node,
                until: event.at + lasting,
            },
            FailureKind::Partition { lasting } => Op::PartitionStart {
                node: event.node,
                until: event.at + lasting,
            },
        };
        self.ops.schedule(event.at, op);
    }

    /// Schedules every event of a failure plan.
    pub fn inject_plan(&mut self, plan: &FailurePlan) {
        for event in plan.events() {
            self.inject(*event);
        }
    }

    /// Lifetime failure-plane counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The registered jobs, in id order.
    pub fn jobs(&self) -> Vec<JobId> {
        self.routes.keys().copied().collect()
    }

    /// The job's current replica members, best-ranked first (empty for
    /// unregistered jobs, or for an rf=1 job whose only holder is dead).
    pub fn route(&self, job: JobId) -> &[usize] {
        self.routes.get(&job).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A node's availability state.
    pub fn node_health(&self, node: usize) -> NodeHealth {
        self.nodes[node].health
    }

    /// The tenant store node `n` hosts for `job`, if the node is up and
    /// hosting it.
    pub fn node_store(&self, n: usize, job: JobId) -> Option<&FlStore> {
        self.nodes[n].tenants.as_ref()?.tenant(job)
    }

    /// The acting primary's tenant store for `job` — the replica whose
    /// responses clients currently see.
    pub fn primary_store(&self, job: JobId) -> Option<&FlStore> {
        self.node_store(self.primary_of(job)?, job)
    }

    /// Total cost across every live node's tenants over the window
    /// ending at `now` (same semantics as [`Service::window_cost`]).
    pub fn total_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.nodes
            .iter_mut()
            .filter_map(|node| node.tenants.as_mut())
            .map(|tenants| tenants.total_cost(now))
            .sum()
    }

    /// The acting primary of `job`: the first reachable route member.
    /// `None` while the next-in-line member is unreachable but not yet
    /// detected (the redirect window), or when no member survives.
    fn primary_of(&self, job: JobId) -> Option<usize> {
        let route = self.routes.get(&job)?;
        let mut fallback = None;
        for &member in route {
            match self.nodes[member].health {
                NodeHealth::Live => return Some(member),
                NodeHealth::Slow { .. } => fallback = fallback.or(Some(member)),
                // Undetected loss of the next-in-line member: clients
                // get typed redirects until the detector fires.
                NodeHealth::Dead {
                    detected: false, ..
                }
                | NodeHealth::Partitioned {
                    detected: false, ..
                } => return None,
                NodeHealth::Dead { .. } | NodeHealth::Partitioned { .. } => {}
            }
        }
        fallback
    }

    fn redirect(&mut self, job: JobId) -> Response {
        self.stats.redirects += 1;
        Response::Rejected(ApiError::Relocated {
            job,
            retry_after_hint: self.cfg.redirect_hint,
        })
    }

    /// Fires every failure event due at or before `now`, in time order
    /// (FIFO on ties). Chained events (detection after a kill) fire in
    /// the same drain when due.
    fn drain_failures(&mut self, now: SimTime) {
        while let Some((at, op)) = self.ops.pop_before(now) {
            self.apply_op(at, op);
        }
    }

    fn apply_op(&mut self, at: SimTime, op: Op) {
        match op {
            Op::Kill(n) => {
                if matches!(self.nodes[n].health, NodeHealth::Dead { .. }) {
                    return;
                }
                let node = &mut self.nodes[n];
                if let Some(tenants) = node.tenants.as_ref() {
                    node.kill_digests = node
                        .applied
                        .keys()
                        .filter_map(|&job| {
                            tenants.tenant(job).map(|s| (job, s.durability_digest()))
                        })
                        .collect();
                }
                // Dropping the stores flushes every ledger sink: the
                // node's disk holds exactly its applied prefix.
                node.tenants = None;
                node.health = NodeHealth::Dead {
                    since: at,
                    detected: false,
                };
                self.stats.kills += 1;
                self.ops.schedule(
                    at + self.cfg.detection_interval,
                    Op::DetectKill { node: n, since: at },
                );
            }
            Op::DetectKill { node: n, since } => {
                let expected = NodeHealth::Dead {
                    since,
                    detected: false,
                };
                if self.nodes[n].health != expected {
                    return; // already rejoined (or a different death)
                }
                self.nodes[n].health = NodeHealth::Dead {
                    since,
                    detected: true,
                };
                self.stats.failovers += 1;
                self.stats.failover_delays.push(self.cfg.detection_interval);
                // One repair discipline for both layers: the same
                // `repair_after_loss` the single store runs when the
                // platform reclaims a function instance.
                let report = repair_after_loss(self, at, n);
                self.stats.repaired_jobs += report.repaired as u64;
                self.stats.repl_bytes += report.bytes_copied;
            }
            Op::Rejoin(n) => self.rejoin(at, n),
            Op::SlowStart { node: n, until } => {
                if self.nodes[n].health == NodeHealth::Live {
                    self.nodes[n].health = NodeHealth::Slow { until };
                    self.ops.schedule(until, Op::SlowEnd { node: n, until });
                }
            }
            Op::SlowEnd { node: n, until } => {
                if self.nodes[n].health == (NodeHealth::Slow { until }) {
                    self.nodes[n].health = NodeHealth::Live;
                }
            }
            Op::PartitionStart { node: n, until } => {
                if self.nodes[n].health == NodeHealth::Live {
                    self.nodes[n].health = NodeHealth::Partitioned {
                        until,
                        detected: false,
                    };
                    self.ops.schedule(
                        at + self.cfg.detection_interval,
                        Op::DetectPartition { node: n, until },
                    );
                    self.ops.schedule(until, Op::Heal { node: n, until });
                }
            }
            Op::DetectPartition { node: n, until } => {
                let expected = NodeHealth::Partitioned {
                    until,
                    detected: false,
                };
                if self.nodes[n].health != expected {
                    return; // healed before the detector fired
                }
                self.nodes[n].health = NodeHealth::Partitioned {
                    until,
                    detected: true,
                };
                self.stats.failovers += 1;
                self.stats.failover_delays.push(self.cfg.detection_interval);
                // Partitions are transient: survivors are promoted but
                // membership is unchanged and no repair copies run —
                // the node's memory survives and catches up at heal.
            }
            Op::Heal { node: n, until } => {
                let healing = matches!(
                    self.nodes[n].health,
                    NodeHealth::Partitioned { until: u, .. } if u == until
                );
                if healing {
                    for job in self.hosted_jobs(n) {
                        self.catch_up_job(n, job);
                    }
                    self.nodes[n].health = NodeHealth::Live;
                }
            }
        }
    }

    fn hosted_jobs(&self, n: usize) -> Vec<JobId> {
        self.nodes[n].applied.keys().copied().collect()
    }

    /// Replays the history suffix node `n` has not yet applied for
    /// `job`, with the original stamps and the original batch grouping,
    /// so the caught-up replica is bit-identical to the ones that never
    /// left.
    fn catch_up_job(&mut self, n: usize, job: JobId) {
        let done = self.nodes[n].applied.get(&job).copied().unwrap_or(0);
        let entries: Vec<(SimTime, HistEntry)> = self
            .history
            .get(&job)
            .map(|h| h[done..].to_vec())
            .unwrap_or_default();
        let total = done + entries.len();
        let tenants = self.nodes[n]
            .tenants
            .as_mut()
            .expect("catch-up on a live node");
        let store = tenants.tenant_mut(job).expect("hosted job is registered");
        let mut replayed = 0u64;
        for (stamp, entry) in &entries {
            replayed += entry.envelopes();
            match entry {
                HistEntry::One(request) => {
                    let _ = store.submit(*stamp, request.clone());
                }
                HistEntry::Run(run) => {
                    let _ = store.submit_batch(*stamp, run);
                }
            }
        }
        self.nodes[n].applied.insert(job, total);
        self.stats.catchup_entries += replayed;
    }

    /// A killed node comes back. For each job it hosted at death (and
    /// whose route still has room under the target factor), the node
    /// recovers the tenant from its own ledger directory — verified
    /// bit-identical against the digest snapshotted at kill — or
    /// re-registers fresh when the cluster is memory-only, then replays
    /// the history suffix it missed and resumes membership.
    fn rejoin(&mut self, at: SimTime, n: usize) {
        let _ = at;
        if !matches!(self.nodes[n].health, NodeHealth::Dead { .. }) {
            return;
        }
        self.stats.rejoins += 1;
        let mut tenants = MultiTenantStore::new(self.cfg.store_template.clone());
        let mut rehosted: Vec<JobId> = Vec::new();
        for job in self.hosted_jobs(n) {
            let route = self.routes.get(&job).cloned().unwrap_or_default();
            let target = self.cfg.replication.min(self.cfg.nodes);
            if !route.contains(&n) && route.len() >= target {
                // Repair already restored this job's factor elsewhere;
                // the rejoined node does not shadow-host stale state.
                self.nodes[n].applied.remove(&job);
                self.nodes[n].kill_digests.remove(&job);
                continue;
            }
            let recovered = self.nodes[n]
                .dir
                .as_ref()
                .map(|dir| recover(&dir.join(format!("job-{}", job.as_u32()))));
            match recovered {
                Some(Ok(store)) => {
                    // The ledger flushed at kill, so recovery must land
                    // exactly on the kill-time digest.
                    let matches = self.nodes[n]
                        .kill_digests
                        .get(&job)
                        .is_none_or(|snap| *snap == store.durability_digest());
                    if !matches {
                        self.stats.rejoin_digest_mismatches += 1;
                    }
                    assert!(tenants.adopt(store).is_ok(), "fresh node cannot conflict");
                    // `applied` still holds the kill-time count — the
                    // ledger replayed exactly that prefix.
                }
                Some(Err(_)) => {
                    // Unreadable ledger: surface it in the counters and
                    // rebuild from history replay instead.
                    self.stats.rejoin_digest_mismatches += 1;
                    let model = self.models[&job];
                    assert!(
                        tenants.register_job(job, model),
                        "fresh node cannot conflict"
                    );
                    self.nodes[n].applied.insert(job, 0);
                }
                None => {
                    let model = self.models[&job];
                    assert!(
                        tenants.register_job(job, model),
                        "fresh node cannot conflict"
                    );
                    self.nodes[n].applied.insert(job, 0);
                }
            }
            rehosted.push(job);
        }
        self.nodes[n].tenants = Some(tenants);
        self.nodes[n].kill_digests.clear();
        self.nodes[n].health = NodeHealth::Live;
        // Re-attach durable sinks for history-rebuilt tenants, resume
        // membership, and replay what was missed.
        for job in rehosted {
            if self.nodes[n].applied[&job] == 0 {
                if let Some(dir) = self.nodes[n].dir.clone() {
                    let tenants = self.nodes[n].tenants.as_mut().expect("just installed");
                    let store = tenants.tenant_mut(job).expect("just registered");
                    let _ = attach(store, &dir.join(format!("job-{}", job.as_u32())));
                }
            }
            let route = self.routes.entry(job).or_default();
            if !route.contains(&n) {
                route.push(n);
            }
            self.catch_up_job(n, job);
        }
    }

    fn submit_inner(&mut self, now: SimTime, request: Request) -> Response {
        let Some(job) = request.job() else {
            return self.stats_response(now);
        };
        if !self.routes.contains_key(&job) {
            return Response::Rejected(ApiError::UnknownJob { job });
        }
        let Some(primary) = self.primary_of(job) else {
            return self.redirect(job);
        };
        self.history
            .entry(job)
            .or_default()
            .push((now, HistEntry::One(request.clone())));
        self.replicate_entry(now, job, primary, &HistEntry::One(request))
            .pop()
            .expect("primary is reachable")
    }

    /// Applies one history entry to every reachable route member (the
    /// state-machine replication step) and returns the acting primary's
    /// responses.
    fn replicate_entry(
        &mut self,
        now: SimTime,
        job: JobId,
        primary: usize,
        entry: &HistEntry,
    ) -> Vec<Response> {
        let entry_count = self.history.get(&job).map_or(0, |h| h.len());
        let members = self.routes.get(&job).cloned().unwrap_or_default();
        let mut responses = Vec::new();
        for member in members {
            if !self.nodes[member].reachable() {
                continue;
            }
            let tenants = self.nodes[member]
                .tenants
                .as_mut()
                .expect("reachable node has stores");
            let store = tenants.tenant_mut(job).expect("route member hosts the job");
            let r = match entry {
                HistEntry::One(request) => vec![store.submit(now, request.clone())],
                HistEntry::Run(run) => store.submit_batch(now, run),
            };
            self.nodes[member].applied.insert(job, entry_count);
            if member == primary {
                responses = r;
            }
        }
        responses
    }

    /// `Stats` is read-only and system-wide. With a single registered
    /// job it returns the primary replica's own report **verbatim** (so
    /// a 1-node rf=1 cluster stays byte-identical to a bare store);
    /// with several jobs it folds per-job primary reports under the
    /// cluster label, skipping jobs whose every replica is unreachable.
    /// There is no cross-job pressure plane at the cluster level — each
    /// node's tenants are quota-isolated individually.
    fn stats_response(&mut self, now: SimTime) -> Response {
        if self.routes.len() == 1 {
            let job = *self.routes.keys().next().expect("one route");
            let Some(primary) = self.primary_of(job) else {
                return self.redirect(job);
            };
            let tenants = self.nodes[primary]
                .tenants
                .as_mut()
                .expect("reachable node has stores");
            let store = tenants.tenant_mut(job).expect("route member hosts the job");
            return store.submit(now, Request::Stats);
        }
        let mut report = StatsReport {
            label: Service::label(self),
            tenants: self.routes.len(),
            served: 0,
            cache_hits: 0,
            cache_misses: 0,
            hit_rate: 1.0,
            faults: 0,
            spilled_objects: 0,
            spilled_bytes: ByteSize::ZERO,
            spill_faults: 0,
            quota: Vec::new(),
        };
        for job in self.jobs() {
            let Some(store) = self.primary_store(job) else {
                continue;
            };
            report.served += store.ledger().len();
            report.cache_hits += store.ledger().hits();
            report.cache_misses += store.ledger().misses();
            report.faults += store.faults_observed();
            let (spilled_objects, spilled_bytes) = store.spill_stats();
            report.spilled_objects += spilled_objects;
            report.spilled_bytes += spilled_bytes;
            report.spill_faults += store.spill_faults();
            report.quota.push(store.quota_usage());
        }
        let touched = report.cache_hits + report.cache_misses;
        if touched > 0 {
            report.hit_rate = report.cache_hits as f64 / touched as f64;
        }
        Response::Stats(report)
    }

    /// Submits a run of consecutive serves. `run_job` is the run's
    /// registered job (unregistered serves ride along and are rejected
    /// inline by the tenant store, exactly like a bare store batch);
    /// `None` means every serve in the run targets an unregistered job.
    fn submit_run(
        &mut self,
        now: SimTime,
        run_job: Option<JobId>,
        run: Vec<Request>,
    ) -> Vec<Response> {
        let Some(job) = run_job else {
            return run
                .iter()
                .map(|request| {
                    let job = request.job().expect("serves route by job");
                    Response::Rejected(ApiError::UnknownJob { job })
                })
                .collect();
        };
        let Some(primary) = self.primary_of(job) else {
            let mut responses = Vec::with_capacity(run.len());
            for request in &run {
                let j = request.job().expect("serves route by job");
                responses.push(if self.routes.contains_key(&j) {
                    self.redirect(j)
                } else {
                    Response::Rejected(ApiError::UnknownJob { job: j })
                });
            }
            return responses;
        };
        let entry = HistEntry::Run(run);
        self.history
            .entry(job)
            .or_default()
            .push((now, entry.clone()));
        self.replicate_entry(now, job, primary, &entry)
    }
}

impl Service for ClusterStore {
    fn label(&self) -> String {
        format!(
            "FLStore-Cluster(n={},rf={})",
            self.cfg.nodes, self.cfg.replication
        )
    }

    fn submit(&mut self, now: SimTime, request: Request) -> Response {
        self.drain_failures(now);
        self.submit_inner(now, request)
    }

    /// Groups maximal runs of consecutive `Serve` envelopes whose
    /// registered jobs all match (unregistered serves ride along inside
    /// a run and are rejected inline by the tenant store), so a
    /// 1-node rf=1 cluster decomposes a batch **exactly** like a bare
    /// [`FlStore`] does. Non-serve envelopes break runs and are
    /// submitted singly.
    fn submit_batch(&mut self, now: SimTime, requests: &[Request]) -> Vec<Response> {
        self.drain_failures(now);
        let mut responses: Vec<Response> = Vec::with_capacity(requests.len());
        let mut i = 0;
        while i < requests.len() {
            if !matches!(requests[i], Request::Serve(_)) {
                responses.push(self.submit_inner(now, requests[i].clone()));
                i += 1;
                continue;
            }
            let mut run: Vec<Request> = Vec::new();
            let mut run_job: Option<JobId> = None;
            while let Some(Request::Serve(serve)) = requests.get(i) {
                if self.routes.contains_key(&serve.job) {
                    match run_job {
                        None => run_job = Some(serve.job),
                        Some(j) if j != serve.job => break,
                        Some(_) => {}
                    }
                }
                run.push(Request::Serve(*serve));
                i += 1;
            }
            responses.extend(self.submit_run(now, run_job, run));
        }
        responses
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        self.nodes
            .iter_mut()
            .filter_map(|node| node.tenants.as_mut())
            .map(|tenants| Service::infra_cost(tenants, now))
            .sum()
    }
}

/// The cluster is the multi-node instantiation of the same
/// [`PlacementMap`] boundary the single store repairs function loss
/// through: holders are nodes, units are whole jobs, and
/// [`repair_after_loss`] drives both.
impl PlacementMap for ClusterStore {
    type Holder = usize;
    type Unit = JobId;

    fn units_on(&self, holder: usize) -> Vec<JobId> {
        self.routes
            .iter()
            .filter(|(_, members)| members.contains(&holder))
            .map(|(job, _)| *job)
            .collect()
    }

    fn drop_holder(&mut self, holder: usize) {
        for members in self.routes.values_mut() {
            members.retain(|member| *member != holder);
        }
    }

    fn survivors(&self, unit: &JobId) -> Vec<usize> {
        self.routes
            .get(unit)
            .map(|members| {
                members
                    .iter()
                    .copied()
                    .filter(|&member| self.nodes[member].reachable())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Re-replicates `unit` onto the lowest-index live node outside its
    /// route: registers an empty twin there, replays the job's full
    /// history into it (the same state-machine replay a rejoining node
    /// uses, so the new replica is bit-identical), and reports the
    /// survivor's resident bytes as the copy volume. `None` when no
    /// spare node is live — the job stays at reduced redundancy.
    fn replicate(
        &mut self,
        _now: SimTime,
        unit: &JobId,
        source: usize,
        _lost: usize,
    ) -> Option<ByteSize> {
        let job = *unit;
        let members = self.routes.get(&job)?.clone();
        let spare = (0..self.cfg.nodes).find(|&i| {
            !members.contains(&i)
                && self.nodes[i].health == NodeHealth::Live
                && self.nodes[i].tenants.is_some()
        })?;
        let model = *self.models.get(&job)?;
        self.host_job(spare, job, model).ok()?;
        self.routes.entry(job).or_default().push(spare);
        self.catch_up_job(spare, job);
        let bytes = self
            .node_store(source, job)
            .map(FlStore::resident_bytes)
            .unwrap_or(ByteSize::ZERO);
        Some(bytes)
    }
}
