//! Deterministic failure injection: seeded, virtual-clock driven.
//!
//! A failure plan is data — a sorted list of `(SimTime, node, kind)`
//! triples — not a background thread. The cluster drains due events
//! from its virtual-clock event queue at each submit, so the same plan
//! against the same request schedule produces bit-identical results on
//! every run and every thread count. Randomized churn comes from
//! [`FailurePlan::seeded_churn`], which derives everything from an
//! explicit [`DetRng`] seed; there is no ambient entropy anywhere in
//! this crate (the determinism lint enforces it).

use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};

/// What happens to a node. The machine-checked inventory that
/// `docs/CLUSTER.md` §4 documents row-for-row (see
/// `scripts/check_cluster_doc.sh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The node's process dies: in-memory state is dropped (ledgers
    /// flush on drop, like a kernel flushing page cache on process
    /// exit), and the node stops answering until a [`Rejoin`].
    ///
    /// [`Rejoin`]: FailureKind::Rejoin
    Kill,
    /// A killed node comes back: it recovers each tenant from its own
    /// per-node ledger directory (when the cluster is durable), catches
    /// up on the entries it missed, and resumes serving.
    Rejoin,
    /// The node degrades for `lasting`: it still applies writes (its
    /// replicas stay current) but is demoted from primary duty while
    /// slow, modelling a straggler rather than a death.
    Slow {
        /// How long the degradation lasts.
        lasting: SimDuration,
    },
    /// The node is unreachable for `lasting`: it applies nothing and
    /// answers nothing, then heals and catches up. Distinct from
    /// [`Kill`] in that its memory survives.
    ///
    /// [`Kill`]: FailureKind::Kill
    Partition {
        /// How long the node stays unreachable.
        lasting: SimDuration,
    },
}

/// The `name` column `flstore-cluster --list-events` prints for each
/// failure kind, in declaration order — the drift-guard inventory.
pub const FAILURE_EVENTS: &[(&str, &str)] = &[
    (
        "Kill",
        "process death: memory dropped, ledger flushed, silent until Rejoin",
    ),
    (
        "Rejoin",
        "killed node returns: recovers from its own ledger, catches up, serves",
    ),
    (
        "Slow",
        "straggler for a duration: applies writes but demoted from primary duty",
    ),
    (
        "Partition",
        "unreachable for a duration: applies nothing, heals and catches up",
    ),
];

/// One scheduled failure: at `at`, `node` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// When the failure fires, on the virtual clock.
    pub at: SimTime,
    /// Which node (index into the cluster's node list).
    pub node: usize,
    /// What happens.
    pub kind: FailureKind,
}

/// A deterministic failure schedule: events sorted by time (ties in
/// insertion order, preserved by the stable sort).
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// An empty plan: the churn-free twin.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds one event; builder-style.
    pub fn with(mut self, at: SimTime, node: usize, kind: FailureKind) -> Self {
        self.events.push(FailureEvent { at, node, kind });
        self
    }

    /// Kill `node` at `at` and rejoin it at `back`.
    pub fn kill_and_rejoin(self, node: usize, at: SimTime, back: SimTime) -> Self {
        assert!(back > at, "a node rejoins after it dies");
        self.with(at, node, FailureKind::Kill)
            .with(back, node, FailureKind::Rejoin)
    }

    /// Random churn over `horizon`: `kills` kill/rejoin pairs spread
    /// across distinct nodes and times, all derived from `seed` via a
    /// labelled [`DetRng`] stream. Nodes stay down between one eighth
    /// and one quarter of the horizon, so the plan always exercises
    /// both the failover window and the rejoin catch-up.
    pub fn seeded_churn(seed: u64, nodes: usize, kills: usize, horizon: SimDuration) -> Self {
        assert!(nodes > 1, "churn needs a survivor to fail over to");
        let mut rng = DetRng::stream(seed, "cluster-churn");
        let mut plan = Self::none();
        for _ in 0..kills {
            let node = rng.index(nodes);
            let half = (horizon.as_micros() / 2).max(1) as usize;
            let eighth = (horizon.as_micros() / 8).max(1) as usize;
            let at = SimTime::ZERO + SimDuration::from_micros(rng.index(half) as u64);
            let down = SimDuration::from_micros(eighth as u64 + rng.index(eighth) as u64);
            plan = plan.kill_and_rejoin(node, at, at + down);
        }
        plan.into_sorted()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    fn into_sorted(mut self) -> Self {
        self.events.sort_by_key(|e| e.at);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_churn_is_reproducible_and_sorted() {
        let a = FailurePlan::seeded_churn(7, 3, 4, SimDuration::from_secs(3600));
        let b = FailurePlan::seeded_churn(7, 3, 4, SimDuration::from_secs(3600));
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a.events().len(), 8); // 4 kills + 4 rejoins

        let c = FailurePlan::seeded_churn(8, 3, 4, SimDuration::from_secs(3600));
        assert_ne!(a.events(), c.events(), "seed must matter");
    }

    #[test]
    fn builder_preserves_kill_rejoin_pairing() {
        let plan =
            FailurePlan::none().kill_and_rejoin(1, SimTime::from_secs(10), SimTime::from_secs(20));
        assert_eq!(plan.events()[0].kind, FailureKind::Kill);
        assert_eq!(plan.events()[1].kind, FailureKind::Rejoin);
    }
}
