//! Property-based invariants for the serverless platform simulator.

use proptest::prelude::*;

use flstore_cloud::blob::{Blob, ObjectKey};
use flstore_cloud::compute::WorkUnits;
use flstore_serverless::function::FunctionConfig;
use flstore_serverless::platform::{Platform, PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::{SimDuration, SimTime};

fn quiet(seed: u64) -> Platform {
    Platform::new(
        PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        seed,
    )
}

proptest! {
    #[test]
    fn invocations_never_travel_back_in_time(
        seed in 0u64..500,
        jobs in prop::collection::vec((0u64..10_000, 1u64..50), 1..30),
    ) {
        let mut platform = quiet(seed);
        let id = platform.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        let mut arrivals = jobs;
        arrivals.sort_by_key(|(at, _)| *at);
        let mut last_end = SimTime::ZERO;
        for (at, work_ds) in arrivals {
            let now = SimTime::from_secs(at);
            let out = platform
                .invoke(now, id, WorkUnits::from_ref_seconds(work_ds as f64 / 10.0))
                .expect("spawned");
            prop_assert!(out.start >= now);
            prop_assert!(out.end > out.start);
            // Single worker: executions never overlap.
            prop_assert!(out.start >= last_end);
            last_end = out.end;
        }
    }

    #[test]
    fn billing_is_monotone_in_work(seed in 0u64..500, a in 1u64..100, b in 1u64..100) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let run = |work: u64| {
            let mut platform = quiet(seed);
            let id = platform.spawn(SimTime::ZERO, FunctionConfig::LARGE);
            platform
                .invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(work as f64))
                .expect("spawned");
            platform.billing().invocation_cost.as_dollars()
        };
        prop_assert!(run(lo) <= run(hi));
    }

    #[test]
    fn memory_accounting_is_exact(
        seed in 0u64..500,
        sizes in prop::collection::vec(1u64..800, 1..10),
    ) {
        let mut platform = quiet(seed);
        let id = platform.spawn(SimTime::ZERO, FunctionConfig::MAX);
        let mut stored = 0u64;
        for (i, mb) in sizes.iter().enumerate() {
            let blob = Blob::synthetic(ByteSize::from_mb(*mb));
            if platform
                .store_object(SimTime::ZERO, id, ObjectKey::new(format!("o{i}")), blob)
                .is_ok()
            {
                stored += mb;
            }
        }
        let inst = platform.instance(id).expect("spawned");
        prop_assert_eq!(inst.mem_used(), ByteSize::from_mb(stored));
        // Never exceeds configured memory.
        prop_assert!(inst.mem_used() <= FunctionConfig::MAX.memory);
    }

    #[test]
    fn keepalive_preserves_state_without_forced_reclaim(
        seed in 0u64..200,
        hours in 1u64..24,
    ) {
        let mut platform = quiet(seed);
        let id = platform.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        platform
            .store_object(SimTime::ZERO, id, ObjectKey::new("x"), Blob::synthetic(ByteSize::from_mb(10)))
            .expect("fits");
        let end = SimTime::ZERO + SimDuration::from_hours(hours);
        let reclaimed = platform.run_keepalive(SimTime::ZERO, end);
        prop_assert!(reclaimed.is_empty());
        prop_assert_eq!(platform.instance(id).expect("alive").object_count(), 1);
        // Ping billing grows linearly with the window.
        let pings = platform.billing().pings;
        prop_assert_eq!(pings, hours * 60);
    }

    #[test]
    fn forced_reclaim_always_clears_state(seed in 0u64..200) {
        let mut platform = Platform::new(
            PlatformConfig {
                reclaim: ReclaimModel {
                    enabled: true,
                    min_lifetime_hours: 0.001, // everything dies immediately
                    alpha: 5.0,
                },
                ..PlatformConfig::default()
            },
            seed,
        );
        let id = platform.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        platform
            .store_object(SimTime::ZERO, id, ObjectKey::new("x"), Blob::synthetic(ByteSize::from_mb(10)))
            .expect("fits");
        let later = SimTime::ZERO + SimDuration::from_hours(1);
        let cause = platform.refresh(later, id).expect("spawned");
        prop_assert!(cause.is_some());
        let inst = platform.instance(id).expect("slot remains");
        prop_assert_eq!(inst.object_count(), 0);
        prop_assert!(inst.generation() >= 1);
    }
}
