//! Function instances: bounded memory plus co-located compute.
//!
//! A function instance is the unit of FLStore's serverless cache: its memory
//! holds cached FL metadata (at client-model granularity, paper §4.2) and its
//! vCPUs execute the non-training workload against that data.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use flstore_cloud::blob::{Blob, ObjectKey};
use flstore_cloud::compute::ComputeProfile;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

/// Identifier of a function instance within a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(u64);

impl FunctionId {
    /// Creates an id from a raw index (platforms allocate these).
    pub const fn from_raw(raw: u64) -> Self {
        FunctionId(raw)
    }

    /// The raw index.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn-{}", self.0)
    }
}

/// Resource configuration of a function.
///
/// The paper sizes functions to the model being served: 1 vCPU / 2 GB for
/// ResNet-18 and MobileNet, 2 vCPU / 4 GB for EfficientNet and
/// SwinTransformer (§5.1), with the provider ceiling at 10 GB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionConfig {
    /// Configured memory (also the billing unit).
    pub memory: ByteSize,
    /// Number of vCPUs.
    pub vcpus: u32,
}

impl FunctionConfig {
    /// 1 vCPU / 2 GB — paper's configuration for small models.
    pub const SMALL: FunctionConfig = FunctionConfig {
        memory: ByteSize::from_gb(2),
        vcpus: 1,
    };

    /// 2 vCPU / 4 GB — paper's configuration for larger models.
    pub const LARGE: FunctionConfig = FunctionConfig {
        memory: ByteSize::from_gb(4),
        vcpus: 2,
    };

    /// 6 vCPU / 10 GB — the provider's ceiling (Lambda max).
    pub const MAX: FunctionConfig = FunctionConfig {
        memory: ByteSize::from_gb(10),
        vcpus: 6,
    };

    /// Compute capability of this configuration.
    pub fn compute_profile(&self) -> ComputeProfile {
        match self.vcpus {
            0 | 1 => ComputeProfile::FUNCTION_1CORE,
            2 => ComputeProfile::FUNCTION_2CORE,
            n => ComputeProfile::new(1.0 + 0.15 * (n as f64 - 2.0)),
        }
    }
}

/// Why a function's cached state disappeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclaimCause {
    /// The provider reclaimed the warm sandbox after an idle period with no
    /// invocations or pings.
    IdleTimeout,
    /// The provider force-reclaimed the sandbox (heavy-tailed lifetime, as
    /// measured for AWS Lambda by the InfiniCache study).
    Forced,
}

/// Errors raised by instance-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionError {
    /// The object does not fit in the instance's remaining memory.
    OutOfMemory {
        /// Instance that rejected the object.
        id: FunctionId,
        /// Bytes the object needs.
        need: ByteSize,
        /// Bytes currently free.
        free: ByteSize,
    },
}

impl fmt::Display for FunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionError::OutOfMemory { id, need, free } => {
                write!(f, "function {id} out of memory: need {need}, free {free}")
            }
        }
    }
}

impl Error for FunctionError {}

/// A warm function instance holding cached objects.
#[derive(Debug, Clone)]
pub struct FunctionInstance {
    id: FunctionId,
    config: FunctionConfig,
    objects: HashMap<ObjectKey, Blob>,
    mem_used: ByteSize,
    deployed_at: SimTime,
    last_activity: SimTime,
    reclaim_at: SimTime,
    generation: u32,
    busy_until: SimTime,
}

impl FunctionInstance {
    pub(crate) fn new(
        id: FunctionId,
        config: FunctionConfig,
        now: SimTime,
        reclaim_at: SimTime,
    ) -> Self {
        FunctionInstance {
            id,
            config,
            objects: HashMap::new(),
            mem_used: ByteSize::ZERO,
            deployed_at: now,
            last_activity: now,
            reclaim_at,
            generation: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// Instance identifier.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// Resource configuration.
    pub fn config(&self) -> FunctionConfig {
        self.config
    }

    /// Memory currently consumed by cached objects.
    pub fn mem_used(&self) -> ByteSize {
        self.mem_used
    }

    /// Memory still available for caching.
    ///
    /// A fixed runtime overhead (256 MB) is reserved for the language
    /// runtime and workload scratch space.
    pub fn mem_free(&self) -> ByteSize {
        const RUNTIME_OVERHEAD: ByteSize = ByteSize::from_mb(256);
        self.config
            .memory
            .saturating_sub(self.mem_used)
            .saturating_sub(RUNTIME_OVERHEAD)
    }

    /// Number of cached objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Whether `key` is cached here.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.objects.contains_key(key)
    }

    /// Borrow a cached object.
    pub fn object(&self, key: &ObjectKey) -> Option<&Blob> {
        self.objects.get(key)
    }

    /// Iterates over cached keys.
    pub fn keys(&self) -> impl Iterator<Item = &ObjectKey> {
        self.objects.keys()
    }

    /// When this sandbox was (re)deployed.
    pub fn deployed_at(&self) -> SimTime {
        self.deployed_at
    }

    /// Last invocation or keep-alive ping.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Scheduled forced-reclamation instant (invisible to tenants; the
    /// platform consults it on access).
    pub(crate) fn reclaim_at(&self) -> SimTime {
        self.reclaim_at
    }

    /// How many times this slot has been reclaimed and redeployed.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// When the single worker is next free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    pub(crate) fn set_busy_until(&mut self, t: SimTime) {
        self.busy_until = t;
    }

    pub(crate) fn touch(&mut self, now: SimTime) {
        self.last_activity = now;
    }

    pub(crate) fn reclaim(&mut self, now: SimTime, next_reclaim: SimTime) {
        self.objects.clear();
        self.mem_used = ByteSize::ZERO;
        self.generation += 1;
        self.deployed_at = now;
        self.last_activity = now;
        self.reclaim_at = next_reclaim;
        self.busy_until = now;
    }

    /// Caches an object in instance memory.
    ///
    /// # Errors
    ///
    /// Returns [`FunctionError::OutOfMemory`] if the object does not fit.
    /// Replacing an existing key reuses its space.
    pub fn store(&mut self, key: ObjectKey, blob: Blob) -> Result<(), FunctionError> {
        let need = blob.logical_size();
        let reclaimed = self
            .objects
            .get(&key)
            .map(|b| b.logical_size())
            .unwrap_or(ByteSize::ZERO);
        let free = self.mem_free() + reclaimed;
        if need > free {
            return Err(FunctionError::OutOfMemory {
                id: self.id,
                need,
                free,
            });
        }
        if let Some(old) = self.objects.insert(key, blob) {
            self.mem_used -= old.logical_size();
        }
        self.mem_used += need;
        Ok(())
    }

    /// Evicts an object. Returns whether it was present.
    pub fn evict(&mut self, key: &ObjectKey) -> bool {
        if let Some(old) = self.objects.remove(key) {
            self.mem_used -= old.logical_size();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(cfg: FunctionConfig) -> FunctionInstance {
        FunctionInstance::new(FunctionId::from_raw(0), cfg, SimTime::ZERO, SimTime::MAX)
    }

    #[test]
    fn display_id() {
        assert_eq!(FunctionId::from_raw(7).to_string(), "fn-7");
    }

    #[test]
    fn store_and_capacity() {
        let mut f = inst(FunctionConfig::LARGE); // 4 GB, ~3.75 usable
        let k1 = ObjectKey::new("a");
        f.store(k1.clone(), Blob::synthetic(ByteSize::from_gb(2)))
            .expect("fits");
        assert_eq!(f.mem_used(), ByteSize::from_gb(2));
        assert!(f.contains(&k1));
        let err = f
            .store(ObjectKey::new("b"), Blob::synthetic(ByteSize::from_gb(2)))
            .unwrap_err();
        match err {
            FunctionError::OutOfMemory { need, .. } => assert_eq!(need, ByteSize::from_gb(2)),
        }
    }

    #[test]
    fn replace_reuses_space() {
        let mut f = inst(FunctionConfig::LARGE);
        let k = ObjectKey::new("a");
        f.store(k.clone(), Blob::synthetic(ByteSize::from_gb(3)))
            .expect("fits");
        // Replacing a 3 GB object with a 3.5 GB one works because the old
        // space is reclaimed first.
        f.store(k.clone(), Blob::synthetic(ByteSize::from_gb_f64(3.5)))
            .expect("fits via replace");
        assert_eq!(f.mem_used(), ByteSize::from_gb_f64(3.5));
        assert_eq!(f.object_count(), 1);
    }

    #[test]
    fn evict_frees_memory() {
        let mut f = inst(FunctionConfig::SMALL);
        let k = ObjectKey::new("a");
        f.store(k.clone(), Blob::synthetic(ByteSize::from_mb(500)))
            .expect("fits");
        assert!(f.evict(&k));
        assert!(!f.evict(&k));
        assert_eq!(f.mem_used(), ByteSize::ZERO);
    }

    #[test]
    fn reclaim_clears_state_and_bumps_generation() {
        let mut f = inst(FunctionConfig::LARGE);
        f.store(ObjectKey::new("a"), Blob::synthetic(ByteSize::from_mb(100)))
            .expect("fits");
        let t = SimTime::from_secs(100);
        f.reclaim(t, SimTime::MAX);
        assert_eq!(f.object_count(), 0);
        assert_eq!(f.generation(), 1);
        assert_eq!(f.deployed_at(), t);
        assert_eq!(f.mem_used(), ByteSize::ZERO);
    }

    #[test]
    fn compute_profiles_by_size() {
        assert_eq!(
            FunctionConfig::SMALL.compute_profile(),
            ComputeProfile::FUNCTION_1CORE
        );
        assert_eq!(
            FunctionConfig::LARGE.compute_profile(),
            ComputeProfile::FUNCTION_2CORE
        );
        assert!(FunctionConfig::MAX.compute_profile().speed_factor > 1.0);
    }
}
