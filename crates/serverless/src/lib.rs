//! # flstore-serverless — serverless function platform simulator
//!
//! The substrate FLStore's serverless cache runs on: Lambda/OpenFaaS-class
//! function instances with bounded memory, cold starts, idle-TTL and
//! heavy-tailed forced reclamation, keep-alive pings, and GB-second billing.
//!
//! * [`function`] — [`FunctionInstance`]: bounded
//!   memory holding cached objects next to co-located compute.
//! * [`platform`] — [`Platform`]: spawn / invoke /
//!   store / ping / reclaim, with cumulative billing.
//!
//! The failure model matters: FLStore's fault-tolerance story (paper §4.5,
//! Figs. 13–14) is about recovering cached state when the provider reclaims
//! warm sandboxes. [`platform::ReclaimModel`] exposes the knobs the
//! experiments turn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod function;
pub mod platform;

pub use function::{FunctionConfig, FunctionError, FunctionId, FunctionInstance, ReclaimCause};
pub use platform::{
    InvokeOutcome, Platform, PlatformBilling, PlatformConfig, PlatformError, ReclaimModel,
};
